//! Quickstart: query raw JSON with JSONiq, no loading phase.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the paper's bookstore example (Listing 1), then runs the
//! Listing 2–5 queries against the raw files.

use vxq_core::{queries, Engine, EngineConfig};

fn main() {
    // A scratch data directory with the bookstore collection.
    let data_root = std::env::temp_dir().join("vxq-example-quickstart");
    let _ = std::fs::remove_dir_all(&data_root);
    let books = datagen::generate_bookstore(&data_root.join("books"), 2, 6)
        .expect("generate bookstore collection");
    println!("generated {books} books under {}\n", data_root.display());

    // An engine over that directory — queries run straight off the JSON.
    let engine = Engine::new(EngineConfig {
        data_root: data_root.clone(),
        ..Default::default()
    });

    // Listing 3: every book in the collection.
    println!("-- all books: {}", queries::BOOKSTORE_COLLECTION.trim());
    let result = engine
        .execute(queries::BOOKSTORE_COLLECTION)
        .expect("query");
    for row in &result.rows {
        println!("   {}", row[0]);
    }

    // Listing 4: books per author (group-by + count).
    println!(
        "\n-- books per author: {}",
        queries::BOOKSTORE_COUNT.trim().replace('\n', " ")
    );
    let counts = engine.execute(queries::BOOKSTORE_COUNT).expect("query");
    for row in &counts.rows {
        println!("   count = {}", row[0]);
    }

    // What the optimizer did.
    println!("\n-- optimized plan for the collection query:");
    print!("{}", result.plan);
    println!("-- rules applied: {:?}", result.applied_rules);
    println!(
        "-- {} rows in {:?}, peak memory {} bytes, {} bytes scanned",
        result.rows.len(),
        result.stats.elapsed,
        result.stats.peak_memory,
        result.stats.bytes_scanned
    );
}
