//! Partitioned-parallel execution without parallel programming — the
//! paper's speed-up experiment in miniature (Figs. 17 & 20).
//!
//! ```text
//! cargo run --release --example cluster_scaling
//! ```
//!
//! Runs Q1 over the same collection on growing simulated clusters and
//! prints the time, speed-up, and the exchange traffic the hash
//! partitioning generates.

use dataflow::ClusterSpec;
use datagen::SensorSpec;
use vxq_core::{queries, Engine, EngineConfig};

fn main() {
    let data_root = std::env::temp_dir().join("vxq-example-scaling");
    let _ = std::fs::remove_dir_all(&data_root);
    let spec = SensorSpec {
        nodes: 4,
        files_per_node: 4,
        records_per_file: 150,
        measurements_per_array: 30,
        ..Default::default()
    };
    let stats = spec.generate(&data_root.join("sensors")).expect("generate");
    println!(
        "dataset: {} files, {} measurements, {} KiB\n",
        stats.files,
        stats.measurements,
        stats.bytes / 1024
    );
    println!(
        "{:<24} {:>12} {:>9} {:>14} {:>10}",
        "cluster", "elapsed", "speed-up", "network KiB", "groups"
    );

    let mut baseline = None;
    for (nodes, ppn) in [(1usize, 1usize), (1, 2), (1, 4), (2, 4), (4, 4)] {
        let engine = Engine::new(EngineConfig {
            cluster: ClusterSpec {
                nodes,
                partitions_per_node: ppn,
                ..Default::default()
            },
            data_root: data_root.clone(),
            ..Default::default()
        });
        let r = engine.execute(queries::Q1).expect("q1");
        let secs = r.stats.elapsed.as_secs_f64();
        let speedup = match baseline {
            None => {
                baseline = Some(secs);
                1.0
            }
            Some(b) => b / secs,
        };
        println!(
            "{:<24} {:>12?} {:>8.2}x {:>14} {:>10}",
            format!("{nodes} node(s) x {ppn} parts"),
            r.stats.elapsed,
            speedup,
            r.stats.network_bytes / 1024,
            r.rows.len()
        );
    }
    println!(
        "\nThe same query and data, no user-level parallel code — the DATASCAN's\n\
         partitioned-data property (pipelining rules) drives the distribution."
    );
}
