//! Weather-station analytics — the paper's IoT motivating scenario.
//!
//! ```text
//! cargo run --release --example weather_analytics
//! ```
//!
//! Generates a GHCN-Daily-style sensor collection (Listing 6 structure)
//! and runs all five evaluation queries (Q0, Q0b, Q1, Q1b, Q2) on a
//! simulated 2-node × 2-partition cluster, printing results and runtime
//! statistics.

use dataflow::ClusterSpec;
use datagen::SensorSpec;
use vxq_core::{queries, Engine, EngineConfig};

fn main() {
    let data_root = std::env::temp_dir().join("vxq-example-weather");
    let _ = std::fs::remove_dir_all(&data_root);
    let spec = SensorSpec {
        nodes: 2,
        files_per_node: 3,
        records_per_file: 40,
        measurements_per_array: 30,
        stations: 25,
        ..Default::default()
    };
    let stats = spec
        .generate(&data_root.join("sensors"))
        .expect("generate sensor data");
    println!(
        "generated {} files / {} measurements ({} KiB) under {}\n",
        stats.files,
        stats.measurements,
        stats.bytes / 1024,
        data_root.display()
    );

    let engine = Engine::new(EngineConfig {
        cluster: ClusterSpec {
            nodes: 2,
            partitions_per_node: 2,
            ..Default::default()
        },
        data_root,
        ..Default::default()
    });

    for (name, q) in queries::SENSOR_QUERIES {
        let r = engine.execute(q).expect("query");
        println!("== {name} ==");
        match name {
            // Selections return many rows; show a sample.
            "Q0" | "Q0b" => {
                println!("   {} matching readings; first 3:", r.rows.len());
                for row in r.rows.iter().take(3) {
                    println!("     {}", row[0]);
                }
            }
            "Q1" | "Q1b" => {
                let total: i64 = r
                    .rows
                    .iter()
                    .filter_map(|row| row[0].as_number().and_then(jdm::Number::as_i64))
                    .sum();
                println!(
                    "   {} dates with TMIN readings, {} readings total",
                    r.rows.len(),
                    total
                );
            }
            _ => {
                println!("   avg daily (TMAX-TMIN)/10 = {}", r.rows[0][0]);
            }
        }
        println!(
            "   elapsed {:?} | peak memory {} KiB | network {} KiB | {} frames\n",
            r.stats.elapsed,
            r.stats.peak_memory / 1024,
            r.stats.network_bytes / 1024,
            r.stats.frames_shipped
        );
    }
}
