//! Watch the rewrite rules transform a plan — the paper's §4 walkthrough.
//!
//! ```text
//! cargo run --release --example rule_ablation
//! ```
//!
//! Shows Q1's logical plan under each rule configuration (the progression
//! of Figs. 9 → 12 plus the DATASCAN introduction of Figs. 5 → 8), then
//! times each configuration on a small collection to reproduce the
//! Fig. 13–15 ablation in miniature.

use algebra::rules::RuleConfig;
use datagen::SensorSpec;
use vxq_core::{queries, Engine, EngineConfig};

fn engine_with(data_root: std::path::PathBuf, rules: RuleConfig) -> Engine {
    Engine::new(EngineConfig {
        rules,
        data_root,
        ..Default::default()
    })
}

fn main() {
    let data_root = std::env::temp_dir().join("vxq-example-ablation");
    let _ = std::fs::remove_dir_all(&data_root);
    SensorSpec {
        files_per_node: 2,
        records_per_file: 200,
        measurements_per_array: 30,
        ..Default::default()
    }
    .generate(&data_root.join("sensors"))
    .expect("generate");

    let configs: [(&str, RuleConfig); 4] = [
        ("no rules (naive translation)", RuleConfig::none()),
        ("+ path expression rules (§4.1)", RuleConfig::path_only()),
        (
            "+ pipelining rules (§4.2)",
            RuleConfig::path_and_pipelining(),
        ),
        ("+ group-by rules (§4.3)", RuleConfig::all()),
    ];

    println!("Query Q1:\n{}\n", queries::Q1.trim());
    for (label, cfg) in configs {
        let engine = engine_with(data_root.clone(), cfg);
        let (plan, applied) = engine.optimize(queries::Q1).expect("optimize");
        println!("==== {label} ====");
        print!("{}", plan.explain());
        if !applied.is_empty() {
            println!("(applied: {})", applied.join(", "));
        }
        let r = engine.execute(queries::Q1).expect("execute");
        println!(
            "--> {} groups in {:?}, peak memory {} KiB\n",
            r.rows.len(),
            r.stats.elapsed,
            r.stats.peak_memory / 1024
        );
    }
}
