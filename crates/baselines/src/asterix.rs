//! AsterixDB baseline — the same infrastructure, minus the pipelining
//! pushdowns.
//!
//! AsterixDB "shares the same infrastructure as VXQuery (Algebricks and
//! Hyracks)"; the paper attributes its slower JSON performance to "the
//! lack of the JSONiq Pipeline Rules. Without them, the system waits to
//! first gather all the measurements in the array before it moves them to
//! the next stage of processing" (§5.3). We therefore run the *actual*
//! engine with a custom rule set: path-expression and group-by rules are
//! active (they predate this paper / are generic Algebricks fare), the
//! DATASCAN is introduced (AsterixDB scans documents partitioned-parallel)
//! — but the `value`/`keys-or-members` **pushdowns are absent**, so every
//! document is materialized in full before navigation.
//!
//! Two modes, matching the paper's two AsterixDB configurations:
//!
//! * [`AsterixMode::External`] — query raw JSON files in place (no load).
//! * [`AsterixMode::Load`] — convert the collection to the internal ADM
//!   binary format first; queries then read `.adm` files ("optimized to
//!   work better for data that is already in its own data model").

use crate::{BaselineError, BenchQuery, LoadStats, QuerySystem, RunStats};
use algebra::rules::{base, groupby, path, pipelining, Rule, RuleSet};
use dataflow::ClusterSpec;
use jdm::parse::parse_item;
use std::path::{Path, PathBuf};
use std::time::Instant;
use vxq_core::{Engine, EngineConfig};

/// External (no load) vs. load-first operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsterixMode {
    External,
    Load,
}

/// The AsterixDB baseline.
pub struct AsterixSim {
    mode: AsterixMode,
    cluster: ClusterSpec,
    data_root: PathBuf,
    /// Where ADM conversion output lives (Load mode).
    storage_root: PathBuf,
    engine: Option<Engine>,
    space: usize,
}

/// AsterixDB's rule set: everything except the pipelining pushdowns.
fn asterix_rules() -> RuleSet {
    let rules: Vec<Box<dyn Rule>> = vec![
        Box::new(base::PushSelectIntoJoin),
        Box::new(base::RemoveDeadAssign),
        Box::new(path::EliminatePromoteData),
        Box::new(path::MergeKeysOrMembersIntoUnnest),
        Box::new(pipelining::IntroduceDataScan),
        // Projection pushdown stops at the *document boundary*: AsterixDB
        // scans records partitioned-parallel but materializes each record
        // completely before navigating — "the system waits to first
        // gather all the measurements in the array". The cap of 2 admits
        // ("root")() and nothing deeper.
        Box::new(pipelining::PushValueIntoDataScan { max_steps: Some(2) }),
        Box::new(pipelining::PushKeysOrMembersIntoDataScan { max_steps: Some(2) }),
        Box::new(groupby::RemoveTreat),
        Box::new(groupby::ConvertScalarAggregateToSubplan),
        Box::new(groupby::PushSubplanAggregateIntoGroupBy),
    ];
    RuleSet::custom(rules)
}

impl AsterixSim {
    /// Create the baseline over the collection at
    /// `<data_root>/sensors`. `storage_root` receives the ADM conversion
    /// in Load mode (pass a temp dir).
    pub fn new(
        mode: AsterixMode,
        cluster: ClusterSpec,
        data_root: impl Into<PathBuf>,
        storage_root: impl Into<PathBuf>,
    ) -> Self {
        AsterixSim {
            mode,
            cluster,
            data_root: data_root.into(),
            storage_root: storage_root.into(),
            engine: None,
            space: 0,
        }
    }

    fn make_engine(&self, root: PathBuf) -> Engine {
        Engine::with_rule_set(
            EngineConfig {
                cluster: self.cluster.clone(),
                data_root: root,
                ..Default::default()
            },
            asterix_rules(),
        )
    }

    /// Convert every `.json` file under `src` into an `.adm` binary file
    /// under `dst`, preserving the node directory layout.
    fn convert_to_adm(&self, src: &Path, dst: &Path) -> Result<usize, BaselineError> {
        let mut stored = 0usize;
        std::fs::create_dir_all(dst).map_err(|e| BaselineError::Other(e.to_string()))?;
        let entries = std::fs::read_dir(src).map_err(|e| BaselineError::Other(e.to_string()))?;
        for entry in entries {
            let p = entry
                .map_err(|e| BaselineError::Other(e.to_string()))?
                .path();
            if p.is_dir() {
                let sub = dst.join(p.file_name().expect("dir name"));
                stored += self.convert_to_adm(&p, &sub)?;
            } else if p.extension().map(|e| e == "json").unwrap_or(false) {
                let text = std::fs::read(&p).map_err(|e| BaselineError::Other(e.to_string()))?;
                let item = parse_item(&text)
                    .map_err(|e| BaselineError::Other(format!("{}: {e}", p.display())))?;
                let bytes = jdm::binary::to_bytes(&item);
                let name = p
                    .file_stem()
                    .expect("file stem")
                    .to_string_lossy()
                    .to_string();
                let out = dst.join(format!("{name}.adm"));
                std::fs::write(&out, &bytes).map_err(|e| BaselineError::Other(e.to_string()))?;
                stored += bytes.len();
            }
        }
        Ok(stored)
    }
}

impl QuerySystem for AsterixSim {
    fn name(&self) -> &'static str {
        match self.mode {
            AsterixMode::External => "AsterixDB",
            AsterixMode::Load => "AsterixDB(load)",
        }
    }

    fn load(&mut self, data_dir: &Path) -> Result<LoadStats, BaselineError> {
        match self.mode {
            AsterixMode::External => {
                self.engine = Some(self.make_engine(self.data_root.clone()));
                Ok(LoadStats::default())
            }
            AsterixMode::Load => {
                let started = Instant::now();
                let _ = std::fs::remove_dir_all(&self.storage_root);
                // Convert the collection directory wholesale so relative
                // collection names keep working against the storage root.
                let rel = data_dir.strip_prefix(&self.data_root).unwrap_or(data_dir);
                let dst = self.storage_root.join(rel);
                let stored = self.convert_to_adm(data_dir, &dst)?;
                self.space = stored;
                self.engine = Some(self.make_engine(self.storage_root.clone()));
                Ok(LoadStats {
                    elapsed: started.elapsed(),
                    bytes_stored: stored,
                    bytes_read: 0,
                })
            }
        }
    }

    fn run(&mut self, query: BenchQuery) -> Result<RunStats, BaselineError> {
        let engine = self
            .engine
            .as_ref()
            .ok_or_else(|| BaselineError::Other("AsterixSim::run before load".into()))?;
        let q = match query {
            BenchQuery::Q0 => vxq_core::queries::Q0,
            BenchQuery::Q0b => vxq_core::queries::Q0B,
            BenchQuery::Q1 => vxq_core::queries::Q1,
            BenchQuery::Q2 => vxq_core::queries::Q2,
        };
        let r = engine
            .execute(q)
            .map_err(|e| BaselineError::Other(e.to_string()))?;
        Ok(RunStats {
            elapsed: r.stats.elapsed,
            rows: r.rows.len(),
            peak_memory: r.stats.peak_memory,
            aggregate: crate::scalar_of(&r.rows),
        })
    }

    fn space_used(&self) -> usize {
        self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::SensorSpec;

    fn dataset(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vxq-asterix-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        SensorSpec {
            nodes: 2,
            files_per_node: 2,
            records_per_file: 10,
            measurements_per_array: 5,
            ..Default::default()
        }
        .generate(&dir.join("sensors"))
        .unwrap();
        dir
    }

    #[test]
    fn rules_lack_projection_pushdown() {
        let dir = dataset("plan");
        let sim = AsterixSim::new(
            AsterixMode::External,
            ClusterSpec::single_node(2),
            &dir,
            dir.join("storage"),
        );
        let engine = sim.make_engine(dir.clone());
        let plan = engine.explain(vxq_core::queries::Q0).unwrap();
        // DATASCAN exists, but projection stops at the document boundary:
        // full records (metadata + results array) flow through the plan.
        assert!(plan.contains("data-scan"), "{plan}");
        assert!(
            plan.contains(r#"project ("root")()"#),
            "document-boundary projection: {plan}"
        );
        assert!(
            !plan.contains(r#"project ("root")()("results")"#),
            "no pushdown past the document boundary: {plan}"
        );
        assert!(
            plan.contains("keys-or-members"),
            "navigation stays in the plan: {plan}"
        );
    }

    #[test]
    fn external_mode_matches_vxquery_results() {
        let dir = dataset("external");
        let mut asterix = AsterixSim::new(
            AsterixMode::External,
            ClusterSpec::single_node(2),
            &dir,
            dir.join("storage"),
        );
        asterix.load(&dir.join("sensors")).unwrap();

        let mut vx = crate::VxQuerySystem::new(&dir, ClusterSpec::single_node(2));
        for q in [BenchQuery::Q0, BenchQuery::Q1, BenchQuery::Q2] {
            let a = asterix.run(q).unwrap();
            let v = vx.run(q).unwrap();
            assert_eq!(a.rows, v.rows, "row mismatch on {}", q.name());
        }
    }

    #[test]
    fn load_mode_converts_and_matches() {
        let dir = dataset("load");
        let mut asterix = AsterixSim::new(
            AsterixMode::Load,
            ClusterSpec::single_node(2),
            &dir,
            dir.join("storage"),
        );
        let load = asterix.load(&dir.join("sensors")).unwrap();
        assert!(load.bytes_stored > 0);
        assert!(asterix.space_used() > 0);

        let mut vx = crate::VxQuerySystem::new(&dir, ClusterSpec::single_node(2));
        for q in [BenchQuery::Q0b, BenchQuery::Q1] {
            let a = asterix.run(q).unwrap();
            let v = vx.run(q).unwrap();
            assert_eq!(a.rows, v.rows, "row mismatch on {}", q.name());
        }
    }

    #[test]
    fn external_mode_materializes_more_than_vxquery() {
        let dir = dataset("memcmp");
        let mut asterix = AsterixSim::new(
            AsterixMode::External,
            ClusterSpec::single_node(1),
            &dir,
            dir.join("storage"),
        );
        asterix.load(&dir.join("sensors")).unwrap();
        let a = asterix.run(BenchQuery::Q1).unwrap();

        let mut vx = crate::VxQuerySystem::new(&dir, ClusterSpec::single_node(1));
        let v = vx.run(BenchQuery::Q1).unwrap();
        assert!(
            a.peak_memory >= v.peak_memory,
            "asterix {} vs vxquery {}",
            a.peak_memory,
            v.peak_memory
        );
    }
}
