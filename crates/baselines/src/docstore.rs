//! MongoDB-like document store.
//!
//! Mechanisms reproduced from the paper's observations (§5.3–5.4):
//!
//! * **Load-first**: queries only run against the imported representation;
//!   the load phase parses every input file and re-encodes it.
//! * **Per-document compression**: each document carries a string
//!   dictionary; keys and repeated strings are stored once. A document
//!   holding 30 measurements stores `"date"/"dataType"/"station"/"value"`
//!   once instead of 30×, so *larger documents compress better* — which
//!   yields both the space curve of Fig. 18b and the scan-speed advantage
//!   of Fig. 18a (scans touch fewer bytes).
//! * **16 MB document limit**: the naive self-join materializes one
//!   document per (station, date) group and fails when it exceeds the
//!   limit; [`DocStore::run`] then uses the paper's workaround — "we
//!   unwind the results array and we project only the necessary fields.
//!   After that, we perform the actual join".
//! * **Sharding**: one shard per node, scanned in parallel.

use crate::{BaselineError, BenchQuery, LoadStats, QuerySystem, RunStats};
use jdm::parse::parse_item;
use jdm::{DateTime, Item, Number};
use std::collections::HashMap;
use std::path::Path;
use std::time::{Duration, Instant};

/// MongoDB's document size limit.
pub const DOC_LIMIT: usize = 16 * 1024 * 1024;

/// One imported, compressed document.
struct CompressedDoc {
    bytes: Vec<u8>,
}

/// The store: one shard per simulated node.
pub struct DocStore {
    shards: Vec<Vec<CompressedDoc>>,
    loaded: bool,
}

impl DocStore {
    /// A store with `shards` shards (use the node count of the comparison
    /// cluster).
    pub fn new(shards: usize) -> Self {
        DocStore {
            shards: (0..shards.max(1)).map(|_| Vec::new()).collect(),
            loaded: false,
        }
    }

    /// Number of imported documents.
    pub fn doc_count(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Simulate the *naive* self-join (no unwind): one grouped document
    /// per (station, date). Returns the largest grouped document size or
    /// the paper's failure ("creating huge documents which exceed the
    /// 16MB document size limit causing it to fail").
    pub fn naive_join_probe(&self) -> Result<usize, BaselineError> {
        let mut group_bytes: HashMap<(String, String), usize> = HashMap::new();
        for shard in &self.shards {
            for doc in shard {
                let d = decode(&doc.bytes);
                for m in measurements(&d) {
                    let key = (
                        str_of(&m, "station").to_string(),
                        str_of(&m, "date").to_string(),
                    );
                    // The joined document accumulates both sides' fields.
                    *group_bytes.entry(key).or_insert(0) += m.heap_size();
                }
            }
        }
        let max = group_bytes.values().copied().max().unwrap_or(0);
        if max > DOC_LIMIT {
            return Err(BaselineError::DocumentTooLarge {
                bytes: max,
                limit: DOC_LIMIT,
            });
        }
        Ok(max)
    }
}

impl QuerySystem for DocStore {
    fn name(&self) -> &'static str {
        "MongoDB"
    }

    fn load(&mut self, data_dir: &Path) -> Result<LoadStats, BaselineError> {
        let started = Instant::now();
        let mut stats = LoadStats::default();
        let files = collect_json_files(data_dir)?;
        let nshards = self.shards.len();
        let mut next = 0usize;
        for f in files {
            let text = std::fs::read(&f).map_err(|e| BaselineError::Other(e.to_string()))?;
            stats.bytes_read += text.len();
            let item = parse_item(&text)
                .map_err(|e| BaselineError::Other(format!("{}: {e}", f.display())))?;
            // Unwrap the "root" array: each member is one document (the
            // paper's restructuring for a fair comparison, §5.3).
            let Some(root) = item.get_key("root") else {
                return Err(BaselineError::Other(format!(
                    "{}: no root array",
                    f.display()
                )));
            };
            for doc in root.keys_or_members() {
                let bytes = encode(&doc);
                if bytes.len() > DOC_LIMIT {
                    return Err(BaselineError::DocumentTooLarge {
                        bytes: bytes.len(),
                        limit: DOC_LIMIT,
                    });
                }
                stats.bytes_stored += bytes.len();
                self.shards[next % nshards].push(CompressedDoc { bytes });
                next += 1;
            }
        }
        self.loaded = true;
        stats.elapsed = started.elapsed();
        Ok(stats)
    }

    fn run(&mut self, query: BenchQuery) -> Result<RunStats, BaselineError> {
        if !self.loaded {
            return Err(BaselineError::Other("DocStore::run before load".into()));
        }
        let mut aggregate = None;
        let (rows, peak, elapsed) = match query {
            BenchQuery::Q0 => self.scan_filter(false)?,
            BenchQuery::Q0b => self.scan_filter(true)?,
            BenchQuery::Q1 => self.group_count()?,
            BenchQuery::Q2 => {
                let (r, p, e, avg) = self.join_avg()?;
                aggregate = avg;
                (r, p, e)
            }
        };
        Ok(RunStats {
            elapsed,
            rows,
            peak_memory: peak,
            aggregate,
        })
    }

    fn space_used(&self) -> usize {
        self.shards.iter().flatten().map(|d| d.bytes.len()).sum()
    }
}

impl DocStore {
    /// Shard-parallel scan with the Q0/Q0b filter. Shards run in worker
    /// threads; the reported time is the slowest shard's CPU time (the
    /// same simulated-cluster timing model as the engine — see
    /// `dataflow::cputime`).
    fn scan_filter(&self, dates_only: bool) -> Result<Shaped, BaselineError> {
        let results: Vec<(usize, Duration)> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| {
                    s.spawn(move || {
                        let timer = dataflow::cputime::TaskTimer::start();
                        let mut n = 0;
                        for doc in shard {
                            let d = decode(&doc.bytes);
                            for m in measurements(&d) {
                                if dec25_2003(str_of(&m, "date")) {
                                    n += 1;
                                    // Q0 returns whole objects, Q0b only
                                    // dates; result size differs, match
                                    // count does not.
                                    let _ = dates_only;
                                }
                            }
                        }
                        (n, timer.elapsed())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard scan"))
                .collect()
        });
        let rows = results.iter().map(|(n, _)| n).sum();
        let slowest = results.iter().map(|(_, d)| *d).max().unwrap_or_default();
        Ok((rows, 0, slowest))
    }

    /// Q1: per-date station count over TMIN (local maps merged centrally).
    fn group_count(&self) -> Result<Shaped, BaselineError> {
        let locals: Vec<(HashMap<String, i64>, Duration)> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| {
                    s.spawn(move || {
                        let timer = dataflow::cputime::TaskTimer::start();
                        let mut map: HashMap<String, i64> = HashMap::new();
                        for doc in shard {
                            let d = decode(&doc.bytes);
                            for m in measurements(&d) {
                                if str_of(&m, "dataType") == "TMIN" {
                                    *map.entry(str_of(&m, "date").to_string()).or_insert(0) += 1;
                                }
                            }
                        }
                        (map, timer.elapsed())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard scan"))
                .collect()
        });
        let slowest = locals.iter().map(|(_, d)| *d).max().unwrap_or_default();
        let merge_timer = dataflow::cputime::TaskTimer::start();
        let mut merged: HashMap<String, i64> = HashMap::new();
        for (local, _) in locals {
            for (k, v) in local {
                *merged.entry(k).or_insert(0) += v;
            }
        }
        let peak = merged.len() * 48;
        Ok((merged.len(), peak, slowest + merge_timer.elapsed()))
    }

    /// Q2 via the paper's workaround: unwind + project, then hash join.
    /// Single coordinator pass (MongoDB's aggregation join is not
    /// shard-parallel for $lookup-style self-joins).
    fn join_avg(&self) -> Result<(usize, usize, Duration, Option<f64>), BaselineError> {
        let timer = dataflow::cputime::TaskTimer::start();
        // Unwind + project into narrow tuples.
        let mut tmin: HashMap<(String, String), Vec<i64>> = HashMap::new();
        let mut tmax: Vec<(String, String, i64)> = Vec::new();
        let mut peak = 0usize;
        for shard in &self.shards {
            for doc in shard {
                let d = decode(&doc.bytes);
                for m in measurements(&d) {
                    let dt = str_of(&m, "dataType");
                    if dt != "TMIN" && dt != "TMAX" {
                        continue;
                    }
                    let station = str_of(&m, "station").to_string();
                    let date = str_of(&m, "date").to_string();
                    let value = num_of(&m, "value");
                    peak += station.len() + date.len() + 16;
                    if dt == "TMIN" {
                        tmin.entry((station, date)).or_default().push(value);
                    } else {
                        tmax.push((station, date, value));
                    }
                }
            }
        }
        let mut sum = 0i64;
        let mut n = 0i64;
        for (station, date, mx) in tmax {
            if let Some(mins) = tmin.get(&(station, date)) {
                for mn in mins {
                    sum += mx - mn;
                    n += 1;
                }
            }
        }
        let avg = (n != 0).then(|| (sum as f64 / n as f64) / 10.0);
        Ok((1, peak, timer.elapsed(), avg))
    }
}

/// `(rows, peak_memory, simulated elapsed)`.
type Shaped = (usize, usize, std::time::Duration);

/// Recursively collect `.json` files (shared with the Spark simulator).
pub(crate) fn collect_json_files(
    data_dir: &Path,
) -> Result<Vec<std::path::PathBuf>, BaselineError> {
    let mut out = Vec::new();
    let mut dirs = vec![data_dir.to_path_buf()];
    while let Some(d) = dirs.pop() {
        let entries = std::fs::read_dir(&d).map_err(|e| BaselineError::Other(e.to_string()))?;
        for entry in entries {
            let p = entry
                .map_err(|e| BaselineError::Other(e.to_string()))?
                .path();
            if p.is_dir() {
                dirs.push(p);
            } else if p.extension().map(|e| e == "json").unwrap_or(false) {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn dec25_2003(date: &str) -> bool {
    DateTime::parse(date)
        .map(|d| d.year >= 2003 && d.month == 12 && d.day == 25)
        .unwrap_or(false)
}

fn measurements(doc: &Item) -> impl Iterator<Item = Item> + '_ {
    doc.get_key("results")
        .map(|r| r.keys_or_members())
        .unwrap_or_else(|| Item::Null.keys_or_members())
}

fn str_of<'a>(m: &'a Item, key: &str) -> &'a str {
    m.get_key(key).and_then(Item::as_str).unwrap_or("")
}

fn num_of(m: &Item, key: &str) -> i64 {
    m.get_key(key)
        .and_then(Item::as_number)
        .and_then(Number::as_i64)
        .unwrap_or(0)
}

// --------------------------------------------------- compressed encoding
//
// Per-document layout:
//   u16 n_strings, n × (u16 len, bytes)   — the dictionary
//   value tree:
//     0 null | 1 false | 2 true | 3 i64 | 4 f64 |
//     5 string (u16 dict ref) |
//     6 array (u16 count, values…) |
//     7 object (u16 count, (u16 key ref, value)…)

/// Encode a document, building its string dictionary.
pub fn encode(doc: &Item) -> Vec<u8> {
    let mut dict: Vec<&str> = Vec::new();
    let mut index: HashMap<&str, u16> = HashMap::new();
    collect_strings(doc, &mut dict, &mut index);
    let mut out = Vec::new();
    out.extend_from_slice(&(dict.len() as u16).to_le_bytes());
    for s in &dict {
        out.extend_from_slice(&(s.len() as u16).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
    encode_value(doc, &index, &mut out);
    out
}

fn collect_strings<'a>(item: &'a Item, dict: &mut Vec<&'a str>, index: &mut HashMap<&'a str, u16>) {
    let add = |s: &'a str, dict: &mut Vec<&'a str>, index: &mut HashMap<&'a str, u16>| {
        if !index.contains_key(s) {
            index.insert(s, dict.len() as u16);
            dict.push(s);
        }
    };
    match item {
        Item::String(s) => add(s, dict, index),
        Item::Array(v) | Item::Sequence(v) => {
            for m in v {
                collect_strings(m, dict, index);
            }
        }
        Item::Object(pairs) => {
            for (k, v) in pairs {
                add(k, dict, index);
                collect_strings(v, dict, index);
            }
        }
        _ => {}
    }
}

fn encode_value(item: &Item, index: &HashMap<&str, u16>, out: &mut Vec<u8>) {
    match item {
        Item::Null => out.push(0),
        Item::Boolean(false) => out.push(1),
        Item::Boolean(true) => out.push(2),
        Item::Number(Number::Int(i)) => {
            out.push(3);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Item::Number(Number::Double(d)) => {
            out.push(4);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Item::String(s) => {
            out.push(5);
            out.extend_from_slice(&index[&**s].to_le_bytes());
        }
        Item::Array(v) | Item::Sequence(v) => {
            out.push(6);
            out.extend_from_slice(&(v.len() as u16).to_le_bytes());
            for m in v {
                encode_value(m, index, out);
            }
        }
        Item::Object(pairs) => {
            out.push(7);
            out.extend_from_slice(&(pairs.len() as u16).to_le_bytes());
            for (k, v) in pairs {
                out.extend_from_slice(&index[&**k].to_le_bytes());
                encode_value(v, index, out);
            }
        }
        Item::DateTime(d) => {
            // Not produced by JSON input; store as its lexical string
            // would be, via an int-minutes encoding.
            out.push(3);
            out.extend_from_slice(&d.minutes_from_epoch().to_le_bytes());
        }
    }
}

/// Decode a compressed document back into an item.
pub fn decode(bytes: &[u8]) -> Item {
    let mut pos = 0usize;
    let n = read_u16(bytes, &mut pos) as usize;
    let mut dict = Vec::with_capacity(n);
    for _ in 0..n {
        let len = read_u16(bytes, &mut pos) as usize;
        let s = std::str::from_utf8(&bytes[pos..pos + len]).expect("dict utf8");
        pos += len;
        dict.push(s);
    }
    decode_value(bytes, &mut pos, &dict)
}

fn read_u16(b: &[u8], pos: &mut usize) -> u16 {
    let v = u16::from_le_bytes(b[*pos..*pos + 2].try_into().expect("u16"));
    *pos += 2;
    v
}

fn decode_value(b: &[u8], pos: &mut usize, dict: &[&str]) -> Item {
    let tag = b[*pos];
    *pos += 1;
    match tag {
        0 => Item::Null,
        1 => Item::Boolean(false),
        2 => Item::Boolean(true),
        3 => {
            let v = i64::from_le_bytes(b[*pos..*pos + 8].try_into().expect("i64"));
            *pos += 8;
            Item::int(v)
        }
        4 => {
            let v = f64::from_le_bytes(b[*pos..*pos + 8].try_into().expect("f64"));
            *pos += 8;
            Item::double(v)
        }
        5 => {
            let r = read_u16(b, pos) as usize;
            Item::str(dict[r])
        }
        6 => {
            let n = read_u16(b, pos) as usize;
            Item::Array((0..n).map(|_| decode_value(b, pos, dict)).collect())
        }
        7 => {
            let n = read_u16(b, pos) as usize;
            Item::Object(
                (0..n)
                    .map(|_| {
                        let k = read_u16(b, pos) as usize;
                        (dict[k].into(), decode_value(b, pos, dict))
                    })
                    .collect(),
            )
        }
        other => panic!("bad compressed tag {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::SensorSpec;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("vxq-docstore-{name}"));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn gen(dir: &Path, mpa: usize) -> SensorSpec {
        let spec = SensorSpec {
            nodes: 2,
            files_per_node: 2,
            records_per_file: 12,
            measurements_per_array: mpa,
            ..Default::default()
        };
        spec.generate(dir).unwrap();
        spec
    }

    #[test]
    fn encode_decode_round_trip() {
        let spec = SensorSpec {
            records_per_file: 4,
            measurements_per_array: 6,
            ..Default::default()
        };
        let file = spec.file_item(0);
        for doc in file.get_key("root").unwrap().keys_or_members() {
            let bytes = encode(&doc);
            assert_eq!(decode(&bytes), doc);
        }
    }

    #[test]
    fn bigger_documents_compress_better() {
        // Same measurement count, packaged as 30/array vs 1/array.
        let total = 120;
        let big = SensorSpec {
            records_per_file: total / 30,
            measurements_per_array: 30,
            ..Default::default()
        };
        let small = SensorSpec {
            records_per_file: total,
            measurements_per_array: 1,
            ..Default::default()
        };
        let size = |spec: &SensorSpec| {
            let file = spec.file_item(0);
            file.get_key("root")
                .unwrap()
                .keys_or_members()
                .map(|d| encode(&d).len())
                .sum::<usize>()
        };
        let (b, s) = (size(&big), size(&small));
        assert!(
            (s as f64) > 1.5 * b as f64,
            "1/array ({s}) should need much more space than 30/array ({b})"
        );
    }

    #[test]
    fn load_and_query() {
        let dir = tmp("loadquery");
        let spec = gen(&dir, 5);
        let mut store = DocStore::new(2);
        let load = store.load(&dir).unwrap();
        assert!(load.bytes_stored > 0);
        assert!(
            load.bytes_stored < load.bytes_read,
            "compression must shrink input"
        );
        assert_eq!(
            store.doc_count(),
            spec.nodes * spec.files_per_node * spec.records_per_file
        );

        let q1 = store.run(BenchQuery::Q1).unwrap();
        assert!(q1.rows > 0);
        let q2 = store.run(BenchQuery::Q2).unwrap();
        assert_eq!(q2.rows, 1);
    }

    #[test]
    fn query_results_match_vxquery_semantics() {
        // Q1 group count via DocStore equals the direct reference.
        let dir = tmp("semantics");
        let spec = gen(&dir, 4);
        let mut store = DocStore::new(3);
        store.load(&dir).unwrap();
        let got = store.run(BenchQuery::Q1).unwrap().rows;

        let mut dates = std::collections::HashSet::new();
        for i in 0..spec.nodes * spec.files_per_node {
            let f = spec.file_item(i);
            for rec in f.get_key("root").unwrap().keys_or_members() {
                for m in rec.get_key("results").unwrap().keys_or_members() {
                    if m.get_key("dataType").unwrap().as_str() == Some("TMIN") {
                        dates.insert(m.get_key("date").unwrap().as_str().unwrap().to_string());
                    }
                }
            }
        }
        assert_eq!(got, dates.len());
    }

    #[test]
    fn naive_join_fails_on_large_groups() {
        // Many measurements for the same station/date pair → the naive
        // join's grouped document exceeds the limit once big enough. At
        // this small scale it stays under, so probe must succeed...
        let dir = tmp("join");
        gen(&dir, 8);
        let mut store = DocStore::new(1);
        store.load(&dir).unwrap();
        let max = store.naive_join_probe().unwrap();
        assert!(max > 0 && max < DOC_LIMIT);
    }
}
