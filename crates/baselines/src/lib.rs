//! # baselines — the comparator systems of the paper's evaluation
//!
//! **Substitution note (DESIGN.md §3):** the paper compares VXQuery
//! against MongoDB, SparkSQL and AsterixDB binaries. Shipping those is out
//! of scope for a Rust reproduction, so this crate implements *behavioural
//! simulators* that reproduce each system's cost-relevant mechanisms —
//! not constant fudge factors:
//!
//! * [`docstore`] (MongoDB-like): **load-first** document store with real
//!   per-document dictionary compression (bigger documents compress
//!   better → less space *and* faster scans, Fig. 18), a 16 MB document
//!   limit that breaks the naive self-join (§5.4), and the unwind+project
//!   workaround the paper describes.
//! * [`sparksim`] (SparkSQL-like): **load-first** columnar shredder that
//!   keeps *everything* in memory with JVM-style object overhead
//!   (Table 3), fails to load datasets beyond its memory budget, and
//!   slows down under memory pressure (Table 2's superlinear load times).
//! * [`asterix`] (AsterixDB): shares the actual VXQuery infrastructure —
//!   it runs on the same `dataflow` + `algebra` substrates — but without
//!   the JSONiq pipelining pushdowns ("the difference in its performance
//!   relative to VXQuery is due to the lack of the JSONiq Pipeline
//!   Rules", §5.3), in both *external* (no load) and *load* (ADM binary
//!   conversion) modes.
//!
//! All three implement [`QuerySystem`] so the benchmark harness can sweep
//! them uniformly.

pub mod asterix;
pub mod docstore;
pub mod sparksim;

pub use asterix::AsterixSim;
pub use docstore::DocStore;
pub use sparksim::SparkSim;

use std::path::Path;
use std::time::Duration;

/// The benchmark queries (semantics of the paper's §5.2 queries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchQuery {
    /// Q0: December-25 readings from 2003 on (whole measurement objects).
    Q0,
    /// Q0b: same filter, date strings only.
    Q0b,
    /// Q1: per-date station count over TMIN readings.
    Q1,
    /// Q2: self-join TMIN×TMAX on (station, date); avg diff / 10.
    Q2,
}

impl BenchQuery {
    pub fn name(self) -> &'static str {
        match self {
            BenchQuery::Q0 => "Q0",
            BenchQuery::Q0b => "Q0b",
            BenchQuery::Q1 => "Q1",
            BenchQuery::Q2 => "Q2",
        }
    }
}

/// Load-phase statistics.
#[derive(Debug, Clone, Default)]
pub struct LoadStats {
    pub elapsed: Duration,
    /// Bytes of the system's internal representation (Fig. 18b).
    pub bytes_stored: usize,
    /// Raw input bytes read.
    pub bytes_read: usize,
}

/// Query-phase statistics.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    pub elapsed: Duration,
    pub rows: usize,
    /// Peak working memory during the query.
    pub peak_memory: usize,
    /// For aggregate queries (Q2): the scalar result, so tests can check
    /// that every system computes the same answer.
    pub aggregate: Option<f64>,
}

/// Failures a baseline can hit that VXQuery does not.
#[derive(Debug)]
pub enum BaselineError {
    /// The dataset does not fit the system's memory budget (SparkSQL
    /// beyond ~2 GB inputs in the paper).
    OutOfMemory { needed: usize, budget: usize },
    /// A document exceeded the 16 MB limit (MongoDB's naive self-join).
    DocumentTooLarge { bytes: usize, limit: usize },
    /// Anything else (I/O, parse, engine).
    Other(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::OutOfMemory { needed, budget } => {
                write!(f, "out of memory: need {needed} bytes, budget {budget}")
            }
            BaselineError::DocumentTooLarge { bytes, limit } => {
                write!(
                    f,
                    "document of {bytes} bytes exceeds the {limit}-byte limit"
                )
            }
            BaselineError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Uniform interface over every system in the comparison (including
/// VXQuery itself via [`VxQuerySystem`]).
pub trait QuerySystem {
    /// System name as it appears in the paper's figures.
    fn name(&self) -> &'static str;

    /// Import the collection. On-the-fly systems return a zero-duration
    /// no-op (the paper: "there is no loading time for AsterixDB and
    /// VXQuery" in external mode).
    fn load(&mut self, data_dir: &Path) -> Result<LoadStats, BaselineError>;

    /// Run one benchmark query.
    fn run(&mut self, query: BenchQuery) -> Result<RunStats, BaselineError>;

    /// Bytes of storage used by the internal representation (0 when the
    /// system queries the raw files).
    fn space_used(&self) -> usize;
}

/// VXQuery wrapped in the same interface, so harness sweeps are uniform.
pub struct VxQuerySystem {
    engine: vxq_core::Engine,
}

impl VxQuerySystem {
    /// A VXQuery instance on the given cluster shape; `data_dir` must
    /// contain the `sensors` collection.
    pub fn new(data_root: impl Into<std::path::PathBuf>, cluster: dataflow::ClusterSpec) -> Self {
        let engine = vxq_core::Engine::new(vxq_core::EngineConfig {
            cluster,
            data_root: data_root.into(),
            ..Default::default()
        });
        VxQuerySystem { engine }
    }

    /// Access the underlying engine (for EXPLAIN in examples).
    pub fn engine(&self) -> &vxq_core::Engine {
        &self.engine
    }
}

impl QuerySystem for VxQuerySystem {
    fn name(&self) -> &'static str {
        "VXQuery"
    }

    fn load(&mut self, _data_dir: &Path) -> Result<LoadStats, BaselineError> {
        Ok(LoadStats::default()) // queries raw JSON on the fly
    }

    fn run(&mut self, query: BenchQuery) -> Result<RunStats, BaselineError> {
        let q = match query {
            BenchQuery::Q0 => vxq_core::queries::Q0,
            BenchQuery::Q0b => vxq_core::queries::Q0B,
            BenchQuery::Q1 => vxq_core::queries::Q1,
            BenchQuery::Q2 => vxq_core::queries::Q2,
        };
        let r = self
            .engine
            .execute(q)
            .map_err(|e| BaselineError::Other(e.to_string()))?;
        Ok(RunStats {
            elapsed: r.stats.elapsed,
            rows: r.rows.len(),
            peak_memory: r.stats.peak_memory,
            aggregate: scalar_of(&r.rows),
        })
    }

    fn space_used(&self) -> usize {
        0
    }
}

/// Extract a single scalar result (Q2's shape) as f64.
pub(crate) fn scalar_of(rows: &dataflow::Rows) -> Option<f64> {
    match rows.as_slice() {
        [row] => row
            .first()
            .and_then(|i| i.as_number())
            .map(jdm::Number::as_f64),
        _ => None,
    }
}
