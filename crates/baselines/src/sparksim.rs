//! SparkSQL-like load-first columnar system.
//!
//! Mechanisms reproduced (§5.3, Tables 2–3, Fig. 19):
//!
//! * **Load-first**: JSON is parsed once and shredded into in-memory
//!   columns before any query can run.
//! * **Stores everything**: every field of every measurement (plus the
//!   metadata) is kept, with a JVM-style object overhead factor — the
//!   paper measured 5.6–8 GB of memory for 0.4–1 GB of input (Table 3),
//!   i.e. roughly an order of magnitude of overhead.
//! * **Memory ceiling**: loads beyond the budget fail ("for file sizes
//!   above 2GB, the memory needs of SparkSQL exceeded the node's
//!   available 16GB, so it was unable to load the input data").
//! * **Pressure slowdown**: load slows down as the heap fills (Table 2's
//!   superlinear 6.3 s → 15 s → 40 s for 400/800/1000 MB) — modelled as a
//!   growing per-byte cost above 50% occupancy, applied as real work
//!   (re-hashing passes), not a sleep.
//! * **Fast columnar scans** once loaded: Fig. 19 shows Spark's
//!   query-only time beating VXQuery on small inputs.

use crate::{BaselineError, BenchQuery, LoadStats, QuerySystem, RunStats};
use jdm::parse::parse_item;
use jdm::{DateTime, Item, Number};
use std::collections::HashMap;
use std::path::Path;
use std::time::Instant;

/// JVM object/boxing overhead applied to the accounted memory footprint.
/// The paper's Table 3 shows ~8–14× between input size and Spark memory.
pub const JVM_OVERHEAD: usize = 8;

/// In-memory columnar table of all measurements.
#[derive(Default)]
struct Columns {
    date: Vec<Box<str>>,
    data_type: Vec<Box<str>>,
    station: Vec<Box<str>>,
    value: Vec<i64>,
    /// "stores everything": the metadata counts too.
    meta_count: Vec<i64>,
}

/// The simulator.
pub struct SparkSim {
    budget: usize,
    cols: Columns,
    loaded: bool,
}

impl SparkSim {
    /// Budget = simulated executor memory in bytes (the paper's node had
    /// 16 GB; scale it with your dataset).
    pub fn new(memory_budget: usize) -> Self {
        SparkSim {
            budget: memory_budget,
            cols: Columns::default(),
            loaded: false,
        }
    }

    /// Accounted memory footprint (raw bytes × JVM overhead).
    pub fn memory_used(&self) -> usize {
        let raw: usize = self
            .cols
            .date
            .iter()
            .map(|s| s.len())
            .chain(self.cols.data_type.iter().map(|s| s.len()))
            .chain(self.cols.station.iter().map(|s| s.len()))
            .sum::<usize>()
            + self.cols.value.len() * 8
            + self.cols.meta_count.len() * 8;
        raw * JVM_OVERHEAD
    }

    /// Loaded row (measurement) count.
    pub fn rows_loaded(&self) -> usize {
        self.cols.value.len()
    }
}

impl QuerySystem for SparkSim {
    fn name(&self) -> &'static str {
        "SparkSQL"
    }

    fn load(&mut self, data_dir: &Path) -> Result<LoadStats, BaselineError> {
        let started = Instant::now();
        let mut stats = LoadStats::default();
        let files = crate::docstore::collect_json_files(data_dir)?;
        for f in files {
            let text = std::fs::read(&f).map_err(|e| BaselineError::Other(e.to_string()))?;
            stats.bytes_read += text.len();
            let item = parse_item(&text)
                .map_err(|e| BaselineError::Other(format!("{}: {e}", f.display())))?;
            let Some(root) = item.get_key("root") else {
                return Err(BaselineError::Other(format!(
                    "{}: no root array",
                    f.display()
                )));
            };
            for rec in root.keys_or_members() {
                let meta = rec
                    .get_key("metadata")
                    .and_then(|m| m.get_key("count"))
                    .and_then(Item::as_number)
                    .and_then(Number::as_i64)
                    .unwrap_or(0);
                for m in rec
                    .get_key("results")
                    .map(|r| r.keys_or_members())
                    .into_iter()
                    .flatten()
                {
                    self.cols.date.push(field_str(&m, "date"));
                    self.cols.data_type.push(field_str(&m, "dataType"));
                    self.cols.station.push(field_str(&m, "station"));
                    self.cols.value.push(
                        m.get_key("value")
                            .and_then(Item::as_number)
                            .and_then(Number::as_i64)
                            .unwrap_or(0),
                    );
                    self.cols.meta_count.push(meta);
                }
            }
            let used = self.memory_used();
            if self.budget > 0 && used > self.budget {
                return Err(BaselineError::OutOfMemory {
                    needed: used,
                    budget: self.budget,
                });
            }
            // Memory pressure: above 50% occupancy the "GC" re-touches
            // the loaded columns — real work whose cost grows with both
            // occupancy and loaded volume, giving superlinear load times.
            if self.budget > 0 && used * 2 > self.budget {
                let pressure = (used * 4 / self.budget).max(1);
                let mut sink = 0u64;
                for _ in 0..pressure {
                    for s in &self.cols.date {
                        sink = sink.wrapping_add(s.len() as u64);
                    }
                    for v in &self.cols.value {
                        sink = sink.wrapping_add(*v as u64);
                    }
                }
                std::hint::black_box(sink);
            }
        }
        self.loaded = true;
        stats.bytes_stored = self.memory_used();
        stats.elapsed = started.elapsed();
        Ok(stats)
    }

    fn run(&mut self, query: BenchQuery) -> Result<RunStats, BaselineError> {
        if !self.loaded {
            return Err(BaselineError::Other("SparkSim::run before load".into()));
        }
        let started = Instant::now();
        let c = &self.cols;
        let mut aggregate = None;
        let rows = match query {
            BenchQuery::Q0 | BenchQuery::Q0b => {
                let mut n = 0usize;
                for d in &c.date {
                    if dec25_2003(d) {
                        n += 1;
                    }
                }
                n
            }
            BenchQuery::Q1 => {
                let mut map: HashMap<&str, i64> = HashMap::new();
                for (d, t) in c.date.iter().zip(&c.data_type) {
                    if &**t == "TMIN" {
                        *map.entry(d).or_insert(0) += 1;
                    }
                }
                map.len()
            }
            BenchQuery::Q2 => {
                let mut tmin: HashMap<(&str, &str), Vec<i64>> = HashMap::new();
                for i in 0..c.value.len() {
                    if &*c.data_type[i] == "TMIN" {
                        tmin.entry((&c.station[i], &c.date[i]))
                            .or_default()
                            .push(c.value[i]);
                    }
                }
                let mut sum = 0i64;
                let mut n = 0i64;
                for i in 0..c.value.len() {
                    if &*c.data_type[i] == "TMAX" {
                        if let Some(mins) = tmin.get(&(&*c.station[i], &*c.date[i])) {
                            for mn in mins {
                                sum += c.value[i] - mn;
                                n += 1;
                            }
                        }
                    }
                }
                aggregate = (n != 0).then(|| (sum as f64 / n as f64) / 10.0);
                1
            }
        };
        Ok(RunStats {
            elapsed: started.elapsed(),
            rows,
            peak_memory: self.memory_used(),
            aggregate,
        })
    }

    fn space_used(&self) -> usize {
        self.memory_used()
    }
}

fn field_str(m: &Item, key: &str) -> Box<str> {
    m.get_key(key).and_then(Item::as_str).unwrap_or("").into()
}

fn dec25_2003(date: &str) -> bool {
    DateTime::parse(date)
        .map(|d| d.year >= 2003 && d.month == 12 && d.day == 25)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::SensorSpec;

    fn dataset(name: &str, records: usize) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("vxq-spark-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        SensorSpec {
            records_per_file: records,
            measurements_per_array: 5,
            ..Default::default()
        }
        .generate(&dir)
        .unwrap();
        dir
    }

    #[test]
    fn loads_and_queries() {
        let dir = dataset("ok", 20);
        let mut s = SparkSim::new(0);
        let load = s.load(&dir).unwrap();
        assert!(load.bytes_read > 0);
        assert_eq!(s.rows_loaded(), 4 * 20 * 5);
        assert!(s.run(BenchQuery::Q1).unwrap().rows > 0);
        assert_eq!(s.run(BenchQuery::Q2).unwrap().rows, 1);
    }

    #[test]
    fn memory_accounts_everything_with_overhead() {
        let dir = dataset("mem", 20);
        let mut s = SparkSim::new(0);
        let load = s.load(&dir).unwrap();
        // Memory exceeds the raw input (paper Table 3: ~8–14×).
        assert!(
            s.memory_used() > load.bytes_read,
            "memory {} vs input {}",
            s.memory_used(),
            load.bytes_read
        );
    }

    #[test]
    fn refuses_dataset_beyond_budget() {
        let dir = dataset("oom", 50);
        let mut s = SparkSim::new(10_000); // tiny budget
        match s.load(&dir) {
            Err(BaselineError::OutOfMemory { .. }) => {}
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
    }
}
