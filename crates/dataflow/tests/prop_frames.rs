//! Property tests for the frame layer (DESIGN.md §7): frame append/read
//! round-trips for arbitrary tuples, tuples never split across frames,
//! and oversized tuples get dedicated big frames.

use dataflow::frame::{Frame, FrameAppender};
use proptest::prelude::*;

/// Arbitrary tuples: 1–6 fields of 0–300 bytes.
fn arb_tuples() -> impl Strategy<Value = Vec<Vec<Vec<u8>>>> {
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..6),
        0..60,
    )
}

fn append_all(tuples: &[Vec<Vec<u8>>], capacity: usize) -> Vec<Frame> {
    let mut app = FrameAppender::new(capacity);
    let mut frames = Vec::new();
    for t in tuples {
        let fields: Vec<&[u8]> = t.iter().map(|f| f.as_slice()).collect();
        loop {
            if app.append(&fields).expect("append") {
                break;
            }
            frames.extend(app.take_frame());
        }
    }
    frames.extend(app.take_frame());
    frames
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn round_trip_all_tuples(tuples in arb_tuples(), cap in 128usize..2048) {
        let frames = append_all(&tuples, cap);
        let mut seen = Vec::new();
        for frame in &frames {
            for t in frame.tuples() {
                let fields: Vec<Vec<u8>> = t.fields().map(|f| f.to_vec()).collect();
                seen.push(fields);
            }
        }
        prop_assert_eq!(seen, tuples);
    }

    #[test]
    fn regular_frames_respect_capacity(tuples in arb_tuples()) {
        let cap = 1024;
        let frames = append_all(&tuples, cap);
        for frame in &frames {
            // A frame exceeds the capacity only when it holds exactly one
            // (oversized) tuple.
            if frame.size() > cap {
                prop_assert_eq!(frame.tuple_count(), 1, "big frame must be a single tuple");
            }
        }
    }

    #[test]
    fn tuple_count_is_preserved(tuples in arb_tuples(), cap in 256usize..4096) {
        let n: usize = append_all(&tuples, cap).iter().map(Frame::tuple_count).sum();
        prop_assert_eq!(n, tuples.len());
    }
}
