//! Cooperative query cancellation.
//!
//! A [`CancelToken`] is created per job by whoever owns the query's
//! lifecycle (the serving layer, a test, a client with a timeout) and
//! threaded through [`crate::context::TaskContext`] into every worker
//! task. Cancellation is **cooperative**: nothing is killed. The runtime
//! calls [`CancelToken::check`] at frame boundaries — the pipe and join
//! receive loops, the source chain head, exchange sends, and the
//! coordinator's result drain — so a fired token unwinds each task at
//! its next frame, running every destructor on the way out: `MemGrant`s
//! release their reservations, run files delete themselves, and the
//! job's `SpillCtx` removes its `vxq-spill-*` directory.
//!
//! Deadlines ride on the same token: a token built with
//! [`CancelToken::with_deadline`] trips itself with
//! [`CancelReason::Deadline`] the first time a check runs past the
//! instant. The flag latches — once fired, a token stays fired, so the
//! job's final error is deterministic even when the channels sever in
//! racy orders behind it.

use crate::error::{DataflowError, Result};
use crate::frame::Frame;
use crate::ops::{BoxWriter, FrameWriter};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a token fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// Explicit [`CancelToken::cancel`] call (client abandoned the query).
    Client,
    /// The token's deadline passed.
    Deadline,
}

const LIVE: u8 = 0;
const BY_CLIENT: u8 = 1;
const BY_DEADLINE: u8 = 2;

/// Shared cancellation flag with an optional deadline. Cheap to check
/// (one relaxed load on the live path) and safe to clone across every
/// task of a job.
#[derive(Debug, Default)]
pub struct CancelToken {
    state: AtomicU8,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only fires on an explicit [`CancelToken::cancel`].
    pub fn new() -> Arc<Self> {
        Arc::new(CancelToken::default())
    }

    /// A token that additionally fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Arc<Self> {
        Arc::new(CancelToken {
            state: AtomicU8::new(LIVE),
            deadline: Some(deadline),
        })
    }

    /// Fire the token on behalf of the client. Idempotent; a deadline
    /// that already fired wins (first reason is kept).
    pub fn cancel(&self) {
        let _ = self
            .state
            .compare_exchange(LIVE, BY_CLIENT, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// The reason the token fired, if it has. Latches an expired deadline.
    pub fn fired(&self) -> Option<CancelReason> {
        match self.state.load(Ordering::Relaxed) {
            BY_CLIENT => Some(CancelReason::Client),
            BY_DEADLINE => Some(CancelReason::Deadline),
            _ => {
                if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    let _ = self.state.compare_exchange(
                        LIVE,
                        BY_DEADLINE,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    );
                    self.fired()
                } else {
                    None
                }
            }
        }
    }

    /// Frame-boundary check: `Err(DataflowError::Cancelled)` once fired.
    pub fn check(&self) -> Result<()> {
        match self.fired() {
            Some(reason) => Err(DataflowError::Cancelled(reason)),
            None => Ok(()),
        }
    }
}

/// Frame-granular cancellation probe for source-stage chains: sources
/// push frames in a tight loop with no receive side, so the runtime puts
/// this writer at the chain head to get the same per-frame check the
/// pipe and join loops perform on their receivers.
pub struct CancelProbe {
    token: Arc<CancelToken>,
    inner: BoxWriter,
}

impl CancelProbe {
    pub fn new(token: Arc<CancelToken>, inner: BoxWriter) -> Self {
        CancelProbe { token, inner }
    }
}

impl FrameWriter for CancelProbe {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn open(&mut self) -> Result<()> {
        self.token.check()?;
        self.inner.open()
    }

    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        self.token.check()?;
        self.inner.next_frame(frame)
    }

    fn close(&mut self) -> Result<()> {
        self.token.check()?;
        self.inner.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn token_latches_client_cancel() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
        t.cancel();
        assert_eq!(t.fired(), Some(CancelReason::Client));
        assert!(matches!(
            t.check(),
            Err(DataflowError::Cancelled(CancelReason::Client))
        ));
        // Latched: still fired on every later check.
        assert!(t.check().is_err());
    }

    #[test]
    fn deadline_fires_and_sticks() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.fired(), Some(CancelReason::Deadline));
        // A client cancel after the deadline does not change the reason.
        t.cancel();
        assert_eq!(t.fired(), Some(CancelReason::Deadline));
    }

    #[test]
    fn future_deadline_stays_live() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(t.check().is_ok());
        t.cancel();
        assert_eq!(t.fired(), Some(CancelReason::Client));
    }
}
