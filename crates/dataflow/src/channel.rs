//! Bounded/unbounded MPSC channels over `std::sync::mpsc`.
//!
//! The cluster originally used `crossbeam::channel`; this module provides
//! the small surface the runtime needs (clonable senders, blocking bounded
//! sends for backpressure, receiver iteration ending at sender drop) with
//! no external dependency. A single [`Sender`] type covers both flavours
//! so exchange code is generic over boundedness.

use std::sync::mpsc;

/// Clonable sending half; bounded sends block when the buffer is full.
pub enum Sender<T> {
    Bounded(mpsc::SyncSender<T>),
    Unbounded(mpsc::Sender<T>),
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        match self {
            Sender::Bounded(tx) => Sender::Bounded(tx.clone()),
            Sender::Unbounded(tx) => Sender::Unbounded(tx.clone()),
        }
    }
}

/// Error returned when the receiving half has been dropped.
#[derive(Debug)]
pub struct SendError<T>(pub T);

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match self {
            Sender::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            Sender::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
        }
    }
}

/// Receiving half; iteration ends once every sender is dropped.
pub struct Receiver<T> {
    rx: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, mpsc::RecvError> {
        self.rx.recv()
    }

    pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
        self.rx.try_recv()
    }

    pub fn iter(&self) -> mpsc::Iter<'_, T> {
        self.rx.iter()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.rx.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.rx.into_iter()
    }
}

/// Channel with an at-most-`cap` frame buffer (backpressure).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender::Bounded(tx), Receiver { rx })
}

/// Channel with an unbounded buffer.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender::Unbounded(tx), Receiver { rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_round_trip_and_eos() {
        let (tx, rx) = bounded::<u32>(2);
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            s.spawn(move || {
                for i in 10..20 {
                    tx2.send(i).unwrap();
                }
            });
            let mut got: Vec<u32> = rx.iter().collect();
            got.sort();
            assert_eq!(got, (0..20).collect::<Vec<_>>());
        });
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_send_blocks_until_drained() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(0).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(1).unwrap(); // blocks until the receiver drains one
            "sent"
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(rx.recv().unwrap(), 0);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(t.join().unwrap(), "sent");
    }
}
