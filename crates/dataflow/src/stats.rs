//! Memory and network accounting.
//!
//! The paper's Table 3 compares the memory footprint of VXQuery (stores
//! only query-relevant data) against SparkSQL (stores everything); the
//! pipelining rules' entire purpose is to shrink the bytes materialized
//! between operators. [`MemTracker`] gives the runtime a cheap, global,
//! thread-safe way to meter exactly that: operators report allocations of
//! *materialized state* (sequences, group tables, join tables) and the
//! tracker keeps the high-water mark.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe memory meter with peak tracking and an optional budget.
#[derive(Debug, Default)]
pub struct MemTracker {
    current: AtomicU64,
    peak: AtomicU64,
    /// Job-lifetime cached state (scanned file bytes, structural
    /// indexes): counted in `current`/`peak` for observability but exempt
    /// from the budget check — an operator cannot release another
    /// subsystem's cache by spilling, so charging it would starve every
    /// grant below the cache's size (work-mem vs. buffer-cache).
    cached: AtomicU64,
    cached_peak: AtomicU64,
    /// 0 = unlimited.
    budget: AtomicU64,
}

impl MemTracker {
    /// Unlimited tracker.
    pub fn new() -> Arc<Self> {
        Arc::new(MemTracker::default())
    }

    /// Tracker that reports when allocations exceed `budget` bytes (the
    /// baselines use this to simulate memory-limited systems).
    pub fn with_budget(budget: usize) -> Arc<Self> {
        let t = MemTracker::default();
        t.budget.store(budget as u64, Ordering::Relaxed);
        Arc::new(t)
    }

    /// Record an allocation of materialized state. Returns `false` when the
    /// budget would be exceeded (the caller decides whether that is fatal).
    /// Cache-class bytes (see [`MemTracker::alloc_cached`]) do not count
    /// against the budget.
    pub fn alloc(&self, bytes: usize) -> bool {
        let now = self.current.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
        self.peak.fetch_max(now, Ordering::Relaxed);
        let budget = self.budget.load(Ordering::Relaxed);
        budget == 0 || now.saturating_sub(self.cached.load(Ordering::Relaxed)) <= budget
    }

    /// Record cache-class bytes: tracked in `current` and `peak` like any
    /// materialized state, but exempt from the budget verdict of
    /// [`MemTracker::alloc`]. Pair with [`MemTracker::free_cached`].
    pub fn alloc_cached(&self, bytes: usize) {
        self.cached.fetch_add(bytes as u64, Ordering::Relaxed);
        let now = self.current.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
        self.peak.fetch_max(now, Ordering::Relaxed);
        self.cached_peak
            .fetch_max(self.cached.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Release cache-class bytes recorded by [`MemTracker::alloc_cached`].
    pub fn free_cached(&self, bytes: usize) {
        let prev = self
            .cached
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(bytes as u64))
            })
            .expect("fetch_update with Some never fails");
        debug_assert!(
            prev >= bytes as u64,
            "MemTracker::free_cached({bytes}) exceeds cached {prev}"
        );
        self.free(bytes);
    }

    /// Record a release. Saturates at zero: a double-free or an over-free
    /// must never wrap the counter and report petabyte peaks. Debug builds
    /// assert so the offending operator is caught in tests.
    pub fn free(&self, bytes: usize) {
        let prev = self
            .current
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(bytes as u64))
            })
            .expect("fetch_update with Some never fails");
        debug_assert!(
            prev >= bytes as u64,
            "MemTracker::free({bytes}) exceeds current {prev}: double-free or unmatched free"
        );
    }

    /// Bytes currently accounted.
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed) as usize
    }

    /// High-water mark.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed) as usize
    }

    /// Cache-class bytes currently accounted.
    pub fn cached(&self) -> usize {
        self.cached.load(Ordering::Relaxed) as usize
    }

    /// High-water mark of the cache class alone.
    pub fn cached_peak(&self) -> usize {
        self.cached_peak.load(Ordering::Relaxed) as usize
    }

    /// Configured budget (0 = unlimited).
    pub fn budget(&self) -> usize {
        self.budget.load(Ordering::Relaxed) as usize
    }

    /// Replace the budget (0 = unlimited). The serving layer uses this to
    /// rebalance fair shares while jobs run: shrinking a running job's
    /// share does not revoke memory it holds, it just makes the job's
    /// next grant growth fail — which is the spill signal.
    pub fn set_budget(&self, budget: usize) {
        self.budget.store(budget as u64, Ordering::Relaxed);
    }

    /// Reset counters (between benchmark runs).
    pub fn reset(&self) {
        self.current.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
        self.cached.store(0, Ordering::Relaxed);
        self.cached_peak.store(0, Ordering::Relaxed);
    }
}

/// RAII reservation that frees its bytes on drop.
pub struct MemReservation {
    tracker: Arc<MemTracker>,
    bytes: usize,
}

impl MemReservation {
    /// Reserve `bytes`, returning `None` if the budget is exceeded.
    pub fn try_new(tracker: Arc<MemTracker>, bytes: usize) -> Option<Self> {
        if tracker.alloc(bytes) {
            Some(MemReservation { tracker, bytes })
        } else {
            tracker.free(bytes);
            None
        }
    }

    /// Grow the reservation; returns `false` on budget violation (the
    /// additional bytes stay accounted either way so peak is accurate).
    pub fn grow(&mut self, bytes: usize) -> bool {
        self.bytes += bytes;
        self.tracker.alloc(bytes)
    }
}

impl Drop for MemReservation {
    fn drop(&mut self) {
        self.tracker.free(self.bytes);
    }
}

/// Per-job counters aggregated by the cluster after a run.
#[derive(Debug, Default, Clone)]
pub struct JobStats {
    /// Simulated cluster time: the schedule makespan computed from each
    /// worker task's CPU time and the cluster's core budget (see
    /// [`crate::cputime`]). On a host with enough physical cores this
    /// tracks `wall_elapsed`; on smaller hosts it reports what the
    /// modelled cluster would achieve. **The benchmark harness reports
    /// this number.**
    pub elapsed: std::time::Duration,
    /// Raw coordinator wall-clock time of the run.
    pub wall_elapsed: std::time::Duration,
    /// Total CPU time across all worker tasks.
    pub cpu_total: std::time::Duration,
    /// Peak materialized bytes across the whole cluster.
    pub peak_memory: usize,
    /// Peak cache-class bytes (scanned files kept resident for the job) —
    /// included in `peak_memory`, exempt from the spill budget.
    pub peak_cached: usize,
    /// Bytes that crossed a node boundary through exchanges.
    pub network_bytes: usize,
    /// Frames sent through exchanges (local + remote).
    pub frames_shipped: usize,
    /// Tuples emitted by the final sink.
    pub result_tuples: usize,
    /// Raw bytes read by scan sources.
    pub bytes_scanned: usize,
    /// Spill totals: runs written, bytes spilled, merge passes, and the
    /// `budget_exceeded` flag (see [`crate::spill`]).
    pub spill: crate::spill::SpillSummary,
    /// Per-operator metrics (always collected; see [`crate::profile`]).
    pub profile: crate::profile::JobProfile,
}

/// Shared mutable counters the runtime updates during execution.
#[derive(Debug, Default)]
pub struct Counters {
    pub network_bytes: AtomicU64,
    pub frames_shipped: AtomicU64,
    pub bytes_scanned: AtomicU64,
    /// `(node, task cpu time)` per finished worker task.
    pub task_cpu: std::sync::Mutex<Vec<(usize, std::time::Duration)>>,
}

impl Counters {
    pub fn new() -> Arc<Self> {
        Arc::new(Counters::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_peak() {
        let t = MemTracker::new();
        t.alloc(100);
        t.alloc(50);
        t.free(120);
        t.alloc(10);
        assert_eq!(t.current(), 40);
        assert_eq!(t.peak(), 150);
    }

    #[test]
    fn overfree_saturates_instead_of_wrapping() {
        let t = MemTracker::new();
        t.alloc(10);
        let result = std::panic::catch_unwind({
            let t = t.clone();
            move || t.free(20)
        });
        if cfg!(debug_assertions) {
            assert!(result.is_err(), "debug builds must flag the over-free");
        } else {
            assert!(result.is_ok());
        }
        assert_eq!(t.current(), 0, "counter must saturate, not wrap");
        t.alloc(5);
        assert_eq!(t.current(), 5);
        assert!(t.peak() < 1 << 40, "peak must not report wrapped values");
    }

    #[test]
    fn budget_violation_reported() {
        let t = MemTracker::with_budget(100);
        assert!(t.alloc(60));
        assert!(!t.alloc(60));
    }

    #[test]
    fn reservation_frees_on_drop() {
        let t = MemTracker::new();
        {
            let mut r = MemReservation::try_new(t.clone(), 64).unwrap();
            assert!(r.grow(36));
            assert_eq!(t.current(), 100);
        }
        assert_eq!(t.current(), 0);
        assert_eq!(t.peak(), 100);
    }

    #[test]
    fn reservation_respects_budget() {
        let t = MemTracker::with_budget(32);
        assert!(MemReservation::try_new(t.clone(), 64).is_none());
        assert_eq!(t.current(), 0);
    }

    #[test]
    fn concurrent_updates_are_consistent() {
        let t = MemTracker::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        t.alloc(8);
                        t.free(8);
                    }
                });
            }
        });
        assert_eq!(t.current(), 0);
        assert!(t.peak() >= 8);
    }
}
