//! SORT — materializing order-by.

use super::eval::ScalarEvaluator;
use super::{BoxWriter, FrameWriter, OutBuffer};
use crate::error::Result;
use crate::frame::{Frame, TupleRef};
use crate::stats::MemTracker;
use std::sync::Arc;

/// Materializing sort: buffers all input tuples together with their
/// evaluated sort keys, sorts at close, and emits in order. The buffer is
/// reported to the memory tracker (sorting is a full materialization,
/// like the pre-rewrite group-by).
pub struct SortOp {
    /// One evaluator per sort key, paired with `true` for ascending.
    keys: Vec<(Box<dyn ScalarEvaluator>, bool)>,
    /// `(key items, raw tuple bytes)` pairs.
    rows: Vec<(Vec<jdm::Item>, Box<[u8]>)>,
    mem: Arc<MemTracker>,
    tracked: usize,
    out: OutBuffer,
}

impl SortOp {
    pub fn new(
        keys: Vec<(Box<dyn ScalarEvaluator>, bool)>,
        mem: Arc<MemTracker>,
        frame_size: usize,
        out: BoxWriter,
    ) -> Self {
        SortOp {
            keys,
            rows: Vec::new(),
            mem,
            tracked: 0,
            out: OutBuffer::new(frame_size, out),
        }
    }
}

impl FrameWriter for SortOp {
    fn name(&self) -> &'static str {
        "SORT"
    }

    fn open(&mut self) -> Result<()> {
        self.out.open()
    }

    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        let mut scratch = Vec::new();
        for t in frame.tuples() {
            let mut key_items = Vec::with_capacity(self.keys.len());
            for (eval, _) in &mut self.keys {
                scratch.clear();
                eval.eval(&t, &mut scratch)?;
                let item = jdm::binary::ItemRef::new(&scratch)
                    .and_then(|r| r.to_item())
                    .map_err(|e| crate::error::DataflowError::Eval(e.to_string()))?;
                key_items.push(item);
            }
            let bytes: Box<[u8]> = t.bytes().into();
            self.tracked += bytes.len() + 64;
            self.mem.alloc(bytes.len() + 64);
            self.rows.push((key_items, bytes));
        }
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        let ascending: Vec<bool> = self.keys.iter().map(|(_, asc)| *asc).collect();
        self.rows.sort_by(|(a, _), (b, _)| {
            for (i, asc) in ascending.iter().enumerate() {
                let ord = a[i].total_cmp(&b[i]);
                let ord = if *asc { ord } else { ord.reverse() };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        for (_, bytes) in std::mem::take(&mut self.rows) {
            self.out.push_tuple(&TupleRef::from_bytes(&bytes))?;
        }
        self.mem.free(self.tracked);
        self.tracked = 0;
        self.out.close()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{feed, CaptureWriter};
    use super::*;
    use jdm::binary::ItemRef;
    use jdm::Item;

    /// Key = field `i` of the tuple.
    struct FieldKey(usize);
    impl ScalarEvaluator for FieldKey {
        fn eval(&mut self, t: &TupleRef<'_>, out: &mut Vec<u8>) -> Result<()> {
            out.extend_from_slice(t.field(self.0));
            Ok(())
        }
    }

    #[test]
    fn sorts_ascending_and_descending() {
        let rows: Vec<Vec<Item>> = [3, 1, 2]
            .iter()
            .map(|&i| vec![Item::int(i), Item::str("x")])
            .collect();

        let cap = CaptureWriter::new();
        let mut op = SortOp::new(
            vec![(Box::new(FieldKey(0)), true)],
            MemTracker::new(),
            1024,
            Box::new(cap.clone()),
        );
        feed(&mut op, &rows);
        let got: Vec<i64> = cap
            .take()
            .iter()
            .map(|r| r[0].as_number().unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(got, vec![1, 2, 3]);

        let cap2 = CaptureWriter::new();
        let mut op2 = SortOp::new(
            vec![(Box::new(FieldKey(0)), false)],
            MemTracker::new(),
            1024,
            Box::new(cap2.clone()),
        );
        feed(&mut op2, &rows);
        let got2: Vec<i64> = cap2
            .take()
            .iter()
            .map(|r| r[0].as_number().unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(got2, vec![3, 2, 1]);
    }

    #[test]
    fn multi_key_sort_breaks_ties() {
        let rows = vec![
            vec![Item::str("b"), Item::int(1)],
            vec![Item::str("a"), Item::int(2)],
            vec![Item::str("a"), Item::int(1)],
        ];
        let cap = CaptureWriter::new();
        let mut op = SortOp::new(
            vec![(Box::new(FieldKey(0)), true), (Box::new(FieldKey(1)), true)],
            MemTracker::new(),
            1024,
            Box::new(cap.clone()),
        );
        feed(&mut op, &rows);
        let got = cap.take();
        assert_eq!(got[0], vec![Item::str("a"), Item::int(1)]);
        assert_eq!(got[1], vec![Item::str("a"), Item::int(2)]);
        assert_eq!(got[2], vec![Item::str("b"), Item::int(1)]);
    }

    #[test]
    fn memory_is_tracked_and_freed() {
        let mem = MemTracker::new();
        let cap = CaptureWriter::new();
        let mut op = SortOp::new(
            vec![(Box::new(FieldKey(0)), true)],
            mem.clone(),
            1024,
            Box::new(cap.clone()),
        );
        let rows: Vec<Vec<Item>> = (0..50).map(|i| vec![Item::int(i)]).collect();
        feed(&mut op, &rows);
        assert!(mem.peak() > 0);
        assert_eq!(mem.current(), 0);
        // Sanity: output intact.
        let decoded = cap.take();
        assert_eq!(decoded.len(), 50);
        let _ = ItemRef::new(&jdm::binary::to_bytes(&decoded[0][0])).unwrap();
    }
}
