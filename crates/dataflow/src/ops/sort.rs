//! SORT — order-by as an external merge sort.
//!
//! Input tuples accumulate in memory under a [`MemGrant`]; when the grant
//! is refused, the buffered rows are sorted and written out as one sorted
//! run, and accumulation restarts. At close, runs are merged k-ways
//! (respecting the configured fan-in, so a tight fan-in forces multiple
//! merge passes, as in Hyracks' external sort). With no budget pressure
//! the operator never touches disk and behaves exactly like the previous
//! fully-materializing sort.
//!
//! Run record format: `[u32 klen][key bytes][tuple bytes]` inside the
//! run-file framing — the serialized key items ride along so merges never
//! re-evaluate sort keys.

use super::eval::ScalarEvaluator;
use super::{BoxWriter, FrameWriter, OutBuffer};
use crate::error::{DataflowError, Result};
use crate::frame::{Frame, TupleRef};
use crate::spill::{MemGrant, RunReader, RunToken, SpillHandle};
use jdm::binary::{item_len, ItemRef};
use jdm::Item;
use std::cmp::Ordering;

/// Per-row bookkeeping overhead charged to the memory grant on top of the
/// raw tuple bytes (key items, vec headers).
const ROW_OVERHEAD: usize = 64;

/// Compare two key vectors under per-key ascending flags.
fn cmp_keys(a: &[Item], b: &[Item], ascending: &[bool]) -> Ordering {
    for (i, asc) in ascending.iter().enumerate() {
        let ord = a[i].total_cmp(&b[i]);
        let ord = if *asc { ord } else { ord.reverse() };
        if !ord.is_eq() {
            return ord;
        }
    }
    Ordering::Equal
}

/// External merge sort operator.
pub struct SortOp {
    /// One evaluator per sort key, paired with `true` for ascending.
    keys: Vec<(Box<dyn ScalarEvaluator>, bool)>,
    /// In-memory `(key items, raw tuple bytes)` pairs of the current run.
    rows: Vec<(Vec<Item>, Box<[u8]>)>,
    grant: MemGrant,
    spill: SpillHandle,
    runs: Vec<RunToken>,
    out: OutBuffer,
}

impl SortOp {
    pub fn new(
        keys: Vec<(Box<dyn ScalarEvaluator>, bool)>,
        spill: SpillHandle,
        frame_size: usize,
        out: BoxWriter,
    ) -> Self {
        SortOp {
            keys,
            rows: Vec::new(),
            grant: spill.grant(),
            spill,
            runs: Vec::new(),
            out: OutBuffer::new(frame_size, out),
        }
    }

    fn ascending(&self) -> Vec<bool> {
        self.keys.iter().map(|(_, asc)| *asc).collect()
    }

    fn sort_rows(rows: &mut [(Vec<Item>, Box<[u8]>)], ascending: &[bool]) {
        // Stable: ties keep arrival order, in memory and across runs (the
        // merge breaks ties by run age).
        rows.sort_by(|(a, _), (b, _)| cmp_keys(a, b, ascending));
    }

    /// Sort the buffered rows and write them out as one run, releasing
    /// their memory.
    fn spill_run(&mut self) -> Result<()> {
        let ascending = self.ascending();
        let mut rows = std::mem::take(&mut self.rows);
        Self::sort_rows(&mut rows, &ascending);
        let mut w = self.spill.new_run()?;
        let mut kbuf = Vec::new();
        for (key_items, bytes) in &rows {
            kbuf.clear();
            for k in key_items {
                jdm::binary::write_item(k, &mut kbuf);
            }
            let klen = u32::try_from(kbuf.len())
                .map_err(|_| DataflowError::Spill("sort key too large".into()))?;
            w.push(&[&klen.to_le_bytes(), &kbuf, bytes])?;
        }
        let token = w.finish()?;
        self.spill.note_spilled(token.bytes, token.tuples);
        self.runs.push(token);
        self.grant.release_all();
        Ok(())
    }

    /// Merge a batch of runs into one new run.
    fn merge_to_run(&mut self, tokens: Vec<RunToken>) -> Result<RunToken> {
        let ascending = self.ascending();
        let nkeys = self.keys.len();
        self.spill.note_merge_pass();
        let mut w = self.spill.new_run()?;
        merge_runs(tokens, &ascending, nkeys, |blob, _key_end| w.push(&[blob]))?;
        let token = w.finish()?;
        self.spill.note_spilled(token.bytes, token.tuples);
        Ok(token)
    }
}

/// Merge sorted runs, feeding each winning record (whole blob + offset of
/// its tuple bytes) to `emit`. Ties go to the older (lower-index) run,
/// preserving global stability.
fn merge_runs<F>(tokens: Vec<RunToken>, ascending: &[bool], nkeys: usize, mut emit: F) -> Result<()>
where
    F: FnMut(&[u8], usize) -> Result<()>,
{
    let mut cursors = Vec::with_capacity(tokens.len());
    for token in tokens {
        let mut c = RunCursor {
            reader: RunReader::open(token)?,
            blob: Vec::new(),
            keys: Vec::new(),
            key_end: 0,
            done: false,
        };
        c.advance(nkeys)?;
        cursors.push(c);
    }
    loop {
        // Fan-in is small (config-clamped), so a linear minimum scan
        // beats heap bookkeeping here.
        let mut best: Option<usize> = None;
        for (i, c) in cursors.iter().enumerate() {
            if c.done {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    if cmp_keys(&c.keys, &cursors[b].keys, ascending).is_lt() {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let Some(i) = best else { break };
        emit(&cursors[i].blob, cursors[i].key_end)?;
        cursors[i].advance(nkeys)?;
    }
    Ok(())
}

/// One run's read head during a merge.
struct RunCursor {
    reader: RunReader,
    blob: Vec<u8>,
    keys: Vec<Item>,
    /// Offset of the tuple bytes within `blob`.
    key_end: usize,
    done: bool,
}

impl RunCursor {
    fn advance(&mut self, nkeys: usize) -> Result<()> {
        if !self.reader.next_into(&mut self.blob)? {
            self.done = true;
            self.keys.clear();
            return Ok(());
        }
        if self.blob.len() < 4 {
            return Err(DataflowError::BadFrame("truncated sort run record".into()));
        }
        let klen =
            u32::from_le_bytes([self.blob[0], self.blob[1], self.blob[2], self.blob[3]]) as usize;
        self.key_end = 4 + klen;
        if self.blob.len() < self.key_end {
            return Err(DataflowError::BadFrame(
                "sort run key overruns record".into(),
            ));
        }
        let mut rest = &self.blob[4..self.key_end];
        self.keys.clear();
        for _ in 0..nkeys {
            let len = item_len(rest)
                .map_err(|e| DataflowError::BadFrame(format!("corrupt sort key bytes: {e}")))?;
            let item = ItemRef::new(&rest[..len])
                .and_then(|r| r.to_item())
                .map_err(|e| DataflowError::BadFrame(format!("corrupt sort key bytes: {e}")))?;
            self.keys.push(item);
            rest = &rest[len..];
        }
        if !rest.is_empty() {
            return Err(DataflowError::BadFrame(
                "sort run key bytes have trailing garbage".into(),
            ));
        }
        Ok(())
    }
}

impl FrameWriter for SortOp {
    fn name(&self) -> &'static str {
        "SORT"
    }

    fn open(&mut self) -> Result<()> {
        self.out.open()
    }

    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        let mut scratch = Vec::new();
        for t in frame.tuples() {
            let mut key_items = Vec::with_capacity(self.keys.len());
            for (eval, _) in &mut self.keys {
                scratch.clear();
                eval.eval(&t, &mut scratch)?;
                let item = ItemRef::new(&scratch)
                    .and_then(|r| r.to_item())
                    .map_err(|e| DataflowError::Eval(e.to_string()))?;
                key_items.push(item);
            }
            let bytes: Box<[u8]> = t.bytes().into();
            let cost = bytes.len() + ROW_OVERHEAD;
            if !self.grant.try_grow(cost) {
                // Budget pressure: flush the buffer as a sorted run, then
                // retry. A single tuple larger than the whole budget still
                // has to be held somewhere — account it and flag the job.
                if !self.rows.is_empty() {
                    self.spill_run()?;
                }
                if !self.grant.try_grow(cost) {
                    self.grant.grow_anyway(cost);
                }
            }
            self.rows.push((key_items, bytes));
        }
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        if self.runs.is_empty() {
            // Pure in-memory path: sort and emit, no disk involved.
            let ascending = self.ascending();
            let mut rows = std::mem::take(&mut self.rows);
            Self::sort_rows(&mut rows, &ascending);
            for (_, bytes) in rows {
                self.out.push_tuple(&TupleRef::from_bytes(&bytes))?;
            }
        } else {
            if !self.rows.is_empty() {
                self.spill_run()?;
            }
            // Reduce the run count to the merge fan-in, oldest first so
            // ties keep arrival order, then stream the final merge.
            let fan = self.spill.config().fan_in();
            while self.runs.len() > fan {
                let old = std::mem::take(&mut self.runs);
                let mut next = Vec::new();
                let mut iter = old.into_iter().peekable();
                while iter.peek().is_some() {
                    let batch: Vec<RunToken> = iter.by_ref().take(fan).collect();
                    if batch.len() == 1 {
                        next.extend(batch);
                    } else {
                        next.push(self.merge_to_run(batch)?);
                    }
                }
                self.runs = next;
            }
            let tokens = std::mem::take(&mut self.runs);
            let ascending = self.ascending();
            let nkeys = self.keys.len();
            self.spill.note_merge_pass();
            let out = &mut self.out;
            merge_runs(tokens, &ascending, nkeys, |blob, key_end| {
                out.push_tuple(&TupleRef::from_bytes(&blob[key_end..]))
            })?;
        }
        self.spill.finish(&self.grant);
        self.grant.release_all();
        self.out.close()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{feed, CaptureWriter};
    use super::*;
    use crate::spill::{SpillConfig, SpillCtx};
    use crate::stats::MemTracker;
    use jdm::binary::ItemRef;
    use std::sync::Arc;

    /// Key = field `i` of the tuple.
    struct FieldKey(usize);
    impl ScalarEvaluator for FieldKey {
        fn eval(&mut self, t: &TupleRef<'_>, out: &mut Vec<u8>) -> Result<()> {
            out.extend_from_slice(t.field(self.0));
            Ok(())
        }
    }

    fn scratch_root(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("vxq-sort-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn budgeted_ctx(root: &std::path::Path, budget: usize, fan_in: usize) -> Arc<SpillCtx> {
        SpillCtx::new(
            MemTracker::with_budget(budget),
            SpillConfig {
                dir: Some(root.to_path_buf()),
                merge_fan_in: fan_in,
                ..SpillConfig::default()
            },
        )
    }

    fn unlimited_handle() -> SpillHandle {
        SpillCtx::unlimited().handle("SORT", 0, 0)
    }

    #[test]
    fn sorts_ascending_and_descending() {
        let rows: Vec<Vec<Item>> = [3, 1, 2]
            .iter()
            .map(|&i| vec![Item::int(i), Item::str("x")])
            .collect();

        let cap = CaptureWriter::new();
        let mut op = SortOp::new(
            vec![(Box::new(FieldKey(0)), true)],
            unlimited_handle(),
            1024,
            Box::new(cap.clone()),
        );
        feed(&mut op, &rows);
        let got: Vec<i64> = cap
            .take()
            .iter()
            .map(|r| r[0].as_number().unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(got, vec![1, 2, 3]);

        let cap2 = CaptureWriter::new();
        let mut op2 = SortOp::new(
            vec![(Box::new(FieldKey(0)), false)],
            unlimited_handle(),
            1024,
            Box::new(cap2.clone()),
        );
        feed(&mut op2, &rows);
        let got2: Vec<i64> = cap2
            .take()
            .iter()
            .map(|r| r[0].as_number().unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(got2, vec![3, 2, 1]);
    }

    #[test]
    fn multi_key_sort_breaks_ties() {
        let rows = vec![
            vec![Item::str("b"), Item::int(1)],
            vec![Item::str("a"), Item::int(2)],
            vec![Item::str("a"), Item::int(1)],
        ];
        let cap = CaptureWriter::new();
        let mut op = SortOp::new(
            vec![(Box::new(FieldKey(0)), true), (Box::new(FieldKey(1)), true)],
            unlimited_handle(),
            1024,
            Box::new(cap.clone()),
        );
        feed(&mut op, &rows);
        let got = cap.take();
        assert_eq!(got[0], vec![Item::str("a"), Item::int(1)]);
        assert_eq!(got[1], vec![Item::str("a"), Item::int(2)]);
        assert_eq!(got[2], vec![Item::str("b"), Item::int(1)]);
    }

    #[test]
    fn memory_is_tracked_and_freed() {
        let ctx = SpillCtx::unlimited();
        let mem = ctx.memory().clone();
        let cap = CaptureWriter::new();
        let mut op = SortOp::new(
            vec![(Box::new(FieldKey(0)), true)],
            ctx.handle("SORT", 0, 0),
            1024,
            Box::new(cap.clone()),
        );
        let rows: Vec<Vec<Item>> = (0..50).map(|i| vec![Item::int(i)]).collect();
        feed(&mut op, &rows);
        assert!(mem.peak() > 0);
        assert_eq!(mem.current(), 0);
        // Sanity: output intact.
        let decoded = cap.take();
        assert_eq!(decoded.len(), 50);
        let _ = ItemRef::new(&jdm::binary::to_bytes(&decoded[0][0])).unwrap();
    }

    #[test]
    fn external_sort_matches_in_memory_sort() {
        // Deterministic pseudo-random ordering with duplicate keys, so the
        // external path exercises both merging and stability.
        let rows: Vec<Vec<Item>> = (0..500u64)
            .map(|i| {
                let k = (i.wrapping_mul(2654435761) >> 7) % 50;
                vec![Item::int(k as i64), Item::int(i as i64)]
            })
            .collect();

        let cap_mem = CaptureWriter::new();
        let mut in_mem = SortOp::new(
            vec![(Box::new(FieldKey(0)), true)],
            unlimited_handle(),
            4096,
            Box::new(cap_mem.clone()),
        );
        feed(&mut in_mem, &rows);
        let expect = cap_mem.take();

        let root = scratch_root("matches");
        let ctx = budgeted_ctx(&root, 2 * 1024, 4);
        let cap_ext = CaptureWriter::new();
        let mut ext = SortOp::new(
            vec![(Box::new(FieldKey(0)), true)],
            ctx.handle("SORT", 0, 0),
            4096,
            Box::new(cap_ext.clone()),
        );
        feed(&mut ext, &rows);
        assert_eq!(cap_ext.take(), expect, "spilled sort must be stable too");
        let s = ctx.summary();
        assert!(s.runs_written >= 2, "budget must have forced runs: {s:?}");
        assert!(s.merge_passes >= 1);
        assert_eq!(ctx.memory().current(), 0, "grant released at close");
        assert!(!s.budget_exceeded, "spilling avoids violations");
        drop(ext);
        drop(ctx);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn tight_fan_in_forces_multiple_merge_passes() {
        let rows: Vec<Vec<Item>> = (0..400).map(|i| vec![Item::int(399 - i)]).collect();
        let root = scratch_root("fanin");
        let ctx = budgeted_ctx(&root, 512, 2);
        let cap = CaptureWriter::new();
        let mut op = SortOp::new(
            vec![(Box::new(FieldKey(0)), true)],
            ctx.handle("SORT", 0, 0),
            4096,
            Box::new(cap.clone()),
        );
        feed(&mut op, &rows);
        let got: Vec<i64> = cap
            .take()
            .iter()
            .map(|r| r[0].as_number().unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(got, (0..400).collect::<Vec<_>>());
        let s = ctx.summary();
        assert!(
            s.merge_passes >= 2,
            "fan-in 2 over {} runs needs intermediate merges: {s:?}",
            s.runs_written
        );
        drop(op);
        drop(ctx);
        let _ = std::fs::remove_dir_all(root);
    }
}
