//! Result sink: ships final frames to the coordinator thread.

use super::FrameWriter;
use crate::channel::Sender;
use crate::error::{DataflowError, Result};
use crate::frame::Frame;

/// Terminal writer of a job: forwards result frames over a channel to the
/// coordinator (the paper's "distribution of each object" final step).
pub struct CollectorWriter {
    tx: Option<Sender<Frame>>,
}

impl CollectorWriter {
    pub fn new(tx: Sender<Frame>) -> Self {
        CollectorWriter { tx: Some(tx) }
    }
}

impl FrameWriter for CollectorWriter {
    fn name(&self) -> &'static str {
        "SINK"
    }

    fn open(&mut self) -> Result<()> {
        Ok(())
    }

    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        if let Some(tx) = &self.tx {
            tx.send(frame.clone())
                .map_err(|_| DataflowError::Worker("result collector disconnected".into()))?;
        }
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        self.tx = None; // drop our sender so the coordinator unblocks
        Ok(())
    }
}
