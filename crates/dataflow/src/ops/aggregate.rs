//! AGGREGATE — fold an entire input stream into one tuple.

use super::eval::Aggregator;
use super::{BoxWriter, FrameWriter, OutBuffer};
use crate::error::Result;
use crate::frame::Frame;

/// Global aggregation (paper §3.2): "executes an aggregate expression to
/// create a result tuple from a stream of input tuples. The result is held
/// until all tuples are processed and then returned in a single tuple."
///
/// With the two-step aggregation rule, one `AggregateOp` per partition
/// computes a local aggregate and a second, single-partition instance
/// merges them — both are this operator with different aggregator
/// factories.
pub struct AggregateOp {
    agg: Box<dyn Aggregator>,
    out: OutBuffer,
}

impl AggregateOp {
    pub fn new(agg: Box<dyn Aggregator>, frame_size: usize, out: BoxWriter) -> Self {
        AggregateOp {
            agg,
            out: OutBuffer::new(frame_size, out),
        }
    }
}

impl FrameWriter for AggregateOp {
    fn name(&self) -> &'static str {
        "AGGREGATE"
    }

    fn open(&mut self) -> Result<()> {
        self.out.open()
    }

    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        for t in frame.tuples() {
            self.agg.step(&t)?;
        }
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        let mut result = Vec::new();
        self.agg.finish(&mut result)?;
        self.out.push_fields(&[&result])?;
        self.out.close()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{feed, CaptureWriter};
    use super::*;
    use crate::frame::TupleRef;
    use jdm::binary::write_item;
    use jdm::Item;

    struct CountAgg(i64);
    impl Aggregator for CountAgg {
        fn step(&mut self, _t: &TupleRef<'_>) -> Result<()> {
            self.0 += 1;
            Ok(())
        }
        fn finish(&mut self, out: &mut Vec<u8>) -> Result<()> {
            write_item(&Item::int(self.0), out);
            Ok(())
        }
    }

    #[test]
    fn aggregate_counts_stream() {
        let cap = CaptureWriter::new();
        let mut op = AggregateOp::new(Box::new(CountAgg(0)), 1024, Box::new(cap.clone()));
        let rows: Vec<Vec<Item>> = (0..25).map(|i| vec![Item::int(i)]).collect();
        feed(&mut op, &rows);
        assert_eq!(cap.take(), vec![vec![Item::int(25)]]);
    }

    #[test]
    fn aggregate_of_empty_stream_still_emits() {
        let cap = CaptureWriter::new();
        let mut op = AggregateOp::new(Box::new(CountAgg(0)), 1024, Box::new(cap.clone()));
        feed(&mut op, &[]);
        assert_eq!(cap.take(), vec![vec![Item::int(0)]]);
    }
}
