//! Language-facing extension points.
//!
//! Hyracks "defines interfaces that allow users of the platform to specify
//! the data-type details for comparing, hashing, serializing and
//! de-serializing data" (paper §3.1). These traits are our equivalents:
//! the JSONiq layer implements them; the runtime only ever sees bytes.

use crate::error::Result;
use crate::frame::TupleRef;

/// Evaluates a scalar expression over one tuple, appending the serialized
/// result item to `out`. Evaluators may keep scratch buffers (hence `&mut`).
pub trait ScalarEvaluator: Send {
    /// Evaluate; append exactly one serialized item to `out`.
    fn eval(&mut self, tuple: &TupleRef<'_>, out: &mut Vec<u8>) -> Result<()>;
}

/// Creates per-partition [`ScalarEvaluator`]s (factories are shared across
/// worker threads, evaluators are not).
pub trait ScalarEvaluatorFactory: Send + Sync {
    fn create(&self) -> Box<dyn ScalarEvaluator>;
}

/// Evaluates an unnesting expression over one tuple, emitting zero or more
/// serialized items.
pub trait UnnestEvaluator: Send {
    fn eval(
        &mut self,
        tuple: &TupleRef<'_>,
        emit: &mut dyn FnMut(&[u8]) -> Result<()>,
    ) -> Result<()>;
}

/// Creates per-partition [`UnnestEvaluator`]s.
pub trait UnnestEvaluatorFactory: Send + Sync {
    fn create(&self) -> Box<dyn UnnestEvaluator>;
}

/// Incremental aggregation state (one instance per group).
pub trait Aggregator: Send {
    /// Fold one tuple into the state.
    fn step(&mut self, tuple: &TupleRef<'_>) -> Result<()>;
    /// Append the serialized result item to `out`.
    fn finish(&mut self, out: &mut Vec<u8>) -> Result<()>;
    /// Bytes of state held (sequence-building aggregators report their
    /// buffered data so the memory tracker sees pre-rewrite plans' cost).
    fn state_size(&self) -> usize {
        0
    }
}

/// Creates [`Aggregator`]s; one per group for grouped aggregation.
pub trait AggregatorFactory: Send + Sync {
    fn create(&self) -> Box<dyn Aggregator>;
}

/// Callback used by scan sources to emit tuples (field slices).
pub type TupleEmitter<'a> = dyn FnMut(&[&[u8]]) -> Result<()> + 'a;

/// A self-driving data source for one partition (the DATASCAN runtime).
/// Implementations read their partition's share of the data and emit one
/// tuple per produced item.
pub trait ScanSource: Send {
    fn run(&mut self, emit: &mut TupleEmitter<'_>) -> Result<()>;
}

/// Creates per-partition scan sources. The context carries the partition
/// index (which slice of the data to read), the node's CPU gate, and the
/// counters scan implementations report raw bytes to.
pub trait ScanSourceFactory: Send + Sync {
    fn create(&self, ctx: &crate::context::TaskContext) -> Result<Box<dyn ScanSource>>;
}
