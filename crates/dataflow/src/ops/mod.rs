//! Physical operators.
//!
//! Operators are **push-based**, as in Hyracks: a producer calls
//! [`FrameWriter::open`], pushes frames with [`FrameWriter::next_frame`],
//! and finishes with [`FrameWriter::close`]. Operators own their downstream
//! writer, so a fused pipeline is just a chain of boxed writers.
//!
//! The runtime is data-agnostic: everything language-specific (JSONiq
//! expressions, aggregation functions, scan sources) arrives as trait
//! objects defined in [`eval`].

pub mod aggregate;
pub mod assign;
pub mod eval;
pub mod groupby;
pub mod join;
pub mod project;
pub mod select;
pub mod sink;
pub mod sort;
pub mod source;
pub mod unnest;

pub use aggregate::AggregateOp;
pub use assign::AssignOp;
pub use eval::{
    Aggregator, AggregatorFactory, ScalarEvaluator, ScanSource, TupleEmitter, UnnestEvaluator,
};
pub use groupby::{HashGroupByOp, MaterializingGroupByOp};
pub use join::HashJoinOp;
pub use project::ProjectOp;
pub use select::SelectOp;
pub use sink::CollectorWriter;
pub use sort::SortOp;
pub use source::run_source;
pub use unnest::UnnestOp;

use crate::error::Result;
use crate::frame::{Frame, FrameAppender, TupleRef};

/// The push-based operator interface (Hyracks' `IFrameWriter`).
pub trait FrameWriter: Send {
    /// Called once before any frames.
    fn open(&mut self) -> Result<()>;
    /// Push one frame of tuples.
    fn next_frame(&mut self, frame: &Frame) -> Result<()>;
    /// Called once after the last frame; operators flush pending output
    /// and close their downstream here.
    fn close(&mut self) -> Result<()>;
    /// Operator name shown in profiles and EXPLAIN ANALYZE output.
    fn name(&self) -> &'static str {
        "OP"
    }
}

/// Boxed writer alias used throughout the job layer.
pub type BoxWriter = Box<dyn FrameWriter>;

/// Buffers output tuples into frames and pushes full frames downstream.
/// Every tuple-producing operator embeds one of these.
pub struct OutBuffer {
    app: FrameAppender,
    out: BoxWriter,
}

impl OutBuffer {
    /// New buffer producing frames of `frame_size` bytes into `out`.
    pub fn new(frame_size: usize, out: BoxWriter) -> Self {
        OutBuffer {
            app: FrameAppender::new(frame_size),
            out,
        }
    }

    /// Open the downstream writer.
    pub fn open(&mut self) -> Result<()> {
        self.out.open()
    }

    /// Append a tuple built from field slices, flushing as needed.
    pub fn push_fields(&mut self, fields: &[&[u8]]) -> Result<()> {
        loop {
            if self.app.append(fields)? {
                return Ok(());
            }
            self.flush()?;
        }
    }

    /// Append a copy of an existing tuple.
    pub fn push_tuple(&mut self, t: &TupleRef<'_>) -> Result<()> {
        loop {
            if self.app.append_tuple(t)? {
                return Ok(());
            }
            self.flush()?;
        }
    }

    /// Append a tuple made of an existing tuple's fields plus extras.
    /// This is the common ASSIGN/UNNEST output shape: input ++ new field.
    pub fn push_extended(&mut self, base: &TupleRef<'_>, extra: &[&[u8]]) -> Result<()> {
        let mut fields: Vec<&[u8]> = Vec::with_capacity(base.field_count() + extra.len());
        fields.extend(base.fields());
        fields.extend_from_slice(extra);
        self.push_fields(&fields)
    }

    /// Send any buffered tuples downstream now.
    pub fn flush(&mut self) -> Result<()> {
        if let Some(frame) = self.app.take_frame() {
            self.out.next_frame(&frame)?;
        }
        Ok(())
    }

    /// Flush and close downstream.
    pub fn close(&mut self) -> Result<()> {
        self.flush()?;
        self.out.close()
    }
}

/// A writer that drops everything (tests, EXPLAIN-only runs).
pub struct NullWriter;

impl FrameWriter for NullWriter {
    fn open(&mut self) -> Result<()> {
        Ok(())
    }
    fn next_frame(&mut self, _frame: &Frame) -> Result<()> {
        Ok(())
    }
    fn close(&mut self) -> Result<()> {
        Ok(())
    }
    fn name(&self) -> &'static str {
        "NULL"
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for operator unit tests.

    use super::*;
    use jdm::binary::to_bytes;
    use jdm::Item;
    use std::sync::{Arc, Mutex};

    /// Writer that records decoded rows for assertions.
    #[derive(Clone, Default)]
    pub struct CaptureWriter {
        pub rows: Arc<Mutex<Vec<Vec<Item>>>>,
        pub closed: Arc<Mutex<bool>>,
    }

    impl CaptureWriter {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn take(&self) -> Vec<Vec<Item>> {
            self.rows.lock().unwrap().clone()
        }
    }

    impl FrameWriter for CaptureWriter {
        fn open(&mut self) -> Result<()> {
            Ok(())
        }
        fn next_frame(&mut self, frame: &Frame) -> Result<()> {
            let mut rows = self.rows.lock().unwrap();
            for t in frame.tuples() {
                let row: Vec<Item> = t
                    .fields()
                    .map(|f| jdm::binary::ItemRef::new(f).unwrap().to_item().unwrap())
                    .collect();
                rows.push(row);
            }
            Ok(())
        }
        fn close(&mut self) -> Result<()> {
            *self.closed.lock().unwrap() = true;
            Ok(())
        }
    }

    /// Encode rows of items into frames and feed them through `op`.
    pub fn feed(op: &mut dyn FrameWriter, rows: &[Vec<Item>]) {
        let encoded: Vec<Vec<Vec<u8>>> = rows
            .iter()
            .map(|row| row.iter().map(to_bytes).collect())
            .collect();
        let frames = crate::frame::frames_from_rows(&encoded, 4096);
        op.open().unwrap();
        for f in &frames {
            op.next_frame(&f.clone()).unwrap();
        }
        op.close().unwrap();
    }
}
