//! Hash join (build + probe), used by the self-join query Q2.

use super::{BoxWriter, FrameWriter, OutBuffer};
use crate::error::Result;
use crate::frame::{Frame, TupleRef};
use crate::stats::MemTracker;
use std::collections::HashMap;
use std::sync::Arc;

/// In-memory equi hash join. The runtime feeds the whole build side first
/// (via [`HashJoinOp::build_frame`]), then streams the probe side. Output
/// tuples are `probe fields ++ build fields`.
///
/// The build table is reported to the memory tracker: it is *the* big
/// materialized state of Q2 and dominates the join's footprint.
pub struct HashJoinOp {
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
    table: HashMap<Box<[u8]>, Vec<Box<[u8]>>>,
    mem: Arc<MemTracker>,
    tracked: usize,
    out: OutBuffer,
}

impl HashJoinOp {
    pub fn new(
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
        mem: Arc<MemTracker>,
        frame_size: usize,
        out: BoxWriter,
    ) -> Self {
        HashJoinOp {
            build_keys,
            probe_keys,
            table: HashMap::new(),
            mem,
            tracked: 0,
            out: OutBuffer::new(frame_size, out),
        }
    }

    fn key_of(t: &TupleRef<'_>, fields: &[usize]) -> Box<[u8]> {
        let mut key = Vec::new();
        for &i in fields {
            key.extend_from_slice(t.field(i));
        }
        key.into_boxed_slice()
    }

    /// Add one build-side frame to the table.
    pub fn build_frame(&mut self, frame: &Frame) -> Result<()> {
        for t in frame.tuples() {
            let key = Self::key_of(&t, &self.build_keys);
            let bytes: Box<[u8]> = t.bytes().into();
            self.tracked += key.len() + bytes.len();
            self.mem.alloc(key.len() + bytes.len());
            self.table.entry(key).or_default().push(bytes);
        }
        Ok(())
    }

    /// Stream one probe-side frame, emitting matches.
    pub fn probe_frame(&mut self, frame: &Frame) -> Result<()> {
        for t in frame.tuples() {
            let key = Self::key_of(&t, &self.probe_keys);
            if let Some(matches) = self.table.get(key.as_ref()) {
                for m in matches {
                    let build = TupleRef::from_bytes(m);
                    let mut fields: Vec<&[u8]> =
                        Vec::with_capacity(t.field_count() + build.field_count());
                    fields.extend(t.fields());
                    fields.extend(build.fields());
                    self.out.push_fields(&fields)?;
                }
            }
        }
        Ok(())
    }
}

impl FrameWriter for HashJoinOp {
    fn name(&self) -> &'static str {
        "HASH-JOIN"
    }

    fn open(&mut self) -> Result<()> {
        self.out.open()
    }

    /// When used as a plain `FrameWriter`, frames are treated as probe
    /// input (the job runtime feeds build frames explicitly first).
    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        self.probe_frame(frame)
    }

    fn close(&mut self) -> Result<()> {
        self.table.clear();
        self.mem.free(self.tracked);
        self.tracked = 0;
        self.out.close()
    }
}

impl crate::job::TwoInputOp for HashJoinOp {
    fn name(&self) -> &'static str {
        "HASH-JOIN"
    }

    fn open(&mut self) -> Result<()> {
        FrameWriter::open(self)
    }
    fn build_frame(&mut self, frame: &Frame) -> Result<()> {
        HashJoinOp::build_frame(self, frame)
    }
    fn probe_frame(&mut self, frame: &Frame) -> Result<()> {
        HashJoinOp::probe_frame(self, frame)
    }
    fn close(&mut self) -> Result<()> {
        FrameWriter::close(self)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{feed, CaptureWriter};
    use super::*;
    use jdm::binary::to_bytes;
    use jdm::Item;

    fn to_frames(rows: &[Vec<Item>]) -> Vec<Frame> {
        let encoded: Vec<Vec<Vec<u8>>> = rows
            .iter()
            .map(|r| r.iter().map(to_bytes).collect())
            .collect();
        crate::frame::frames_from_rows(&encoded, 4096)
    }

    #[test]
    fn joins_on_key() {
        let cap = CaptureWriter::new();
        let mem = MemTracker::new();
        let mut join = HashJoinOp::new(vec![0], vec![0], mem.clone(), 1024, Box::new(cap.clone()));
        join.open().unwrap();
        for f in to_frames(&[
            vec![Item::str("a"), Item::int(1)],
            vec![Item::str("b"), Item::int(2)],
            vec![Item::str("a"), Item::int(3)],
        ]) {
            join.build_frame(&f).unwrap();
        }
        for f in to_frames(&[
            vec![Item::str("a"), Item::int(10)],
            vec![Item::str("c"), Item::int(30)],
        ]) {
            join.probe_frame(&f).unwrap();
        }
        join.close().unwrap();

        let mut got = cap.take();
        got.sort_by(|a, b| a[3].total_cmp(&b[3]));
        assert_eq!(
            got,
            vec![
                vec![Item::str("a"), Item::int(10), Item::str("a"), Item::int(1)],
                vec![Item::str("a"), Item::int(10), Item::str("a"), Item::int(3)],
            ]
        );
        assert_eq!(mem.current(), 0);
        assert!(mem.peak() > 0);
    }

    #[test]
    fn empty_build_side_yields_nothing() {
        let cap = CaptureWriter::new();
        let mut join = HashJoinOp::new(
            vec![0],
            vec![0],
            MemTracker::new(),
            1024,
            Box::new(cap.clone()),
        );
        feed(&mut join, &[vec![Item::str("a")]]); // probe only
        assert!(cap.take().is_empty());
    }

    #[test]
    fn composite_keys_must_match_all_fields() {
        let cap = CaptureWriter::new();
        let mut join = HashJoinOp::new(
            vec![0, 1],
            vec![0, 1],
            MemTracker::new(),
            1024,
            Box::new(cap.clone()),
        );
        join.open().unwrap();
        for f in to_frames(&[vec![Item::str("s"), Item::int(1), Item::str("build")]]) {
            join.build_frame(&f).unwrap();
        }
        for f in to_frames(&[
            vec![Item::str("s"), Item::int(1), Item::str("hit")],
            vec![Item::str("s"), Item::int(2), Item::str("miss")],
        ]) {
            join.probe_frame(&f).unwrap();
        }
        join.close().unwrap();
        let got = cap.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0][2], Item::str("hit"));
    }
}
