//! Hash join (build + probe), used by the self-join query Q2 — grace
//! (partitioned) variant when the build side overflows its memory grant.
//!
//! In memory the operator is the classic build/probe hash join. When a
//! build-side insertion is refused by the [`MemGrant`], the operator
//! switches to grace mode: the table drains into `P` build run files
//! partitioned by a level-seeded hash of the join key, the remaining
//! build tuples stream straight to those files, and the probe side is
//! partitioned the same way. At close each (build, probe) partition pair
//! is joined independently; a pair whose build half *still* exceeds the
//! grant re-partitions recursively with the next level's hash. At the
//! configured recursion limit the operator falls back to proceeding
//! over-budget (flagged as `budget_exceeded`) — the all-duplicates key
//! distribution cannot be split by any hash.

use super::{BoxWriter, FrameWriter, OutBuffer};
use crate::error::Result;
use crate::frame::{Frame, TupleRef};
use crate::spill::{part_hash, MemGrant, RunReader, RunToken, RunWriter, SpillHandle};
use std::collections::HashMap;

/// Equi hash join with grace-style spilling. The runtime feeds the whole
/// build side first (via [`HashJoinOp::build_frame`]), then streams the
/// probe side. Output tuples are `probe fields ++ build fields`.
pub struct HashJoinOp {
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
    table: HashMap<Box<[u8]>, Vec<Box<[u8]>>>,
    grant: MemGrant,
    spill: SpillHandle,
    /// Partition run writers, present once the build side has spilled.
    build_parts: Option<Vec<RunWriter>>,
    /// Sealed build partitions (writers finished at `build_done`).
    build_tokens: Vec<RunToken>,
    probe_parts: Option<Vec<RunWriter>>,
    out: OutBuffer,
}

impl HashJoinOp {
    pub fn new(
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
        spill: SpillHandle,
        frame_size: usize,
        out: BoxWriter,
    ) -> Self {
        HashJoinOp {
            build_keys,
            probe_keys,
            table: HashMap::new(),
            grant: spill.grant(),
            spill,
            build_parts: None,
            build_tokens: Vec::new(),
            probe_parts: None,
            out: OutBuffer::new(frame_size, out),
        }
    }

    fn key_of(t: &TupleRef<'_>, fields: &[usize]) -> Box<[u8]> {
        let mut key = Vec::new();
        for &i in fields {
            key.extend_from_slice(t.field(i));
        }
        key.into_boxed_slice()
    }

    fn open_parts(&self, n: usize) -> Result<Vec<RunWriter>> {
        (0..n).map(|_| self.spill.new_run()).collect()
    }

    /// Switch to grace mode: drain the in-memory table into partition run
    /// files and release its grant.
    fn begin_build_spill(&mut self) -> Result<()> {
        let n = self.spill.config().partitions();
        let mut parts = self.open_parts(n)?;
        self.spill.note_recursion(1);
        for (key, tuples) in std::mem::take(&mut self.table) {
            let p = (part_hash(&key, 1) % n as u64) as usize;
            for t in tuples {
                parts[p].push(&[&t])?;
            }
        }
        self.grant.release_all();
        self.build_parts = Some(parts);
        Ok(())
    }

    /// Add one build-side frame (to the table, or to partition files once
    /// spilled).
    pub fn build_frame(&mut self, frame: &Frame) -> Result<()> {
        for t in frame.tuples() {
            let key = Self::key_of(&t, &self.build_keys);
            let bytes: Box<[u8]> = t.bytes().into();
            if self.build_parts.is_none() {
                if self.grant.try_grow(key.len() + bytes.len()) {
                    self.table.entry(key).or_default().push(bytes);
                    continue;
                }
                self.begin_build_spill()?;
            }
            let parts = self.build_parts.as_mut().expect("spilled above");
            let p = (part_hash(&key, 1) % parts.len() as u64) as usize;
            parts[p].push(&[&bytes])?;
        }
        Ok(())
    }

    /// Seal the build side. In grace mode this finishes the build
    /// partition writers and opens the probe-side ones.
    pub fn build_done(&mut self) -> Result<()> {
        if let Some(parts) = self.build_parts.take() {
            for w in parts {
                let token = w.finish()?;
                self.spill.note_spilled(token.bytes, token.tuples);
                self.build_tokens.push(token);
            }
            self.probe_parts = Some(self.open_parts(self.build_tokens.len())?);
        }
        Ok(())
    }

    /// Stream one probe-side frame: probe the in-memory table, or route
    /// to probe partition files in grace mode.
    pub fn probe_frame(&mut self, frame: &Frame) -> Result<()> {
        if let Some(parts) = self.probe_parts.as_mut() {
            for t in frame.tuples() {
                let key = Self::key_of(&t, &self.probe_keys);
                let p = (part_hash(&key, 1) % parts.len() as u64) as usize;
                parts[p].push(&[t.bytes()])?;
            }
            return Ok(());
        }
        for t in frame.tuples() {
            let key = Self::key_of(&t, &self.probe_keys);
            emit_matches(&mut self.out, &t, self.table.get(key.as_ref()))?;
        }
        Ok(())
    }

    /// Join one (build, probe) partition pair, re-partitioning recursively
    /// when the build half still overflows the grant.
    fn join_partition(&mut self, build: RunToken, probe: RunToken, level: u64) -> Result<()> {
        if build.tuples == 0 {
            // No build rows → no matches; open the probe run only to let
            // the reader delete it.
            let _ = RunReader::open(probe)?;
            let _ = RunReader::open(build)?;
            return Ok(());
        }
        let mut table: HashMap<Box<[u8]>, Vec<Box<[u8]>>> = HashMap::new();
        let mut build_rd = RunReader::open(build)?;
        let mut buf = Vec::new();
        while build_rd.next_into(&mut buf)? {
            let t = TupleRef::from_bytes(&buf);
            let key = Self::key_of(&t, &self.build_keys);
            let bytes: Box<[u8]> = buf.as_slice().into();
            if !self.grant.try_grow(key.len() + bytes.len()) {
                if level >= self.spill.config().max_recursion as u64 {
                    // Un-splittable (e.g. one giant key): proceed
                    // over-budget, visibly.
                    self.spill.note_budget_exceeded();
                    self.grant.grow_anyway(key.len() + bytes.len());
                } else {
                    // Re-partition this pair one level deeper. The table,
                    // the current tuple and the rest of the reader all go
                    // back to disk under the next level's hash.
                    return self.repartition(table, bytes, build_rd, probe, level + 1);
                }
            }
            table.entry(key).or_default().push(bytes);
        }
        drop(build_rd);
        let mut probe_rd = RunReader::open(probe)?;
        while probe_rd.next_into(&mut buf)? {
            let t = TupleRef::from_bytes(&buf);
            let key = Self::key_of(&t, &self.probe_keys);
            emit_matches(&mut self.out, &t, table.get(key.as_ref()))?;
        }
        drop(table);
        self.grant.release_all();
        Ok(())
    }

    /// Split a partition pair into sub-partitions under `level`'s hash and
    /// join each sub-pair.
    fn repartition(
        &mut self,
        table: HashMap<Box<[u8]>, Vec<Box<[u8]>>>,
        pending: Box<[u8]>,
        mut build_rd: RunReader,
        probe: RunToken,
        level: u64,
    ) -> Result<()> {
        let n = self.spill.config().partitions();
        self.spill.note_recursion(level);
        let route = |key: &[u8]| (part_hash(key, level) % n as u64) as usize;

        let mut build_parts = self.open_parts(n)?;
        for (key, tuples) in table {
            let p = route(&key);
            for t in tuples {
                build_parts[p].push(&[&t])?;
            }
        }
        self.grant.release_all();
        {
            let t = TupleRef::from_bytes(&pending);
            let key = Self::key_of(&t, &self.build_keys);
            build_parts[route(&key)].push(&[&pending])?;
        }
        let mut buf = Vec::new();
        while build_rd.next_into(&mut buf)? {
            let t = TupleRef::from_bytes(&buf);
            let key = Self::key_of(&t, &self.build_keys);
            build_parts[route(&key)].push(&[&buf])?;
        }
        drop(build_rd);
        let build_tokens: Vec<RunToken> = build_parts
            .into_iter()
            .map(|w| {
                let token = w.finish()?;
                self.spill.note_spilled(token.bytes, token.tuples);
                Ok(token)
            })
            .collect::<Result<_>>()?;

        let mut probe_parts = self.open_parts(n)?;
        let mut probe_rd = RunReader::open(probe)?;
        while probe_rd.next_into(&mut buf)? {
            let t = TupleRef::from_bytes(&buf);
            let key = Self::key_of(&t, &self.probe_keys);
            probe_parts[route(&key)].push(&[&buf])?;
        }
        drop(probe_rd);
        let probe_tokens: Vec<RunToken> = probe_parts
            .into_iter()
            .map(|w| w.finish())
            .collect::<Result<_>>()?;

        for (b, p) in build_tokens.into_iter().zip(probe_tokens) {
            self.join_partition(b, p, level)?;
        }
        Ok(())
    }

    fn finish_streams(&mut self) -> Result<()> {
        // Flush any probe partitions and join the partition pairs. (The
        // in-memory path has nothing to do here.)
        if let Some(parts) = self.probe_parts.take() {
            let probe_tokens: Vec<RunToken> = parts
                .into_iter()
                .map(|w| w.finish())
                .collect::<Result<_>>()?;
            let build_tokens = std::mem::take(&mut self.build_tokens);
            for (b, p) in build_tokens.into_iter().zip(probe_tokens) {
                self.join_partition(b, p, 2)?;
            }
        }
        Ok(())
    }
}

/// Emit `probe fields ++ build fields` for every build match.
fn emit_matches(
    out: &mut OutBuffer,
    probe: &TupleRef<'_>,
    matches: Option<&Vec<Box<[u8]>>>,
) -> Result<()> {
    let Some(matches) = matches else {
        return Ok(());
    };
    for m in matches {
        let build = TupleRef::from_bytes(m);
        let mut fields: Vec<&[u8]> = Vec::with_capacity(probe.field_count() + build.field_count());
        fields.extend(probe.fields());
        fields.extend(build.fields());
        out.push_fields(&fields)?;
    }
    Ok(())
}

impl FrameWriter for HashJoinOp {
    fn name(&self) -> &'static str {
        "HASH-JOIN"
    }

    fn open(&mut self) -> Result<()> {
        self.out.open()
    }

    /// When used as a plain `FrameWriter`, frames are treated as probe
    /// input (the job runtime feeds build frames explicitly first).
    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        self.probe_frame(frame)
    }

    fn close(&mut self) -> Result<()> {
        self.finish_streams()?;
        self.table.clear();
        self.spill.finish(&self.grant);
        self.grant.release_all();
        self.out.close()
    }
}

impl crate::job::TwoInputOp for HashJoinOp {
    fn name(&self) -> &'static str {
        "HASH-JOIN"
    }

    fn open(&mut self) -> Result<()> {
        FrameWriter::open(self)
    }
    fn build_frame(&mut self, frame: &Frame) -> Result<()> {
        HashJoinOp::build_frame(self, frame)
    }
    fn build_done(&mut self) -> Result<()> {
        HashJoinOp::build_done(self)
    }
    fn probe_frame(&mut self, frame: &Frame) -> Result<()> {
        HashJoinOp::probe_frame(self, frame)
    }
    fn close(&mut self) -> Result<()> {
        FrameWriter::close(self)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{feed, CaptureWriter};
    use super::*;
    use crate::spill::{SpillConfig, SpillCtx};
    use crate::stats::MemTracker;
    use jdm::binary::to_bytes;
    use jdm::Item;
    use std::sync::Arc;

    fn to_frames(rows: &[Vec<Item>]) -> Vec<Frame> {
        let encoded: Vec<Vec<Vec<u8>>> = rows
            .iter()
            .map(|r| r.iter().map(to_bytes).collect())
            .collect();
        crate::frame::frames_from_rows(&encoded, 4096)
    }

    fn unlimited_handle() -> crate::spill::SpillHandle {
        SpillCtx::unlimited().handle("HASH-JOIN", 0, 0)
    }

    fn scratch_root(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("vxq-join-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn budgeted_ctx(root: &std::path::Path, budget: usize, parts: usize) -> Arc<SpillCtx> {
        SpillCtx::new(
            MemTracker::with_budget(budget),
            SpillConfig {
                dir: Some(root.to_path_buf()),
                spill_partitions: parts,
                ..SpillConfig::default()
            },
        )
    }

    fn run_join(
        handle: crate::spill::SpillHandle,
        build: &[Vec<Item>],
        probe: &[Vec<Item>],
    ) -> Vec<Vec<Item>> {
        let cap = CaptureWriter::new();
        let mut join = HashJoinOp::new(vec![0], vec![0], handle, 1024, Box::new(cap.clone()));
        FrameWriter::open(&mut join).unwrap();
        for f in to_frames(build) {
            join.build_frame(&f).unwrap();
        }
        join.build_done().unwrap();
        for f in to_frames(probe) {
            join.probe_frame(&f).unwrap();
        }
        FrameWriter::close(&mut join).unwrap();
        cap.take()
    }

    #[test]
    fn joins_on_key() {
        let ctx = SpillCtx::unlimited();
        let mem = ctx.memory().clone();
        let mut got = run_join(
            ctx.handle("HASH-JOIN", 0, 0),
            &[
                vec![Item::str("a"), Item::int(1)],
                vec![Item::str("b"), Item::int(2)],
                vec![Item::str("a"), Item::int(3)],
            ],
            &[
                vec![Item::str("a"), Item::int(10)],
                vec![Item::str("c"), Item::int(30)],
            ],
        );
        got.sort_by(|a, b| a[3].total_cmp(&b[3]));
        assert_eq!(
            got,
            vec![
                vec![Item::str("a"), Item::int(10), Item::str("a"), Item::int(1)],
                vec![Item::str("a"), Item::int(10), Item::str("a"), Item::int(3)],
            ]
        );
        assert_eq!(mem.current(), 0);
        assert!(mem.peak() > 0);
    }

    #[test]
    fn empty_build_side_yields_nothing() {
        let cap = CaptureWriter::new();
        let mut join = HashJoinOp::new(
            vec![0],
            vec![0],
            unlimited_handle(),
            1024,
            Box::new(cap.clone()),
        );
        feed(&mut join, &[vec![Item::str("a")]]); // probe only
        assert!(cap.take().is_empty());
    }

    #[test]
    fn composite_keys_must_match_all_fields() {
        let cap = CaptureWriter::new();
        let mut join = HashJoinOp::new(
            vec![0, 1],
            vec![0, 1],
            unlimited_handle(),
            1024,
            Box::new(cap.clone()),
        );
        FrameWriter::open(&mut join).unwrap();
        for f in to_frames(&[vec![Item::str("s"), Item::int(1), Item::str("build")]]) {
            join.build_frame(&f).unwrap();
        }
        join.build_done().unwrap();
        for f in to_frames(&[
            vec![Item::str("s"), Item::int(1), Item::str("hit")],
            vec![Item::str("s"), Item::int(2), Item::str("miss")],
        ]) {
            join.probe_frame(&f).unwrap();
        }
        FrameWriter::close(&mut join).unwrap();
        let got = cap.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0][2], Item::str("hit"));
    }

    fn join_dataset() -> (Vec<Vec<Item>>, Vec<Vec<Item>>) {
        // 40 keys × 5 build rows; probe hits every key twice.
        let build: Vec<Vec<Item>> = (0..200)
            .map(|i| vec![Item::int(i % 40), Item::int(i)])
            .collect();
        let probe: Vec<Vec<Item>> = (0..80)
            .map(|i| vec![Item::int(i % 40), Item::int(1000 + i)])
            .collect();
        (build, probe)
    }

    fn sorted(mut rows: Vec<Vec<Item>>) -> Vec<Vec<Item>> {
        rows.sort_by(|a, b| {
            a.iter()
                .zip(b)
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| !o.is_eq())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rows
    }

    #[test]
    fn grace_join_matches_in_memory_join() {
        let (build, probe) = join_dataset();
        let expect = sorted(run_join(unlimited_handle(), &build, &probe));

        let root = scratch_root("grace");
        let ctx = budgeted_ctx(&root, 2 * 1024, 4);
        let got = sorted(run_join(ctx.handle("HASH-JOIN", 0, 0), &build, &probe));
        assert_eq!(got, expect);
        let s = ctx.summary();
        assert!(s.spilled(), "budget must have forced grace mode: {s:?}");
        assert!(s.max_recursion >= 1);
        assert_eq!(ctx.memory().current(), 0);
        drop(ctx);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn tiny_budget_forces_recursive_partitioning() {
        let (build, probe) = join_dataset();
        let expect = sorted(run_join(unlimited_handle(), &build, &probe));

        let root = scratch_root("recursive");
        // 2 partitions with a budget far below a partition's size: the
        // first-level partitions overflow again and must recurse.
        let ctx = budgeted_ctx(&root, 256, 2);
        let got = sorted(run_join(ctx.handle("HASH-JOIN", 0, 0), &build, &probe));
        assert_eq!(got, expect);
        let s = ctx.summary();
        assert!(
            s.max_recursion >= 2,
            "expected recursive re-partitioning: {s:?}"
        );
        drop(ctx);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn one_key_hits_recursion_cap_but_stays_correct() {
        // Every tuple shares one key: no hash can split it, so the join
        // must fall back to over-budget processing and flag it.
        let build: Vec<Vec<Item>> = (0..100)
            .map(|i| vec![Item::str("k"), Item::int(i)])
            .collect();
        let probe = vec![vec![Item::str("k"), Item::int(-1)]];
        let root = scratch_root("onekey");
        let ctx = budgeted_ctx(&root, 256, 2);
        let got = run_join(ctx.handle("HASH-JOIN", 0, 0), &build, &probe);
        assert_eq!(got.len(), 100, "all matches despite the cap");
        let s = ctx.summary();
        assert!(s.budget_exceeded, "cap fallback must be visible: {s:?}");
        drop(ctx);
        let _ = std::fs::remove_dir_all(root);
    }
}
