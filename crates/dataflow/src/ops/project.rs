//! PROJECT — keep a subset of fields (plan-narrowing between operators).

use super::{BoxWriter, FrameWriter, OutBuffer};
use crate::error::Result;
use crate::frame::Frame;

/// Keeps only the listed fields, in the given order. The optimizer inserts
/// these after operators whose inputs are no longer live, keeping frames
/// small (the same spirit as the paper's "smaller tuples" observations).
pub struct ProjectOp {
    keep: Vec<usize>,
    out: OutBuffer,
}

impl ProjectOp {
    pub fn new(keep: Vec<usize>, frame_size: usize, out: BoxWriter) -> Self {
        ProjectOp {
            keep,
            out: OutBuffer::new(frame_size, out),
        }
    }
}

impl FrameWriter for ProjectOp {
    fn name(&self) -> &'static str {
        "PROJECT"
    }

    fn open(&mut self) -> Result<()> {
        self.out.open()
    }

    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        for t in frame.tuples() {
            let fields: Vec<&[u8]> = self.keep.iter().map(|&i| t.field(i)).collect();
            self.out.push_fields(&fields)?;
        }
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        self.out.close()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{feed, CaptureWriter};
    use super::*;
    use jdm::Item;

    #[test]
    fn project_reorders_and_drops() {
        let cap = CaptureWriter::new();
        let mut op = ProjectOp::new(vec![2, 0], 1024, Box::new(cap.clone()));
        feed(&mut op, &[vec![Item::int(1), Item::int(2), Item::int(3)]]);
        assert_eq!(cap.take(), vec![vec![Item::int(3), Item::int(1)]]);
    }
}
