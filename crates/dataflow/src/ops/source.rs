//! Source driving: turns a [`ScanSource`] into frames pushed down a chain.
//!
//! This is the EMPTY-TUPLE-SOURCE + DATASCAN pair of the paper's plans:
//! the source extends the (conceptual) empty tuple with one field per
//! produced item and pushes the result into the fused operator chain.

use super::eval::ScanSource;
use super::{BoxWriter, OutBuffer};
use crate::error::Result;

/// Run `source` to completion, buffering emitted tuples into frames of
/// `frame_size` bytes and pushing them into `out` (open/close included).
pub fn run_source(source: &mut dyn ScanSource, frame_size: usize, out: BoxWriter) -> Result<()> {
    let mut buf = OutBuffer::new(frame_size, out);
    buf.open()?;
    source.run(&mut |fields| buf.push_fields(fields))?;
    buf.close()
}

#[cfg(test)]
mod tests {
    use super::super::eval::TupleEmitter;
    use super::super::testutil::CaptureWriter;
    use super::*;
    use jdm::binary::to_bytes;
    use jdm::Item;

    struct CountingSource(usize);
    impl ScanSource for CountingSource {
        fn run(&mut self, emit: &mut TupleEmitter<'_>) -> Result<()> {
            for i in 0..self.0 {
                let bytes = to_bytes(&Item::int(i as i64));
                emit(&[&bytes])?;
            }
            Ok(())
        }
    }

    #[test]
    fn source_drives_chain() {
        let cap = CaptureWriter::new();
        run_source(&mut CountingSource(100), 256, Box::new(cap.clone())).unwrap();
        let got = cap.take();
        assert_eq!(got.len(), 100);
        assert_eq!(got[99], vec![Item::int(99)]);
        assert!(*cap.closed.lock().unwrap());
    }
}
