//! ASSIGN — evaluate a scalar expression, append the result as a new field.

use super::eval::ScalarEvaluator;
use super::{BoxWriter, FrameWriter, OutBuffer};
use crate::error::Result;
use crate::frame::Frame;

/// The ASSIGN operator of the paper's plans: executes a scalar expression
/// on each tuple and adds the result as a new field (paper §3.2).
///
/// SUBPLAN is compiled to an `AssignOp` whose evaluator runs the nested
/// plan (UNNEST + AGGREGATE) per tuple — the nested plan consumes exactly
/// one field and yields exactly one item, so it *is* a scalar evaluator.
pub struct AssignOp {
    eval: Box<dyn ScalarEvaluator>,
    out: OutBuffer,
    scratch: Vec<u8>,
}

impl AssignOp {
    pub fn new(eval: Box<dyn ScalarEvaluator>, frame_size: usize, out: BoxWriter) -> Self {
        AssignOp {
            eval,
            out: OutBuffer::new(frame_size, out),
            scratch: Vec::new(),
        }
    }
}

impl FrameWriter for AssignOp {
    fn name(&self) -> &'static str {
        "ASSIGN"
    }

    fn open(&mut self) -> Result<()> {
        self.out.open()
    }

    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        for t in frame.tuples() {
            self.scratch.clear();
            self.eval.eval(&t, &mut self.scratch)?;
            let extra = std::mem::take(&mut self.scratch);
            self.out.push_extended(&t, &[&extra])?;
            self.scratch = extra;
        }
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        self.out.close()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{feed, CaptureWriter};
    use super::*;
    use crate::frame::TupleRef;
    use jdm::binary::{write_item, ItemRef};
    use jdm::Item;

    /// Evaluator: result = first field's "k" member.
    struct GetK;
    impl ScalarEvaluator for GetK {
        fn eval(&mut self, tuple: &TupleRef<'_>, out: &mut Vec<u8>) -> Result<()> {
            let r = ItemRef::new(tuple.field(0)).unwrap();
            match r.get_key("k") {
                Some(v) => out.extend_from_slice(v.bytes()),
                None => write_item(&Item::Null, out),
            }
            Ok(())
        }
    }

    #[test]
    fn assign_appends_field() {
        let cap = CaptureWriter::new();
        let mut op = AssignOp::new(Box::new(GetK), 1024, Box::new(cap.clone()));
        let rows = vec![
            vec![Item::Object(vec![("k".into(), Item::int(7))])],
            vec![Item::Object(vec![("x".into(), Item::int(1))])],
        ];
        feed(&mut op, &rows);
        let got = cap.take();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], vec![rows[0][0].clone(), Item::int(7)]);
        assert_eq!(got[1], vec![rows[1][0].clone(), Item::Null]);
        assert!(*cap.closed.lock().unwrap());
    }
}
