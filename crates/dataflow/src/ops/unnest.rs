//! UNNEST — one output tuple per item produced by an unnesting expression.

use super::eval::UnnestEvaluator;
use super::{BoxWriter, FrameWriter, OutBuffer};
use crate::error::Result;
use crate::frame::Frame;

/// The UNNEST operator (paper §3.2): "executes an unnesting expression for
/// each tuple to create a stream of output tuples per input".
///
/// After the path-expression rules, the unnesting expression is
/// `keys-or-members` itself (Fig. 4) rather than `iterate` over a
/// pre-built sequence (Fig. 3) — both arrive here as [`UnnestEvaluator`]s;
/// the difference is purely in what the evaluator does.
pub struct UnnestOp {
    eval: Box<dyn UnnestEvaluator>,
    out: OutBuffer,
}

impl UnnestOp {
    pub fn new(eval: Box<dyn UnnestEvaluator>, frame_size: usize, out: BoxWriter) -> Self {
        UnnestOp {
            eval,
            out: OutBuffer::new(frame_size, out),
        }
    }
}

impl FrameWriter for UnnestOp {
    fn name(&self) -> &'static str {
        "UNNEST"
    }

    fn open(&mut self) -> Result<()> {
        self.out.open()
    }

    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        for t in frame.tuples() {
            let out = &mut self.out;
            self.eval
                .eval(&t, &mut |item_bytes| out.push_extended(&t, &[item_bytes]))?;
        }
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        self.out.close()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{feed, CaptureWriter};
    use super::*;
    use crate::frame::TupleRef;
    use jdm::binary::ItemRef;
    use jdm::Item;

    /// Unnest the members of the array in field 0.
    struct Members;
    impl UnnestEvaluator for Members {
        fn eval(
            &mut self,
            tuple: &TupleRef<'_>,
            emit: &mut dyn FnMut(&[u8]) -> Result<()>,
        ) -> Result<()> {
            let r = ItemRef::new(tuple.field(0)).unwrap();
            for m in r.members() {
                emit(m.bytes())?;
            }
            Ok(())
        }
    }

    #[test]
    fn unnest_fans_out() {
        let cap = CaptureWriter::new();
        let mut op = UnnestOp::new(Box::new(Members), 1024, Box::new(cap.clone()));
        let arr = Item::Array(vec![Item::int(1), Item::int(2), Item::int(3)]);
        feed(&mut op, &[vec![arr.clone()]]);
        let got = cap.take();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], vec![arr.clone(), Item::int(1)]);
        assert_eq!(got[2], vec![arr, Item::int(3)]);
    }

    #[test]
    fn unnest_empty_input_produces_nothing() {
        let cap = CaptureWriter::new();
        let mut op = UnnestOp::new(Box::new(Members), 1024, Box::new(cap.clone()));
        feed(&mut op, &[vec![Item::Array(vec![])]]);
        assert!(cap.take().is_empty());
    }
}
