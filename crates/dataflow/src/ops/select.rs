//! SELECT — filter tuples by a boolean expression.

use super::eval::ScalarEvaluator;
use super::{BoxWriter, FrameWriter, OutBuffer};
use crate::error::Result;
use crate::frame::Frame;
use jdm::binary::tag;

/// Filters tuples: the predicate evaluator must produce a boolean item;
/// `true` keeps the tuple. Any non-`true` result (including null / empty
/// sequence encodings) drops it, matching XQuery's effective boolean value
/// of a failed comparison on missing data.
pub struct SelectOp {
    predicate: Box<dyn ScalarEvaluator>,
    out: OutBuffer,
    scratch: Vec<u8>,
}

impl SelectOp {
    pub fn new(predicate: Box<dyn ScalarEvaluator>, frame_size: usize, out: BoxWriter) -> Self {
        SelectOp {
            predicate,
            out: OutBuffer::new(frame_size, out),
            scratch: Vec::new(),
        }
    }
}

impl FrameWriter for SelectOp {
    fn name(&self) -> &'static str {
        "SELECT"
    }

    fn open(&mut self) -> Result<()> {
        self.out.open()
    }

    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        for t in frame.tuples() {
            self.scratch.clear();
            self.predicate.eval(&t, &mut self.scratch)?;
            if self.scratch.first() == Some(&tag::TRUE) {
                self.out.push_tuple(&t)?;
            }
        }
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        self.out.close()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{feed, CaptureWriter};
    use super::*;
    use crate::frame::TupleRef;
    use jdm::binary::{write_item, ItemRef};
    use jdm::{Item, Number};

    /// Keep tuples whose first field is a number > 5.
    struct GtFive;
    impl ScalarEvaluator for GtFive {
        fn eval(&mut self, tuple: &TupleRef<'_>, out: &mut Vec<u8>) -> Result<()> {
            let keep = ItemRef::new(tuple.field(0))
                .ok()
                .and_then(|r| r.as_number())
                .map(|n| n.num_cmp(Number::Int(5)) == std::cmp::Ordering::Greater)
                .unwrap_or(false);
            write_item(&Item::Boolean(keep), out);
            Ok(())
        }
    }

    #[test]
    fn select_filters() {
        let cap = CaptureWriter::new();
        let mut op = SelectOp::new(Box::new(GtFive), 1024, Box::new(cap.clone()));
        let rows: Vec<Vec<Item>> = (0..10).map(|i| vec![Item::int(i)]).collect();
        feed(&mut op, &rows);
        let got = cap.take();
        assert_eq!(got.len(), 4); // 6,7,8,9
        assert_eq!(got[0], vec![Item::int(6)]);
    }

    #[test]
    fn select_drops_non_boolean_results() {
        let cap = CaptureWriter::new();
        let mut op = SelectOp::new(Box::new(GtFive), 1024, Box::new(cap.clone()));
        feed(&mut op, &[vec![Item::str("not a number")]]);
        assert!(cap.take().is_empty());
    }
}
