//! GROUP-BY — grouped aggregation, in both the paper's *before* and
//! *after* forms.
//!
//! * [`MaterializingGroupByOp`] is the pre-rewrite plan (Fig. 9): the inner
//!   focus is `AGGREGATE sequence`, so every group buffers a **sequence of
//!   its members** and downstream operators compute `count(...)` over the
//!   materialized sequence. It cannot spill (the sequences must exist in
//!   full), so it grows its grant unconditionally — budget violations are
//!   flagged on the job instead of enforced. This is what the group-by
//!   rewrite rules eliminate.
//! * [`HashGroupByOp`] is the post-rewrite plan (Fig. 12): the aggregate is
//!   pushed into the group-by, so each group holds only incremental
//!   aggregator state ("the count function is computed at the same time
//!   that each group is formed, without creating any sequences"). Under
//!   budget pressure it spills with a *frozen-table* scheme: when a new
//!   group no longer fits, the in-memory table is frozen — tuples of
//!   already-seen keys keep aggregating in place, tuples of unseen keys
//!   are hash-partitioned to run files — and each partition is aggregated
//!   recursively (with level-seeded hashes) after the in-memory groups are
//!   emitted. This stays correct for any [`Aggregator`], since every
//!   group's tuples end up stepped into exactly one aggregator instance.

use super::eval::{Aggregator, AggregatorFactory};
use super::{BoxWriter, FrameWriter, OutBuffer};
use crate::error::{DataflowError, Result};
use crate::frame::{Frame, TupleRef};
use crate::spill::{part_hash, MemGrant, RunReader, RunToken, RunWriter, SpillHandle};
use jdm::binary::{item_len, write_sequence_from_parts};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-group bookkeeping overhead charged to the memory grant on top of
/// the key bytes (hash-table slot, aggregator state estimate).
const GROUP_OVERHEAD: usize = 64;

/// Concatenated serialized key items, splittable via `item_len`.
type GroupKey = Box<[u8]>;

fn extract_key(t: &TupleRef<'_>, key_fields: &[usize]) -> GroupKey {
    let mut key = Vec::new();
    for &i in key_fields {
        key.extend_from_slice(t.field(i));
    }
    key.into_boxed_slice()
}

/// Split a concatenated key back into per-field slices. Keys built by
/// [`extract_key`] are always well-formed, but keys read back from spill
/// files cross a disk round-trip, so corruption surfaces as an error
/// rather than a panic.
fn split_key(key: &[u8], n: usize) -> Result<Vec<&[u8]>> {
    let mut out = Vec::with_capacity(n);
    let mut rest = key;
    for _ in 0..n {
        let len = item_len(rest)
            .map_err(|e| DataflowError::BadFrame(format!("corrupt group key bytes: {e}")))?;
        if len > rest.len() {
            return Err(DataflowError::BadFrame(
                "group key item overruns key bytes".into(),
            ));
        }
        out.push(&rest[..len]);
        rest = &rest[len..];
    }
    Ok(out)
}

/// Hash-based grouped aggregation with incremental per-group state and
/// frozen-table spilling. Output tuples: `(key fields ..., aggregate
/// result)`.
pub struct HashGroupByOp {
    key_fields: Vec<usize>,
    factory: Arc<dyn AggregatorFactory>,
    groups: HashMap<GroupKey, Box<dyn Aggregator>>,
    grant: MemGrant,
    spill: SpillHandle,
    /// Level-1 partition writers, present once the table is frozen.
    parts: Option<Vec<RunWriter>>,
    out: OutBuffer,
}

impl HashGroupByOp {
    pub fn new(
        key_fields: Vec<usize>,
        factory: Arc<dyn AggregatorFactory>,
        spill: SpillHandle,
        frame_size: usize,
        out: BoxWriter,
    ) -> Self {
        HashGroupByOp {
            key_fields,
            factory,
            groups: HashMap::new(),
            grant: spill.grant(),
            spill,
            parts: None,
            out: OutBuffer::new(frame_size, out),
        }
    }

    fn open_parts(spill: &SpillHandle) -> Result<Vec<RunWriter>> {
        (0..spill.config().partitions())
            .map(|_| spill.new_run())
            .collect()
    }

    /// Finish partition writers into tokens, recording their volume.
    fn seal_parts(spill: &SpillHandle, parts: Vec<RunWriter>) -> Result<Vec<RunToken>> {
        let mut tokens = Vec::with_capacity(parts.len());
        for w in parts {
            let token = w.finish()?;
            spill.note_spilled(token.bytes, token.tuples);
            tokens.push(token);
        }
        Ok(tokens)
    }

    /// Emit `(key fields ..., result)` for every group and drop the state.
    fn emit_groups(
        groups: HashMap<GroupKey, Box<dyn Aggregator>>,
        nkeys: usize,
        out: &mut OutBuffer,
    ) -> Result<()> {
        // Deterministic output order is left to consumers (group order is
        // hash-table order, as in a real hash group-by).
        let mut result = Vec::new();
        for (key, mut agg) in groups {
            result.clear();
            agg.finish(&mut result)?;
            let mut fields = split_key(&key, nkeys)?;
            fields.push(&result);
            out.push_fields(&fields)?;
        }
        Ok(())
    }

    /// Aggregate one spilled partition, re-partitioning at `level` if it
    /// still does not fit. Past the recursion cap (pathological key
    /// distributions) the violation is tolerated and flagged instead.
    fn aggregate_run(&mut self, token: RunToken, level: usize) -> Result<()> {
        let mut groups: HashMap<GroupKey, Box<dyn Aggregator>> = HashMap::new();
        let mut sub: Option<Vec<RunWriter>> = None;
        let mut rd = RunReader::open(token)?;
        let mut buf = Vec::new();
        while rd.next_into(&mut buf)? {
            let t = TupleRef::from_bytes(&buf);
            let key = extract_key(&t, &self.key_fields);
            if let Some(agg) = groups.get_mut(&key) {
                agg.step(&t)?;
                continue;
            }
            if sub.is_none() {
                let cost = key.len() + GROUP_OVERHEAD;
                if self.grant.try_grow(cost) {
                    let mut agg = self.factory.create();
                    agg.step(&t)?;
                    groups.insert(key, agg);
                    continue;
                }
                if level > self.spill.config().max_recursion {
                    // Cannot split further; `grow_anyway` flags the job.
                    self.grant.grow_anyway(cost);
                    let mut agg = self.factory.create();
                    agg.step(&t)?;
                    groups.insert(key, agg);
                    continue;
                }
                self.spill.note_recursion(level as u64);
                sub = Some(Self::open_parts(&self.spill)?);
            }
            let parts = sub.as_mut().expect("just created");
            let dst = (part_hash(&key, level as u64) % parts.len() as u64) as usize;
            parts[dst].push(&[t.bytes()])?;
        }
        drop(rd); // consumed: delete before recursing
        Self::emit_groups(groups, self.key_fields.len(), &mut self.out)?;
        self.grant.release_all();
        if let Some(parts) = sub {
            for token in Self::seal_parts(&self.spill, parts)? {
                self.aggregate_run(token, level + 1)?;
            }
        }
        Ok(())
    }
}

impl FrameWriter for HashGroupByOp {
    fn name(&self) -> &'static str {
        "HASH-GROUP-BY"
    }

    fn open(&mut self) -> Result<()> {
        self.out.open()
    }

    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        for t in frame.tuples() {
            let key = extract_key(&t, &self.key_fields);
            // Frozen or not, tuples of already-seen keys aggregate in
            // place — only *new* groups cost memory.
            if let Some(agg) = self.groups.get_mut(&key) {
                agg.step(&t)?;
                continue;
            }
            if self.parts.is_none() {
                let cost = key.len() + GROUP_OVERHEAD;
                if self.grant.try_grow(cost) {
                    let mut agg = self.factory.create();
                    agg.step(&t)?;
                    self.groups.insert(key, agg);
                    continue;
                }
                // Freeze the table; unseen keys go to disk from here on.
                self.spill.note_recursion(1);
                self.parts = Some(Self::open_parts(&self.spill)?);
            }
            let parts = self.parts.as_mut().expect("frozen table has parts");
            let dst = (part_hash(&key, 1) % parts.len() as u64) as usize;
            parts[dst].push(&[t.bytes()])?;
        }
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        let groups = std::mem::take(&mut self.groups);
        Self::emit_groups(groups, self.key_fields.len(), &mut self.out)?;
        self.grant.release_all();
        if let Some(parts) = self.parts.take() {
            for token in Self::seal_parts(&self.spill, parts)? {
                self.aggregate_run(token, 2)?;
            }
        }
        self.spill.finish(&self.grant);
        self.grant.release_all();
        self.out.close()
    }
}

/// Pre-rewrite grouped aggregation: buffers each group's members of field
/// `seq_field` as a sequence. Output tuples: `(key fields ..., sequence)`.
pub struct MaterializingGroupByOp {
    key_fields: Vec<usize>,
    seq_field: usize,
    groups: HashMap<GroupKey, Vec<Vec<u8>>>,
    grant: MemGrant,
    spill: SpillHandle,
    out: OutBuffer,
}

impl MaterializingGroupByOp {
    pub fn new(
        key_fields: Vec<usize>,
        seq_field: usize,
        spill: SpillHandle,
        frame_size: usize,
        out: BoxWriter,
    ) -> Self {
        MaterializingGroupByOp {
            key_fields,
            seq_field,
            groups: HashMap::new(),
            grant: spill.grant(),
            spill,
            out: OutBuffer::new(frame_size, out),
        }
    }
}

impl FrameWriter for MaterializingGroupByOp {
    fn name(&self) -> &'static str {
        "MAT-GROUP-BY"
    }

    fn open(&mut self) -> Result<()> {
        self.out.open()
    }

    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        for t in frame.tuples() {
            let key = extract_key(&t, &self.key_fields);
            let member = t.field(self.seq_field).to_vec();
            // Sequences must materialize in full, so violations are
            // tolerated — but now observable as `budget_exceeded`.
            self.grant.grow_anyway(member.len());
            self.groups.entry(key).or_default().push(member);
        }
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        let groups = std::mem::take(&mut self.groups);
        let nkeys = self.key_fields.len();
        let mut seq = Vec::new();
        for (key, members) in groups {
            seq.clear();
            let parts: Vec<&[u8]> = members.iter().map(|m| m.as_slice()).collect();
            write_sequence_from_parts(&parts, &mut seq);
            let mut fields = split_key(&key, nkeys)?;
            fields.push(&seq);
            self.out.push_fields(&fields)?;
        }
        self.spill.finish(&self.grant);
        self.grant.release_all();
        self.out.close()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{feed, CaptureWriter};
    use super::*;
    use crate::spill::{SpillConfig, SpillCtx};
    use crate::stats::MemTracker;
    use jdm::binary::write_item;
    use jdm::Item;

    struct CountAgg(i64);
    impl Aggregator for CountAgg {
        fn step(&mut self, _t: &TupleRef<'_>) -> Result<()> {
            self.0 += 1;
            Ok(())
        }
        fn finish(&mut self, out: &mut Vec<u8>) -> Result<()> {
            write_item(&Item::int(self.0), out);
            Ok(())
        }
    }

    struct CountFactory;
    impl AggregatorFactory for CountFactory {
        fn create(&self) -> Box<dyn Aggregator> {
            Box::new(CountAgg(0))
        }
    }

    fn rows() -> Vec<Vec<Item>> {
        // (key, payload) pairs: a×3, b×2, c×1
        [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("a", 5), ("b", 6)]
            .iter()
            .map(|(k, v)| vec![Item::str(*k), Item::int(*v)])
            .collect()
    }

    fn sorted(mut rows: Vec<Vec<Item>>) -> Vec<Vec<Item>> {
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        rows
    }

    fn scratch_root(name: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("vxq-groupby-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn budgeted_ctx(
        root: &std::path::Path,
        budget: usize,
        max_recursion: usize,
    ) -> std::sync::Arc<SpillCtx> {
        SpillCtx::new(
            MemTracker::with_budget(budget),
            SpillConfig {
                dir: Some(root.to_path_buf()),
                spill_partitions: 4,
                max_recursion,
                ..SpillConfig::default()
            },
        )
    }

    #[test]
    fn hash_group_by_counts_per_group() {
        let cap = CaptureWriter::new();
        let ctx = SpillCtx::unlimited();
        let mem = ctx.memory().clone();
        let mut op = HashGroupByOp::new(
            vec![0],
            Arc::new(CountFactory),
            ctx.handle("HASH-GROUP-BY", 0, 0),
            1024,
            Box::new(cap.clone()),
        );
        feed(&mut op, &rows());
        let got = sorted(cap.take());
        assert_eq!(
            got,
            vec![
                vec![Item::str("a"), Item::int(3)],
                vec![Item::str("b"), Item::int(2)],
                vec![Item::str("c"), Item::int(1)],
            ]
        );
        assert_eq!(mem.current(), 0, "state freed at close");
    }

    #[test]
    fn materializing_group_by_builds_sequences() {
        let cap = CaptureWriter::new();
        let ctx = SpillCtx::unlimited();
        let mem = ctx.memory().clone();
        let mut op = MaterializingGroupByOp::new(
            vec![0],
            1,
            ctx.handle("MAT-GROUP-BY", 0, 0),
            1024,
            Box::new(cap.clone()),
        );
        feed(&mut op, &rows());
        let got = sorted(cap.take());
        assert_eq!(got.len(), 3);
        assert_eq!(got[0][0], Item::str("a"));
        assert_eq!(
            got[0][1],
            Item::seq([Item::int(1), Item::int(3), Item::int(5)])
        );
        assert_eq!(got[2][1], Item::seq([Item::int(4)]));
        // Materialization was visible to the memory tracker.
        assert!(mem.peak() > 0);
        assert_eq!(mem.current(), 0);
    }

    #[test]
    fn materializing_uses_more_memory_than_hash() {
        let big_rows: Vec<Vec<Item>> = (0..200)
            .map(|i| {
                vec![
                    Item::str("samekey"),
                    Item::str("x".repeat(50) + &i.to_string()),
                ]
            })
            .collect();

        let ctx_mat = SpillCtx::unlimited();
        let mem_mat = ctx_mat.memory().clone();
        let mut mat = MaterializingGroupByOp::new(
            vec![0],
            1,
            ctx_mat.handle("MAT-GROUP-BY", 0, 0),
            4096,
            Box::new(CaptureWriter::new()),
        );
        feed(&mut mat, &big_rows);

        let ctx_hash = SpillCtx::unlimited();
        let mem_hash = ctx_hash.memory().clone();
        let mut hash = HashGroupByOp::new(
            vec![0],
            Arc::new(CountFactory),
            ctx_hash.handle("HASH-GROUP-BY", 0, 0),
            4096,
            Box::new(CaptureWriter::new()),
        );
        feed(&mut hash, &big_rows);

        assert!(
            mem_mat.peak() > 10 * mem_hash.peak(),
            "materializing {} vs hash {}",
            mem_mat.peak(),
            mem_hash.peak()
        );
    }

    #[test]
    fn materializing_over_budget_flags_the_job() {
        let ctx = SpillCtx::new(MemTracker::with_budget(64), SpillConfig::default());
        let mut op = MaterializingGroupByOp::new(
            vec![0],
            1,
            ctx.handle("MAT-GROUP-BY", 0, 0),
            4096,
            Box::new(CaptureWriter::new()),
        );
        let big_rows: Vec<Vec<Item>> = (0..50)
            .map(|i| vec![Item::str("k"), Item::str("x".repeat(40) + &i.to_string())])
            .collect();
        feed(&mut op, &big_rows);
        let s = ctx.summary();
        assert!(s.budget_exceeded, "violation must be observable");
        assert!(!s.spilled(), "materializing never spills");
        assert_eq!(ctx.memory().current(), 0, "grant released at close");
    }

    #[test]
    fn multi_field_keys() {
        let cap = CaptureWriter::new();
        let mut op = HashGroupByOp::new(
            vec![0, 1],
            Arc::new(CountFactory),
            SpillCtx::unlimited().handle("HASH-GROUP-BY", 0, 0),
            1024,
            Box::new(cap.clone()),
        );
        let rows = vec![
            vec![Item::str("s"), Item::int(1), Item::int(10)],
            vec![Item::str("s"), Item::int(1), Item::int(20)],
            vec![Item::str("s"), Item::int(2), Item::int(30)],
        ];
        feed(&mut op, &rows);
        let mut got = cap.take();
        got.sort_by(|a, b| a[1].total_cmp(&b[1]));
        assert_eq!(got[0], vec![Item::str("s"), Item::int(1), Item::int(2)]);
        assert_eq!(got[1], vec![Item::str("s"), Item::int(2), Item::int(1)]);
    }

    #[test]
    fn split_key_rejects_corrupt_bytes() {
        // Truncated / garbage key bytes come back as an error, not a panic.
        assert!(split_key(b"", 1).is_err());
    }

    #[test]
    fn spilling_group_by_matches_in_memory() {
        // 100 distinct keys, ~3 tuples each, under a budget that fits only
        // a handful of groups: the table freezes, partitions spill, and
        // recursive aggregation must still produce exact counts.
        let rows: Vec<Vec<Item>> = (0..300u64)
            .map(|i| {
                let k = (i.wrapping_mul(2654435761) >> 5) % 100;
                vec![Item::str(format!("key-{k:03}")), Item::int(i as i64)]
            })
            .collect();

        let cap_mem = CaptureWriter::new();
        let mut in_mem = HashGroupByOp::new(
            vec![0],
            Arc::new(CountFactory),
            SpillCtx::unlimited().handle("HASH-GROUP-BY", 0, 0),
            4096,
            Box::new(cap_mem.clone()),
        );
        feed(&mut in_mem, &rows);
        let expect = sorted(cap_mem.take());
        assert_eq!(expect.len(), 100);

        let root = scratch_root("matches");
        let ctx = budgeted_ctx(&root, 1024, 6);
        let cap_ext = CaptureWriter::new();
        let mut ext = HashGroupByOp::new(
            vec![0],
            Arc::new(CountFactory),
            ctx.handle("HASH-GROUP-BY", 0, 0),
            4096,
            Box::new(cap_ext.clone()),
        );
        feed(&mut ext, &rows);
        assert_eq!(sorted(cap_ext.take()), expect);
        let s = ctx.summary();
        assert!(s.spilled(), "budget must have forced a freeze: {s:?}");
        assert!(s.max_recursion >= 1);
        assert!(!s.budget_exceeded, "spilling avoids violations: {s:?}");
        assert_eq!(ctx.memory().current(), 0, "grant released at close");
        drop(ext);
        drop(ctx);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn recursion_cap_tolerates_overflow_but_stays_correct() {
        // max_recursion = 1 forbids re-partitioning, so the level-2
        // aggregation of each partition must grow past the budget — the
        // counts stay exact and the job is flagged.
        let rows: Vec<Vec<Item>> = (0..180u64)
            .map(|i| {
                let k = i % 60;
                vec![Item::str(format!("key-{k:03}")), Item::int(i as i64)]
            })
            .collect();
        let root = scratch_root("cap");
        let ctx = budgeted_ctx(&root, 256, 1);
        let cap = CaptureWriter::new();
        let mut op = HashGroupByOp::new(
            vec![0],
            Arc::new(CountFactory),
            ctx.handle("HASH-GROUP-BY", 0, 0),
            4096,
            Box::new(cap.clone()),
        );
        feed(&mut op, &rows);
        let got = sorted(cap.take());
        assert_eq!(got.len(), 60);
        assert!(got.iter().all(|r| r[1] == Item::int(3)), "{got:?}");
        let s = ctx.summary();
        assert!(s.spilled());
        assert!(s.budget_exceeded, "capped recursion flags the job: {s:?}");
        assert_eq!(ctx.memory().current(), 0);
        drop(op);
        drop(ctx);
        let _ = std::fs::remove_dir_all(root);
    }
}
