//! GROUP-BY — grouped aggregation, in both the paper's *before* and
//! *after* forms.
//!
//! * [`MaterializingGroupByOp`] is the pre-rewrite plan (Fig. 9): the inner
//!   focus is `AGGREGATE sequence`, so every group buffers a **sequence of
//!   its members** and downstream operators compute `count(...)` over the
//!   materialized sequence. Its memory use is reported to the tracker —
//!   this is what the group-by rules eliminate.
//! * [`HashGroupByOp`] is the post-rewrite plan (Fig. 12): the aggregate is
//!   pushed into the group-by, so each group holds only incremental
//!   aggregator state ("the count function is computed at the same time
//!   that each group is formed, without creating any sequences").

use super::eval::{Aggregator, AggregatorFactory};
use super::{BoxWriter, FrameWriter, OutBuffer};
use crate::error::Result;
use crate::frame::{Frame, TupleRef};
use crate::stats::MemTracker;
use jdm::binary::{item_len, write_sequence_from_parts};
use std::collections::HashMap;
use std::sync::Arc;

/// Concatenated serialized key items, splittable via `item_len`.
type GroupKey = Box<[u8]>;

fn extract_key(t: &TupleRef<'_>, key_fields: &[usize]) -> GroupKey {
    let mut key = Vec::new();
    for &i in key_fields {
        key.extend_from_slice(t.field(i));
    }
    key.into_boxed_slice()
}

/// Split a concatenated key back into per-field slices.
fn split_key(key: &[u8], n: usize) -> Vec<&[u8]> {
    let mut out = Vec::with_capacity(n);
    let mut rest = key;
    for _ in 0..n {
        let len = item_len(rest).expect("well-formed key bytes");
        out.push(&rest[..len]);
        rest = &rest[len..];
    }
    out
}

/// Hash-based grouped aggregation with incremental per-group state.
/// Output tuples: `(key fields ..., aggregate result)`.
pub struct HashGroupByOp {
    key_fields: Vec<usize>,
    factory: Arc<dyn AggregatorFactory>,
    groups: HashMap<GroupKey, Box<dyn Aggregator>>,
    mem: Arc<MemTracker>,
    tracked: usize,
    out: OutBuffer,
}

impl HashGroupByOp {
    pub fn new(
        key_fields: Vec<usize>,
        factory: Arc<dyn AggregatorFactory>,
        mem: Arc<MemTracker>,
        frame_size: usize,
        out: BoxWriter,
    ) -> Self {
        HashGroupByOp {
            key_fields,
            factory,
            groups: HashMap::new(),
            mem,
            tracked: 0,
            out: OutBuffer::new(frame_size, out),
        }
    }
}

impl FrameWriter for HashGroupByOp {
    fn name(&self) -> &'static str {
        "HASH-GROUP-BY"
    }

    fn open(&mut self) -> Result<()> {
        self.out.open()
    }

    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        for t in frame.tuples() {
            let key = extract_key(&t, &self.key_fields);
            let agg = self.groups.entry(key).or_insert_with(|| {
                self.tracked += 64; // key + fixed state estimate
                self.mem.alloc(64);
                self.factory.create()
            });
            agg.step(&t)?;
        }
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        // Deterministic output order is left to consumers (group order is
        // hash-table order, as in a real hash group-by).
        let groups = std::mem::take(&mut self.groups);
        let nkeys = self.key_fields.len();
        let mut result = Vec::new();
        for (key, mut agg) in groups {
            result.clear();
            agg.finish(&mut result)?;
            let mut fields = split_key(&key, nkeys);
            fields.push(&result);
            self.out.push_fields(&fields)?;
        }
        self.mem.free(self.tracked);
        self.tracked = 0;
        self.out.close()
    }
}

/// Pre-rewrite grouped aggregation: buffers each group's members of field
/// `seq_field` as a sequence. Output tuples: `(key fields ..., sequence)`.
pub struct MaterializingGroupByOp {
    key_fields: Vec<usize>,
    seq_field: usize,
    groups: HashMap<GroupKey, Vec<Vec<u8>>>,
    mem: Arc<MemTracker>,
    tracked: usize,
    out: OutBuffer,
}

impl MaterializingGroupByOp {
    pub fn new(
        key_fields: Vec<usize>,
        seq_field: usize,
        mem: Arc<MemTracker>,
        frame_size: usize,
        out: BoxWriter,
    ) -> Self {
        MaterializingGroupByOp {
            key_fields,
            seq_field,
            groups: HashMap::new(),
            mem,
            tracked: 0,
            out: OutBuffer::new(frame_size, out),
        }
    }
}

impl FrameWriter for MaterializingGroupByOp {
    fn name(&self) -> &'static str {
        "MAT-GROUP-BY"
    }

    fn open(&mut self) -> Result<()> {
        self.out.open()
    }

    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        for t in frame.tuples() {
            let key = extract_key(&t, &self.key_fields);
            let member = t.field(self.seq_field).to_vec();
            self.tracked += member.len();
            self.mem.alloc(member.len());
            self.groups.entry(key).or_default().push(member);
        }
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        let groups = std::mem::take(&mut self.groups);
        let nkeys = self.key_fields.len();
        let mut seq = Vec::new();
        for (key, members) in groups {
            seq.clear();
            let parts: Vec<&[u8]> = members.iter().map(|m| m.as_slice()).collect();
            write_sequence_from_parts(&parts, &mut seq);
            let mut fields = split_key(&key, nkeys);
            fields.push(&seq);
            self.out.push_fields(&fields)?;
        }
        self.mem.free(self.tracked);
        self.tracked = 0;
        self.out.close()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{feed, CaptureWriter};
    use super::*;
    use jdm::binary::write_item;
    use jdm::Item;

    struct CountAgg(i64);
    impl Aggregator for CountAgg {
        fn step(&mut self, _t: &TupleRef<'_>) -> Result<()> {
            self.0 += 1;
            Ok(())
        }
        fn finish(&mut self, out: &mut Vec<u8>) -> Result<()> {
            write_item(&Item::int(self.0), out);
            Ok(())
        }
    }

    struct CountFactory;
    impl AggregatorFactory for CountFactory {
        fn create(&self) -> Box<dyn Aggregator> {
            Box::new(CountAgg(0))
        }
    }

    fn rows() -> Vec<Vec<Item>> {
        // (key, payload) pairs: a×3, b×2, c×1
        [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("a", 5), ("b", 6)]
            .iter()
            .map(|(k, v)| vec![Item::str(*k), Item::int(*v)])
            .collect()
    }

    fn sorted(mut rows: Vec<Vec<Item>>) -> Vec<Vec<Item>> {
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        rows
    }

    #[test]
    fn hash_group_by_counts_per_group() {
        let cap = CaptureWriter::new();
        let mem = MemTracker::new();
        let mut op = HashGroupByOp::new(
            vec![0],
            Arc::new(CountFactory),
            mem.clone(),
            1024,
            Box::new(cap.clone()),
        );
        feed(&mut op, &rows());
        let got = sorted(cap.take());
        assert_eq!(
            got,
            vec![
                vec![Item::str("a"), Item::int(3)],
                vec![Item::str("b"), Item::int(2)],
                vec![Item::str("c"), Item::int(1)],
            ]
        );
        assert_eq!(mem.current(), 0, "state freed at close");
    }

    #[test]
    fn materializing_group_by_builds_sequences() {
        let cap = CaptureWriter::new();
        let mem = MemTracker::new();
        let mut op =
            MaterializingGroupByOp::new(vec![0], 1, mem.clone(), 1024, Box::new(cap.clone()));
        feed(&mut op, &rows());
        let got = sorted(cap.take());
        assert_eq!(got.len(), 3);
        assert_eq!(got[0][0], Item::str("a"));
        assert_eq!(
            got[0][1],
            Item::seq([Item::int(1), Item::int(3), Item::int(5)])
        );
        assert_eq!(got[2][1], Item::seq([Item::int(4)]));
        // Materialization was visible to the memory tracker.
        assert!(mem.peak() > 0);
        assert_eq!(mem.current(), 0);
    }

    #[test]
    fn materializing_uses_more_memory_than_hash() {
        let big_rows: Vec<Vec<Item>> = (0..200)
            .map(|i| {
                vec![
                    Item::str("samekey"),
                    Item::str("x".repeat(50) + &i.to_string()),
                ]
            })
            .collect();

        let mem_mat = MemTracker::new();
        let mut mat = MaterializingGroupByOp::new(
            vec![0],
            1,
            mem_mat.clone(),
            4096,
            Box::new(CaptureWriter::new()),
        );
        feed(&mut mat, &big_rows);

        let mem_hash = MemTracker::new();
        let mut hash = HashGroupByOp::new(
            vec![0],
            Arc::new(CountFactory),
            mem_hash.clone(),
            4096,
            Box::new(CaptureWriter::new()),
        );
        feed(&mut hash, &big_rows);

        assert!(
            mem_mat.peak() > 10 * mem_hash.peak(),
            "materializing {} vs hash {}",
            mem_mat.peak(),
            mem_hash.peak()
        );
    }

    #[test]
    fn multi_field_keys() {
        let cap = CaptureWriter::new();
        let mut op = HashGroupByOp::new(
            vec![0, 1],
            Arc::new(CountFactory),
            MemTracker::new(),
            1024,
            Box::new(cap.clone()),
        );
        let rows = vec![
            vec![Item::str("s"), Item::int(1), Item::int(10)],
            vec![Item::str("s"), Item::int(1), Item::int(20)],
            vec![Item::str("s"), Item::int(2), Item::int(30)],
        ];
        feed(&mut op, &rows);
        let mut got = cap.take();
        got.sort_by(|a, b| a[1].total_cmp(&b[1]));
        assert_eq!(got[0], vec![Item::str("s"), Item::int(1), Item::int(2)]);
        assert_eq!(got[1], vec![Item::str("s"), Item::int(2), Item::int(1)]);
    }
}
