//! Exchange connectors between job stages.
//!
//! Connectors are what make "partitioned-parallel execution without any
//! user-level parallel programming" (paper §4.2) possible: the physical
//! optimizer inserts them and the runtime routes frames accordingly.
//!
//! * [`OneToOneSender`] — same-partition forwarding (pipeline boundary
//!   without repartitioning).
//! * [`HashPartitionSender`] — repartition tuples by a hash of key fields
//!   (group-by and join exchanges).
//! * [`MergeSender`] — all partitions feed partition 0 of the next stage
//!   (global aggregation / result collection).
//!
//! All senders count shipped frames, and bytes crossing a node boundary
//! count as network traffic.

use crate::channel::Sender;
use crate::context::TaskContext;
use crate::error::{DataflowError, Result};
use crate::frame::{Frame, FrameAppender};
use crate::ops::FrameWriter;
use std::sync::atomic::Ordering;

/// Stable 64-bit FNV-1a over serialized item bytes. Because items are
/// serialized canonically, byte equality coincides with item equality for
/// values of the same numeric type (mixed int/double group keys would need
/// normalization; the JSONiq layer normalizes such keys before exchange).
pub fn hash_bytes(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in parts {
        for &b in *p {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

fn account(ctx: &TaskContext, dst_partition: usize, frame: &Frame) {
    ctx.counters.frames_shipped.fetch_add(1, Ordering::Relaxed);
    if ctx.node_of(dst_partition) != ctx.node {
        ctx.counters
            .network_bytes
            .fetch_add(frame.data_len() as u64, Ordering::Relaxed);
    }
}

fn send(ctx: &TaskContext, tx: &Sender<Frame>, dst: usize, frame: Frame) -> Result<()> {
    // Cancellation check per shipped frame: operators that do their heavy
    // lifting inside `close()` (external-sort merges, join emission) have
    // no receive loop left to notice a fired token, but they still push
    // every output frame through here.
    ctx.check_cancelled()?;
    account(ctx, dst, &frame);
    tx.send(frame)
        .map_err(|_| DataflowError::Worker("exchange receiver dropped".into()))
}

/// Forward frames to the same partition of the next stage.
pub struct OneToOneSender {
    ctx: TaskContext,
    tx: Option<Sender<Frame>>,
}

impl OneToOneSender {
    pub fn new(ctx: TaskContext, tx: Sender<Frame>) -> Self {
        OneToOneSender { ctx, tx: Some(tx) }
    }
}

impl FrameWriter for OneToOneSender {
    fn name(&self) -> &'static str {
        "EXCHANGE-1:1"
    }

    fn open(&mut self) -> Result<()> {
        Ok(())
    }

    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        let tx = self
            .tx
            .as_ref()
            .ok_or_else(|| DataflowError::Worker("closed".into()))?;
        send(&self.ctx, tx, self.ctx.partition, frame.clone())
    }

    fn close(&mut self) -> Result<()> {
        self.tx = None;
        Ok(())
    }
}

/// Repartition tuples by hash of the given key fields.
pub struct HashPartitionSender {
    ctx: TaskContext,
    key_fields: Vec<usize>,
    txs: Vec<Sender<Frame>>,
    apps: Vec<FrameAppender>,
    closed: bool,
}

impl HashPartitionSender {
    pub fn new(ctx: TaskContext, key_fields: Vec<usize>, txs: Vec<Sender<Frame>>) -> Self {
        let apps = (0..txs.len())
            .map(|_| FrameAppender::new(ctx.frame_size))
            .collect();
        HashPartitionSender {
            ctx,
            key_fields,
            txs,
            apps,
            closed: false,
        }
    }
}

impl FrameWriter for HashPartitionSender {
    fn name(&self) -> &'static str {
        "EXCHANGE-HASH"
    }

    fn open(&mut self) -> Result<()> {
        Ok(())
    }

    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        let n = self.txs.len();
        for t in frame.tuples() {
            let parts: Vec<&[u8]> = self.key_fields.iter().map(|&i| t.field(i)).collect();
            let dst = (hash_bytes(&parts) % n as u64) as usize;
            loop {
                if self.apps[dst].append_tuple(&t)? {
                    break;
                }
                if let Some(f) = self.apps[dst].take_frame() {
                    send(&self.ctx, &self.txs[dst], dst, f)?;
                }
            }
        }
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        if self.closed {
            return Ok(());
        }
        for dst in 0..self.txs.len() {
            if let Some(f) = self.apps[dst].take_frame() {
                send(&self.ctx, &self.txs[dst], dst, f)?;
            }
        }
        self.txs.clear(); // drop senders to signal EOS
        self.closed = true;
        Ok(())
    }
}

/// Send every frame to partition 0 of the next stage.
pub struct MergeSender {
    ctx: TaskContext,
    tx: Option<Sender<Frame>>,
}

impl MergeSender {
    pub fn new(ctx: TaskContext, tx: Sender<Frame>) -> Self {
        MergeSender { ctx, tx: Some(tx) }
    }
}

impl FrameWriter for MergeSender {
    fn name(&self) -> &'static str {
        "EXCHANGE-MERGE"
    }

    fn open(&mut self) -> Result<()> {
        Ok(())
    }

    fn next_frame(&mut self, frame: &Frame) -> Result<()> {
        let tx = self
            .tx
            .as_ref()
            .ok_or_else(|| DataflowError::Worker("closed".into()))?;
        send(&self.ctx, tx, 0, frame.clone())
    }

    fn close(&mut self) -> Result<()> {
        self.tx = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_spreads() {
        let a = hash_bytes(&[b"station-1", b"2013-12-25"]);
        let b = hash_bytes(&[b"station-1", b"2013-12-25"]);
        let c = hash_bytes(&[b"station-2", b"2013-12-25"]);
        assert_eq!(a, b);
        assert_ne!(a, c);

        // Distribution sanity: 1000 keys over 8 buckets, no bucket empty.
        let mut buckets = [0usize; 8];
        for i in 0..1000 {
            let k = format!("key-{i}");
            buckets[(hash_bytes(&[k.as_bytes()]) % 8) as usize] += 1;
        }
        assert!(buckets.iter().all(|&c| c > 50), "skewed: {buckets:?}");
    }

    #[test]
    fn hash_depends_on_all_parts() {
        assert_ne!(hash_bytes(&[b"ab", b"c"]), hash_bytes(&[b"ab", b"d"]));
    }
}

#[cfg(test)]
mod sender_tests {
    use super::*;
    use crate::context::CoreGate;
    use crate::frame::FrameAppender;
    use crate::ops::FrameWriter;
    use crate::stats::{Counters, MemTracker};

    fn ctx(partition: usize, ppn: usize) -> TaskContext {
        TaskContext {
            stage: 0,
            partition,
            num_partitions: 4,
            node: partition / ppn.max(1),
            partitions_per_node: ppn,
            frame_size: 1024,
            mem: MemTracker::new(),
            counters: Counters::new(),
            gate: CoreGate::unlimited(),
            profiler: None,
            spill: crate::spill::SpillCtx::unlimited(),
            cancel: crate::cancel::CancelToken::new(),
        }
    }

    fn one_tuple_frame(payload: &[u8]) -> Frame {
        let mut app = FrameAppender::new(1024);
        assert!(app.append(&[payload]).unwrap());
        app.take_frame().unwrap()
    }

    #[test]
    fn one_to_one_delivers_to_same_partition() {
        let c = ctx(1, 2);
        let (tx, rx) = crate::channel::unbounded();
        let mut s = OneToOneSender::new(c.clone(), tx);
        s.open().unwrap();
        s.next_frame(&one_tuple_frame(b"abc")).unwrap();
        s.close().unwrap();
        let got: Vec<Frame> = rx.iter().collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].tuple(0).field(0), b"abc");
    }

    #[test]
    fn hash_sender_routes_equal_keys_together() {
        let c = ctx(0, 2);
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..4).map(|_| crate::channel::unbounded()).unzip();
        let mut s = HashPartitionSender::new(c, vec![0], txs);
        s.open().unwrap();
        // Send the same key twice and a different key once.
        for payload in [b"key-a" as &[u8], b"key-a", b"key-b"] {
            s.next_frame(&one_tuple_frame(payload)).unwrap();
        }
        s.close().unwrap();
        let mut by_dst: Vec<Vec<Vec<u8>>> = Vec::new();
        for rx in rxs {
            let mut tuples = Vec::new();
            for f in rx.iter() {
                for t in f.tuples() {
                    tuples.push(t.field(0).to_vec());
                }
            }
            by_dst.push(tuples);
        }
        // Both "key-a" tuples landed on the same destination.
        let with_a: Vec<usize> = (0..4)
            .filter(|&i| by_dst[i].iter().any(|t| t == b"key-a"))
            .collect();
        assert_eq!(with_a.len(), 1, "{by_dst:?}");
        assert_eq!(
            by_dst[with_a[0]].iter().filter(|t| *t == b"key-a").count(),
            2
        );
        let total: usize = by_dst.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn cross_node_traffic_is_counted() {
        let c = ctx(0, 1); // node 0
        let (txs, _rxs): (Vec<_>, Vec<_>) = (0..2).map(|_| crate::channel::unbounded()).unzip();
        let counters = c.counters.clone();
        let mut s = MergeSender::new(c, txs[0].clone());
        s.open().unwrap();
        s.next_frame(&one_tuple_frame(b"x")).unwrap();
        s.close().unwrap();
        // Merge target is partition 0 = same node here: local, no bytes.
        assert_eq!(
            counters
                .network_bytes
                .load(std::sync::atomic::Ordering::Relaxed),
            0
        );
        assert_eq!(
            counters
                .frames_shipped
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );

        // From node 1, the same merge crosses a node boundary.
        let c2 = ctx(1, 1);
        let counters2 = c2.counters.clone();
        let mut s2 = MergeSender::new(c2, txs[1].clone());
        s2.open().unwrap();
        s2.next_frame(&one_tuple_frame(b"x")).unwrap();
        s2.close().unwrap();
        assert!(
            counters2
                .network_bytes
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0
        );
    }
}
