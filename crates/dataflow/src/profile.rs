//! Per-operator runtime profiling.
//!
//! The paper's evaluation is entirely about *where* time and bytes go —
//! pipelined DATASCAN vs. materialized sequences (Table 3), rule-by-rule
//! speedups (Figs. 12–16). Job-level aggregates cannot attribute a
//! regression to an operator, so every operator in a fused chain is
//! wrapped in a [`ProfiledWriter`] probe that counts the frames, tuples
//! and bytes pushed into it and the time spent inside it (via the RAII
//! [`OpScope`]).
//!
//! Because a fused chain is a synchronous push pipeline, probes nest: the
//! probe in front of operator *K* times everything downstream of it, and
//! what *K* emits is exactly what the next probe receives. Per-operator
//! **output** counts, **busy** time (own work) and **emit-stall** time
//! (time inside downstream `next_frame`/`close`, including exchange
//! backpressure) therefore fall out of adjacent probes at aggregation
//! time — each frame is counted once, no double instrumentation.
//!
//! [`Profiler`] collects one probe per (stage, partition, chain position)
//! and [`Profiler::finish`] folds them into a [`JobProfile`] attached to
//! [`crate::stats::JobStats`].

use crate::frame::Frame;
use crate::job::TwoInputOp;
use crate::ops::{BoxWriter, FrameWriter};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Lock-free counters for one operator probe. Cheap enough to stay on in
/// production runs: frame-granular atomic adds, not per-tuple.
#[derive(Debug, Default)]
pub struct OpMetrics {
    tuples_in: AtomicU64,
    frames_in: AtomicU64,
    bytes_in: AtomicU64,
    /// Nanoseconds spent inside this probe's `open`/`next_frame`/`close`,
    /// inclusive of everything downstream.
    inclusive_ns: AtomicU64,
}

impl OpMetrics {
    pub fn new() -> Arc<Self> {
        Arc::new(OpMetrics::default())
    }

    /// Count one incoming frame.
    pub fn note_frame(&self, frame: &Frame) {
        self.record_input(frame.tuple_count() as u64, 1, frame.data_len() as u64);
    }

    /// Count raw input amounts (exposed for tests and custom operators).
    pub fn record_input(&self, tuples: u64, frames: u64, bytes: u64) {
        self.tuples_in.fetch_add(tuples, Ordering::Relaxed);
        self.frames_in.fetch_add(frames, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Start an RAII scope whose wall time is added to the inclusive
    /// nanosecond counter on drop.
    pub fn enter(&self) -> OpScope<'_> {
        OpScope {
            metrics: self,
            start: Instant::now(),
        }
    }

    pub fn tuples_in(&self) -> u64 {
        self.tuples_in.load(Ordering::Relaxed)
    }

    pub fn frames_in(&self) -> u64 {
        self.frames_in.load(Ordering::Relaxed)
    }

    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    pub fn inclusive(&self) -> Duration {
        Duration::from_nanos(self.inclusive_ns.load(Ordering::Relaxed))
    }
}

/// RAII timing scope over an [`OpMetrics`].
pub struct OpScope<'a> {
    metrics: &'a OpMetrics,
    start: Instant,
}

impl Drop for OpScope<'_> {
    fn drop(&mut self) {
        self.metrics
            .inclusive_ns
            .fetch_add(self.start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Probe wrapped around one operator of a fused chain.
pub struct ProfiledWriter {
    metrics: Arc<OpMetrics>,
    inner: BoxWriter,
}

impl ProfiledWriter {
    pub fn new(metrics: Arc<OpMetrics>, inner: BoxWriter) -> Self {
        ProfiledWriter { metrics, inner }
    }
}

impl FrameWriter for ProfiledWriter {
    fn open(&mut self) -> crate::error::Result<()> {
        let _scope = self.metrics.enter();
        self.inner.open()
    }

    fn next_frame(&mut self, frame: &Frame) -> crate::error::Result<()> {
        self.metrics.note_frame(frame);
        let _scope = self.metrics.enter();
        self.inner.next_frame(frame)
    }

    fn close(&mut self) -> crate::error::Result<()> {
        let _scope = self.metrics.enter();
        self.inner.close()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Probe wrapped around a two-input (join) operator. Both build and probe
/// frames count as input; the downstream probe supplies output counts.
pub struct ProfiledTwoInput {
    metrics: Arc<OpMetrics>,
    inner: Box<dyn TwoInputOp>,
}

impl ProfiledTwoInput {
    pub fn new(metrics: Arc<OpMetrics>, inner: Box<dyn TwoInputOp>) -> Self {
        ProfiledTwoInput { metrics, inner }
    }
}

impl TwoInputOp for ProfiledTwoInput {
    fn open(&mut self) -> crate::error::Result<()> {
        let _scope = self.metrics.enter();
        self.inner.open()
    }

    fn build_frame(&mut self, frame: &Frame) -> crate::error::Result<()> {
        self.metrics.note_frame(frame);
        let _scope = self.metrics.enter();
        self.inner.build_frame(frame)
    }

    fn build_done(&mut self) -> crate::error::Result<()> {
        let _scope = self.metrics.enter();
        self.inner.build_done()
    }

    fn probe_frame(&mut self, frame: &Frame) -> crate::error::Result<()> {
        self.metrics.note_frame(frame);
        let _scope = self.metrics.enter();
        self.inner.probe_frame(frame)
    }

    fn close(&mut self) -> crate::error::Result<()> {
        let _scope = self.metrics.enter();
        self.inner.close()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

struct ProbeRecord {
    stage: usize,
    partition: usize,
    /// Registration sequence. Chains are built tail-first (the runtime
    /// creates the exchange sender, then the factory builds operators
    /// back-to-front), so within one (stage, partition) a *higher* seq
    /// means *earlier* in the pipeline.
    seq: u64,
    name: &'static str,
    metrics: Arc<OpMetrics>,
}

/// Runtime record of one DATASCAN split: which byte range of which file a
/// partition scanned and what came out of it. Recorded by the scan
/// runtimes via [`crate::context::TaskContext::record_split`]; EXPLAIN
/// ANALYZE renders these as the per-split scan-balance section.
#[derive(Debug, Clone)]
pub struct SplitProfile {
    pub stage: usize,
    pub partition: usize,
    /// Source file (display form).
    pub file: String,
    /// Split index within the file.
    pub split: usize,
    /// Total splits of the file.
    pub of: usize,
    /// Records (top-level collection members) this split covered.
    pub records: u64,
    /// Tuples the split emitted into the pipeline.
    pub tuples: u64,
    /// Bytes of the file this split was responsible for.
    pub bytes: u64,
    /// Wall time spent scanning the split.
    pub elapsed: Duration,
    /// Bytes run through the structural-index build by *this* split (0
    /// when the index was built by another split of a shared file, or the
    /// source needs no index, e.g. binary `.adm`).
    pub index_bytes: u64,
    /// Wall time of that structural-index build.
    pub index_elapsed: Duration,
    /// Stage-1 kernel label (`scalar`/`swar`/`sse2`/`avx2`) of the index
    /// this split navigated; `None` for index-free sources.
    pub kernel: Option<&'static str>,
}

/// Per-run collector of operator probes.
#[derive(Default)]
pub struct Profiler {
    seq: AtomicU64,
    records: Mutex<Vec<ProbeRecord>>,
    splits: Mutex<Vec<SplitProfile>>,
}

impl Profiler {
    pub fn new() -> Arc<Self> {
        Arc::new(Profiler::default())
    }

    /// Register a probe and return its metrics handle.
    pub fn register(&self, stage: usize, partition: usize, name: &'static str) -> Arc<OpMetrics> {
        let metrics = OpMetrics::new();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        // Probe lists stay consistent under poisoning (pushes are atomic
        // appends), so recover: a panicked task must not wedge profiling
        // for the rest of the job.
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ProbeRecord {
                stage,
                partition,
                seq,
                name,
                metrics: metrics.clone(),
            });
        metrics
    }

    /// Wrap `inner` in a registered probe.
    pub fn instrument(&self, stage: usize, partition: usize, inner: BoxWriter) -> BoxWriter {
        let metrics = self.register(stage, partition, inner.name());
        Box::new(ProfiledWriter::new(metrics, inner))
    }

    /// Record one scan split's runtime metrics.
    pub fn record_split(&self, split: SplitProfile) {
        self.splits
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(split);
    }

    /// Wrap a two-input operator in a registered probe.
    pub fn instrument_two_input(
        &self,
        stage: usize,
        partition: usize,
        inner: Box<dyn TwoInputOp>,
    ) -> Box<dyn TwoInputOp> {
        let metrics = self.register(stage, partition, inner.name());
        Box::new(ProfiledTwoInput::new(metrics, inner))
    }

    /// Fold all probes into the per-operator profile. Output counts, busy
    /// and emit-stall time come from adjacent probes (see module docs).
    pub fn finish(&self) -> JobProfile {
        let records = self.records.lock().unwrap_or_else(|e| e.into_inner());
        let mut ops = Vec::with_capacity(records.len());
        // Group records by (stage, partition), ordered front-to-back.
        let mut sorted: Vec<&ProbeRecord> = records.iter().collect();
        sorted.sort_by(|a, b| (a.stage, a.partition, b.seq).cmp(&(b.stage, b.partition, a.seq)));
        let mut i = 0;
        while i < sorted.len() {
            let j = (i..sorted.len())
                .take_while(|&k| {
                    sorted[k].stage == sorted[i].stage && sorted[k].partition == sorted[i].partition
                })
                .last()
                .unwrap()
                + 1;
            let chain = &sorted[i..j];
            for (pos, rec) in chain.iter().enumerate() {
                let downstream = chain.get(pos + 1);
                let inclusive = rec.metrics.inclusive();
                let (tuples_out, frames_out, bytes_out, downstream_time) = match downstream {
                    Some(next) => (
                        next.metrics.tuples_in(),
                        next.metrics.frames_in(),
                        next.metrics.bytes_in(),
                        next.metrics.inclusive(),
                    ),
                    // The chain tail (exchange sender / collector) forwards
                    // what it receives; its probe time is all send time.
                    None => (
                        rec.metrics.tuples_in(),
                        rec.metrics.frames_in(),
                        rec.metrics.bytes_in(),
                        Duration::ZERO,
                    ),
                };
                ops.push(OpProfile {
                    stage: rec.stage,
                    partition: rec.partition,
                    op_index: pos,
                    name: rec.name,
                    tuples_in: rec.metrics.tuples_in(),
                    frames_in: rec.metrics.frames_in(),
                    bytes_in: rec.metrics.bytes_in(),
                    tuples_out,
                    frames_out,
                    bytes_out,
                    busy: inclusive.saturating_sub(downstream_time),
                    emit_stall: downstream_time,
                });
            }
            i = j;
        }
        let mut splits = self
            .splits
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        splits.sort_by(|a, b| {
            (a.stage, a.partition, &a.file, a.split).cmp(&(b.stage, b.partition, &b.file, b.split))
        });
        JobProfile {
            ops,
            splits,
            spill_ops: Vec::new(),
        }
    }
}

/// Frozen metrics of one operator instance (one stage, one partition, one
/// chain position).
#[derive(Debug, Clone)]
pub struct OpProfile {
    pub stage: usize,
    pub partition: usize,
    /// Position in the fused chain, 0 = head (first operator fed).
    pub op_index: usize,
    pub name: &'static str,
    pub tuples_in: u64,
    pub frames_in: u64,
    pub bytes_in: u64,
    pub tuples_out: u64,
    pub frames_out: u64,
    pub bytes_out: u64,
    /// Time spent in this operator's own work.
    pub busy: Duration,
    /// Time spent pushing into downstream operators (including exchange
    /// backpressure blocking).
    pub emit_stall: Duration,
}

/// One operator aggregated across the partitions of its stage.
#[derive(Debug, Clone)]
pub struct OpSummary {
    pub stage: usize,
    pub op_index: usize,
    pub name: &'static str,
    pub partitions: usize,
    pub tuples_in: u64,
    pub frames_in: u64,
    pub bytes_in: u64,
    pub tuples_out: u64,
    pub frames_out: u64,
    pub bytes_out: u64,
    pub busy: Duration,
    pub emit_stall: Duration,
}

/// Per-operator metrics of one job run.
#[derive(Debug, Clone, Default)]
pub struct JobProfile {
    pub ops: Vec<OpProfile>,
    /// Per-split DATASCAN records (empty when the job has no file scans or
    /// profiling was off).
    pub splits: Vec<SplitProfile>,
    /// Per-operator spill records (empty when no stateful operator ran;
    /// all-zero entries mean the operator stayed within its grant).
    pub spill_ops: Vec<crate::spill::SpillOpProfile>,
}

impl JobProfile {
    /// Aggregate per (stage, chain position) across partitions, ordered by
    /// stage then pipeline position.
    pub fn summaries(&self) -> Vec<OpSummary> {
        let mut out: Vec<OpSummary> = Vec::new();
        for op in &self.ops {
            match out
                .iter_mut()
                .find(|s| s.stage == op.stage && s.op_index == op.op_index)
            {
                Some(s) => {
                    s.partitions += 1;
                    s.tuples_in += op.tuples_in;
                    s.frames_in += op.frames_in;
                    s.bytes_in += op.bytes_in;
                    s.tuples_out += op.tuples_out;
                    s.frames_out += op.frames_out;
                    s.bytes_out += op.bytes_out;
                    s.busy += op.busy;
                    s.emit_stall += op.emit_stall;
                }
                None => out.push(OpSummary {
                    stage: op.stage,
                    op_index: op.op_index,
                    name: op.name,
                    partitions: 1,
                    tuples_in: op.tuples_in,
                    frames_in: op.frames_in,
                    bytes_in: op.bytes_in,
                    tuples_out: op.tuples_out,
                    frames_out: op.frames_out,
                    bytes_out: op.bytes_out,
                    busy: op.busy,
                    emit_stall: op.emit_stall,
                }),
            }
        }
        out.sort_by_key(|s| (s.stage, s.op_index));
        out
    }

    /// Total tuples pushed *into* all operators with this name.
    pub fn tuples_into(&self, name: &str) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.name == name)
            .map(|o| o.tuples_in)
            .sum()
    }

    /// Total tuples emitted *by* all operators with this name.
    pub fn tuples_out_of(&self, name: &str) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.name == name)
            .map(|o| o.tuples_out)
            .sum()
    }

    /// DATASCAN tuples per partition, summed over that partition's splits
    /// (scan-balance view; empty when no splits were recorded).
    pub fn scan_tuples_by_partition(&self) -> Vec<(usize, u64)> {
        let mut out: Vec<(usize, u64)> = Vec::new();
        for s in &self.splits {
            match out.iter_mut().find(|(p, _)| *p == s.partition) {
                Some((_, t)) => *t += s.tuples,
                None => out.push((s.partition, s.tuples)),
            }
        }
        out.sort_by_key(|(p, _)| *p);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameAppender;
    use crate::ops::NullWriter;

    fn frame_with(n: usize) -> Frame {
        let mut app = FrameAppender::new(4096);
        for i in 0..n {
            let payload = [i as u8];
            assert!(app.append(&[&payload]).unwrap());
        }
        app.take_frame().unwrap()
    }

    #[test]
    fn probes_count_frames_and_nest_time() {
        let profiler = Profiler::new();
        // chain: head -> mid -> tail, registered tail-first like the runtime.
        let tail = profiler.instrument(0, 0, Box::new(NullWriter));
        let mid = profiler.instrument(0, 0, tail);
        let mut head = profiler.instrument(0, 0, mid);
        head.open().unwrap();
        head.next_frame(&frame_with(5)).unwrap();
        head.next_frame(&frame_with(3)).unwrap();
        head.close().unwrap();

        let profile = profiler.finish();
        assert_eq!(profile.ops.len(), 3);
        for (pos, op) in profile.ops.iter().enumerate() {
            assert_eq!(op.op_index, pos);
            assert_eq!(op.tuples_in, 8);
            assert_eq!(op.frames_in, 2);
            assert_eq!(op.tuples_out, 8, "pass-through chain");
        }
        // Probe times nest: head inclusive >= mid inclusive >= tail.
        let records = profiler.records.lock().unwrap();
        let mut incl: Vec<(u64, Duration)> = records
            .iter()
            .map(|r| (r.seq, r.metrics.inclusive()))
            .collect();
        incl.sort_by_key(|(seq, _)| std::cmp::Reverse(*seq));
        assert!(incl[0].1 >= incl[1].1 && incl[1].1 >= incl[2].1, "{incl:?}");
    }

    #[test]
    fn metrics_survive_concurrent_hammering() {
        let m = OpMetrics::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        m.record_input(2, 1, 64);
                        let _scope = m.enter();
                    }
                });
            }
        });
        assert_eq!(m.tuples_in(), 8 * 10_000 * 2);
        assert_eq!(m.frames_in(), 8 * 10_000);
        assert_eq!(m.bytes_in(), 8 * 10_000 * 64);
    }

    #[test]
    fn summaries_aggregate_partitions() {
        let profiler = Profiler::new();
        for p in 0..4 {
            let tail = profiler.instrument(1, p, Box::new(NullWriter));
            let mut head = profiler.instrument(1, p, tail);
            head.open().unwrap();
            head.next_frame(&frame_with(p + 1)).unwrap();
            head.close().unwrap();
        }
        let profile = profiler.finish();
        let sums = profile.summaries();
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].partitions, 4);
        assert_eq!(sums[0].tuples_in, 1 + 2 + 3 + 4);
        assert_eq!(sums[1].tuples_in, 1 + 2 + 3 + 4);
    }
}
