//! Per-task execution context and the per-node core gate.

use crate::cancel::CancelToken;
use crate::ops::BoxWriter;
use crate::profile::Profiler;
use crate::spill::{SpillCtx, SpillHandle};
use crate::stats::{Counters, MemTracker};
use std::sync::{Arc, Condvar, Mutex};

/// Counting semaphore used to model per-node CPU cores.
pub struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    pub fn new(permits: usize) -> Arc<Self> {
        Arc::new(Semaphore {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        })
    }

    pub fn acquire(self: &Arc<Self>) -> SemaphoreGuard {
        // Permit counts stay consistent under poisoning (the guard's Drop
        // runs even when its task panics), so recover instead of wedging
        // every later job on this gate.
        let mut p = self.permits.lock().unwrap_or_else(|e| e.into_inner());
        while *p == 0 {
            p = self.cv.wait(p).unwrap_or_else(|e| e.into_inner());
        }
        *p -= 1;
        SemaphoreGuard { sem: self.clone() }
    }
}

/// RAII permit.
pub struct SemaphoreGuard {
    sem: Arc<Semaphore>,
}

impl Drop for SemaphoreGuard {
    fn drop(&mut self) {
        let mut p = self.sem.permits.lock().unwrap_or_else(|e| e.into_inner());
        *p += 1;
        self.sem.cv.notify_one();
    }
}

/// Optional CPU gate: a counting semaphore over per-node core tokens.
///
/// The runtime itself does **not** acquire this during normal operator
/// work — a task holding a token across a blocking channel send can
/// deadlock against consumers that need tokens to drain. Core limits are
/// instead applied analytically by the simulated-time model
/// ([`crate::cputime`]), which divides per-node work by the core count;
/// that is what reproduces the paper's hyper-threading plateau (Fig. 17).
/// The gate remains available for extensions that need hard concurrency
/// caps around non-blocking sections.
#[derive(Clone)]
pub struct CoreGate {
    sem: Option<Arc<Semaphore>>,
}

impl CoreGate {
    /// A gate that never blocks (unlimited cores).
    pub fn unlimited() -> Self {
        CoreGate { sem: None }
    }

    /// A gate backed by `cores` tokens.
    pub fn with_cores(cores: usize) -> Self {
        CoreGate {
            sem: Some(Semaphore::new(cores)),
        }
    }

    /// Acquire a core token for the duration of the returned guard.
    pub fn enter(&self) -> Option<SemaphoreGuard> {
        self.sem.as_ref().map(|s| s.acquire())
    }
}

/// Everything a worker task needs to know about its placement.
#[derive(Clone)]
pub struct TaskContext {
    /// Stage this task belongs to.
    pub stage: usize,
    /// Global partition index of this task.
    pub partition: usize,
    /// Total partitions of this task's stage.
    pub num_partitions: usize,
    /// Node hosting this partition.
    pub node: usize,
    /// Partitions per node (for node-of-partition mapping).
    pub partitions_per_node: usize,
    /// Frame capacity in bytes.
    pub frame_size: usize,
    /// Cluster-wide memory tracker.
    pub mem: Arc<MemTracker>,
    /// Cluster-wide traffic counters.
    pub counters: Arc<Counters>,
    /// CPU gate of this task's node.
    pub gate: CoreGate,
    /// Per-run operator profiler; chain factories wrap each operator they
    /// build via [`TaskContext::instrument`].
    pub profiler: Option<Arc<Profiler>>,
    /// Per-job spill state: memory grants and run files for the stateful
    /// operators (see [`crate::spill`]).
    pub spill: Arc<SpillCtx>,
    /// Per-job cancellation token, checked at frame boundaries (see
    /// [`crate::cancel`]).
    pub cancel: Arc<CancelToken>,
}

impl TaskContext {
    /// Which node hosts global partition `p` (full-parallelism stages).
    pub fn node_of(&self, p: usize) -> usize {
        p.checked_div(self.partitions_per_node).unwrap_or(0)
    }

    /// Wrap a writer in a profiling probe registered under this task's
    /// stage and partition. No-op when profiling is off.
    pub fn instrument(&self, writer: BoxWriter) -> BoxWriter {
        match &self.profiler {
            Some(p) => p.instrument(self.stage, self.partition, writer),
            None => writer,
        }
    }

    /// Record one scan split's runtime metrics into the job profile.
    /// No-op when profiling is off.
    pub fn record_split(&self, split: crate::profile::SplitProfile) {
        if let Some(p) = &self.profiler {
            p.record_split(split);
        }
    }

    /// A spill handle for one operator instance of this task, registered
    /// under the task's stage and partition.
    pub fn spill_handle(&self, op: &'static str) -> SpillHandle {
        self.spill.handle(op, self.stage, self.partition)
    }

    /// Frame-boundary cancellation check (see [`crate::cancel`]).
    pub fn check_cancelled(&self) -> crate::error::Result<()> {
        self.cancel.check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn semaphore_limits_concurrency() {
        let sem = Semaphore::new(2);
        let active = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (sem, active, max_seen) = (sem.clone(), active.clone(), max_seen.clone());
                s.spawn(move || {
                    let _g = sem.acquire();
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    max_seen.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(5));
                    active.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(max_seen.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn unlimited_gate_never_blocks() {
        let g = CoreGate::unlimited();
        assert!(g.enter().is_none());
    }

    #[test]
    fn node_mapping() {
        let ctx = TaskContext {
            stage: 0,
            partition: 5,
            num_partitions: 8,
            node: 1,
            partitions_per_node: 4,
            frame_size: 1024,
            mem: MemTracker::new(),
            counters: Counters::new(),
            gate: CoreGate::unlimited(),
            profiler: None,
            spill: SpillCtx::unlimited(),
            cancel: CancelToken::new(),
        };
        assert_eq!(ctx.node_of(0), 0);
        assert_eq!(ctx.node_of(3), 0);
        assert_eq!(ctx.node_of(4), 1);
        assert_eq!(ctx.node_of(7), 1);
    }
}
