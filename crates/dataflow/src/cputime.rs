//! Per-thread CPU time, the basis of the simulated-cluster timing model.
//!
//! **Substitution note (DESIGN.md §3):** the paper's speed-up and
//! scale-up experiments need real cores. When the host has fewer cores
//! than the simulated cluster (CI boxes often have one), wall-clock time
//! cannot show parallel speed-up no matter how correct the runtime is.
//! The cluster therefore measures each worker task's **thread CPU time**
//! (work actually done, independent of preemption and channel blocking)
//! and derives a *simulated elapsed time* as the schedule makespan:
//!
//! ```text
//! per node n:  makespan(n) = max( longest task on n,
//!                                 total work on n / effective cores )
//! simulated elapsed = max over nodes of makespan(n)
//! ```
//!
//! On a host with enough physical cores this converges to the measured
//! wall time; on a constrained host it reports what the modelled cluster
//! would do. [`crate::stats::JobStats`] carries both numbers.

use std::time::Duration;

#[cfg(unix)]
mod sys {
    //! Minimal libc binding for `clock_gettime(CLOCK_THREAD_CPUTIME_ID)`,
    //! declared locally to keep the crate dependency-free.

    #[repr(C)]
    pub struct Timespec {
        pub tv_sec: i64,
        pub tv_nsec: i64,
    }

    pub const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    extern "C" {
        pub fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }
}

/// CPU time consumed by the calling thread.
#[cfg(unix)]
pub fn thread_cpu_time() -> Duration {
    let mut ts = sys::Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: CLOCK_THREAD_CPUTIME_ID with a valid out-pointer; the call
    // cannot fail with these arguments on Linux.
    let rc = unsafe { sys::clock_gettime(sys::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    debug_assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
    Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32)
}

/// Fallback for non-unix hosts: wall time of the calling thread. Blocking
/// then counts as work, so simulated makespans are pessimistic there.
#[cfg(not(unix))]
pub fn thread_cpu_time() -> Duration {
    use std::time::SystemTime;
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .unwrap_or_default()
}

/// Stopwatch for one worker task.
pub struct TaskTimer {
    start: Duration,
}

impl TaskTimer {
    pub fn start() -> Self {
        TaskTimer {
            start: thread_cpu_time(),
        }
    }

    /// CPU consumed since [`TaskTimer::start`].
    pub fn elapsed(&self) -> Duration {
        thread_cpu_time().saturating_sub(self.start)
    }
}

/// Makespan of a set of task durations on `cores` cores (0 = unlimited):
/// the classic lower bound `max(longest, total/cores)`, which LPT
/// scheduling approaches within 4/3 and our near-uniform tasks hit
/// almost exactly.
pub fn makespan(tasks: &[Duration], cores: usize) -> Duration {
    let longest = tasks.iter().copied().max().unwrap_or(Duration::ZERO);
    if cores == 0 {
        return longest;
    }
    let total: Duration = tasks.iter().sum();
    longest.max(total / cores as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_advances_with_work() {
        let t = TaskTimer::start();
        let mut x = 0u64;
        for i in 0..5_000_000u64 {
            x = x.wrapping_mul(31).wrapping_add(i);
        }
        std::hint::black_box(x);
        assert!(t.elapsed() > Duration::ZERO);
    }

    #[test]
    fn cpu_time_ignores_sleep() {
        let t = TaskTimer::start();
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            t.elapsed() < Duration::from_millis(15),
            "sleep must not count as work"
        );
    }

    #[test]
    fn makespan_models_parallelism() {
        let ms = Duration::from_millis;
        let tasks = [ms(10), ms(10), ms(10), ms(10)];
        assert_eq!(makespan(&tasks, 0), ms(10)); // unlimited cores
        assert_eq!(makespan(&tasks, 4), ms(10));
        assert_eq!(makespan(&tasks, 2), ms(20));
        assert_eq!(makespan(&tasks, 1), ms(40));
        // A dominating task bounds the makespan.
        let skewed = [ms(40), ms(5), ms(5)];
        assert_eq!(makespan(&skewed, 4), ms(40));
        assert_eq!(makespan(&[], 4), ms(0));
    }
}
