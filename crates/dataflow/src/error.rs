//! Runtime errors for the dataflow layer.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataflowError>;

/// Errors surfaced by frame handling, operators, and job execution.
#[derive(Debug, Clone)]
pub enum DataflowError {
    /// A single tuple exceeded the configured frame capacity and big-frame
    /// promotion was disabled.
    TupleTooLarge { tuple: usize, capacity: usize },
    /// Malformed frame or tuple bytes.
    BadFrame(String),
    /// An expression evaluator or aggregator failed.
    Eval(String),
    /// A scan source failed (I/O, parse).
    Source(String),
    /// Job-graph validation failed (unknown stage, cycle, arity mismatch).
    BadJob(String),
    /// A worker thread panicked or a channel was severed unexpectedly.
    Worker(String),
    /// The job exceeded its configured memory budget (used by baselines
    /// simulating memory-limited systems).
    OutOfMemory { requested: usize, budget: usize },
    /// Spill subsystem failure (run-file I/O, spill-directory lifecycle).
    Spill(String),
    /// The job's cancellation token fired (client cancel or deadline);
    /// the run unwound cooperatively at a frame boundary.
    Cancelled(crate::cancel::CancelReason),
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::TupleTooLarge { tuple, capacity } => {
                write!(
                    f,
                    "tuple of {tuple} bytes exceeds frame capacity {capacity}"
                )
            }
            DataflowError::BadFrame(m) => write!(f, "bad frame: {m}"),
            DataflowError::Eval(m) => write!(f, "evaluation error: {m}"),
            DataflowError::Source(m) => write!(f, "source error: {m}"),
            DataflowError::BadJob(m) => write!(f, "invalid job: {m}"),
            DataflowError::Worker(m) => write!(f, "worker failure: {m}"),
            DataflowError::OutOfMemory { requested, budget } => {
                write!(
                    f,
                    "out of memory: requested {requested} bytes with budget {budget}"
                )
            }
            DataflowError::Spill(m) => write!(f, "spill error: {m}"),
            DataflowError::Cancelled(crate::cancel::CancelReason::Client) => {
                write!(f, "query cancelled by client")
            }
            DataflowError::Cancelled(crate::cancel::CancelReason::Deadline) => {
                write!(f, "query deadline exceeded")
            }
        }
    }
}

impl std::error::Error for DataflowError {}

impl From<jdm::JdmError> for DataflowError {
    fn from(e: jdm::JdmError) -> Self {
        DataflowError::Eval(e.to_string())
    }
}
