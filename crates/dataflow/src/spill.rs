//! Memory-bounded execution: grant broker + run files.
//!
//! The paper's pipelining rules shrink what gets materialized, but the
//! stateful operators that *remain* (sort, hash join, group-by) still held
//! their whole state in RAM, and [`MemTracker`]'s budget was purely
//! advisory. This module is the missing Hyracks layer ("Apache VXQuery: A
//! Scalable XQuery Implementation" describes the external sort and hybrid
//! hash operators this models): it turns the budget into a signal the
//! operators act on.
//!
//! Two layers:
//!
//! * **Grant broker** — [`MemGrant`], a per-operator reservation drawn
//!   from the cluster-wide [`MemTracker`]. [`MemGrant::try_grow`] returns
//!   `false` when the budget would be exceeded *and rolls the attempt
//!   back*: that is the operator's "spill now" signal. The legacy
//!   check-and-ignore path survives as [`MemGrant::grow_anyway`], which
//!   keeps the bytes accounted but raises the job's `budget_exceeded`
//!   flag so EXPLAIN ANALYZE shows the violation.
//! * **Run files** — a per-job spill directory (created lazily, removed
//!   when the job's [`SpillCtx`] drops, so success, failure mid-spill and
//!   early operator teardown all clean up), holding length-prefixed tuple
//!   runs written/read with buffered sequential I/O ([`RunWriter`] /
//!   [`RunReader`]).
//!
//! Everything an operator spills is counted in [`SpillStats`] and folded
//! into [`crate::stats::JobStats`] and the job profile, mirroring how
//! scan splits are reported.

use crate::error::{DataflowError, Result};
use crate::stats::MemTracker;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read as _, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Spill tuning knobs, per job (set through the engine config).
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Root directory for per-job spill dirs. `None` = the system temp
    /// directory. The job creates `vxq-spill-<pid>-<seq>/` under it on
    /// first spill and removes it when the job finishes.
    pub dir: Option<PathBuf>,
    /// Maximum sorted runs merged at once by the external sort. Low
    /// values force multi-pass merges (tests use 2).
    pub merge_fan_in: usize,
    /// Partition fan-out used by the grace hash join and the spilling
    /// group-by when they overflow their grant.
    pub spill_partitions: usize,
    /// Maximum recursive re-partitioning depth. Beyond it (e.g. every
    /// tuple shares one key) operators fall back to `grow_anyway` and the
    /// run is flagged `budget_exceeded` instead of looping forever.
    pub max_recursion: usize,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            dir: None,
            merge_fan_in: 16,
            spill_partitions: 8,
            max_recursion: 6,
        }
    }
}

impl SpillConfig {
    /// `merge_fan_in`, clamped to something a merge can make progress with.
    pub fn fan_in(&self) -> usize {
        self.merge_fan_in.max(2)
    }

    /// `spill_partitions`, clamped likewise.
    pub fn partitions(&self) -> usize {
        self.spill_partitions.max(2)
    }
}

/// Job-wide spill counters (atomics: tasks update them concurrently).
#[derive(Debug, Default)]
pub struct SpillStats {
    runs_written: AtomicU64,
    bytes_spilled: AtomicU64,
    tuples_spilled: AtomicU64,
    merge_passes: AtomicU64,
    /// Deepest partitioning recursion any operator reached.
    max_recursion: AtomicU64,
    /// Set when an operator proceeded past a failed budget check
    /// (legacy materializing operators, or a spilling operator at its
    /// recursion limit).
    budget_exceeded: AtomicBool,
    ops: Mutex<Vec<SpillOpProfile>>,
}

/// Frozen job-level spill totals, attached to [`crate::stats::JobStats`].
#[derive(Debug, Default, Clone)]
pub struct SpillSummary {
    pub runs_written: u64,
    pub bytes_spilled: u64,
    pub tuples_spilled: u64,
    pub merge_passes: u64,
    pub max_recursion: u64,
    pub budget_exceeded: bool,
    /// The budget the job ran under (0 = unlimited).
    pub budget: usize,
}

impl SpillSummary {
    /// Did anything actually hit the disk?
    pub fn spilled(&self) -> bool {
        self.runs_written > 0
    }
}

/// Spill activity of one operator instance, reported into the job
/// profile at operator close (the spill analog of
/// [`crate::profile::SplitProfile`]).
#[derive(Debug, Clone)]
pub struct SpillOpProfile {
    pub stage: usize,
    pub partition: usize,
    pub op: &'static str,
    /// High-water mark of this operator's memory grant.
    pub peak_reserved: usize,
    pub runs_written: u64,
    pub bytes_spilled: u64,
    pub tuples_spilled: u64,
    pub merge_passes: u64,
    /// Deepest partitioning level this operator recursed to (0 = never
    /// spilled partitions).
    pub recursion_depth: u64,
}

/// Per-job spill state: configuration, counters, and the lazily-created
/// spill directory. One `Arc<SpillCtx>` is shared by every task of a run
/// through [`crate::context::TaskContext`]; dropping it removes the spill
/// directory, which covers clean success, errors mid-spill, and operators
/// dropped before `close`.
pub struct SpillCtx {
    mem: Arc<MemTracker>,
    config: SpillConfig,
    stats: SpillStats,
    dir: Mutex<Option<PathBuf>>,
    run_seq: AtomicU64,
}

/// Process-wide sequence so concurrent jobs in one process get distinct
/// spill directories.
static JOB_SEQ: AtomicU64 = AtomicU64::new(0);

impl SpillCtx {
    pub fn new(mem: Arc<MemTracker>, config: SpillConfig) -> Arc<Self> {
        Arc::new(SpillCtx {
            mem,
            config,
            stats: SpillStats::default(),
            dir: Mutex::new(None),
            run_seq: AtomicU64::new(0),
        })
    }

    /// Unlimited-memory context with default knobs (tests, standalone
    /// operator use). Never spills: the grant always succeeds.
    pub fn unlimited() -> Arc<Self> {
        SpillCtx::new(MemTracker::new(), SpillConfig::default())
    }

    pub fn config(&self) -> &SpillConfig {
        &self.config
    }

    pub fn memory(&self) -> &Arc<MemTracker> {
        &self.mem
    }

    /// A handle for one operator instance of one task.
    pub fn handle(
        self: &Arc<Self>,
        op: &'static str,
        stage: usize,
        partition: usize,
    ) -> SpillHandle {
        SpillHandle {
            ctx: self.clone(),
            op,
            stage,
            partition,
            runs_written: AtomicU64::new(0),
            bytes_spilled: AtomicU64::new(0),
            tuples_spilled: AtomicU64::new(0),
            merge_passes: AtomicU64::new(0),
            recursion_depth: AtomicU64::new(0),
        }
    }

    /// Job-level totals (budget read from the shared tracker).
    pub fn summary(&self) -> SpillSummary {
        SpillSummary {
            runs_written: self.stats.runs_written.load(Ordering::Relaxed),
            bytes_spilled: self.stats.bytes_spilled.load(Ordering::Relaxed),
            tuples_spilled: self.stats.tuples_spilled.load(Ordering::Relaxed),
            merge_passes: self.stats.merge_passes.load(Ordering::Relaxed),
            max_recursion: self.stats.max_recursion.load(Ordering::Relaxed),
            budget_exceeded: self.stats.budget_exceeded.load(Ordering::Relaxed),
            budget: self.mem.budget(),
        }
    }

    /// Per-operator spill profiles recorded so far, ordered by placement.
    pub fn op_profiles(&self) -> Vec<SpillOpProfile> {
        let mut ops = self
            .stats
            .ops
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        ops.sort_by_key(|o| (o.stage, o.partition, o.op));
        ops
    }

    /// The per-job spill directory, if any spill created it.
    pub fn dir_if_created(&self) -> Option<PathBuf> {
        self.dir.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Flag a tolerated budget violation (legacy materializing operators
    /// and recursion-capped spills call this through their grants).
    pub fn note_budget_exceeded(&self) {
        self.stats.budget_exceeded.store(true, Ordering::Relaxed);
    }

    fn run_path(&self) -> Result<PathBuf> {
        let mut dir = self.dir.lock().unwrap_or_else(|e| e.into_inner());
        if dir.is_none() {
            let root = self.config.dir.clone().unwrap_or_else(std::env::temp_dir);
            let name = format!(
                "vxq-spill-{}-{}",
                std::process::id(),
                JOB_SEQ.fetch_add(1, Ordering::Relaxed)
            );
            let d = root.join(name);
            std::fs::create_dir_all(&d)
                .map_err(|e| DataflowError::Spill(format!("create spill dir {d:?}: {e}")))?;
            *dir = Some(d);
        }
        let seq = self.run_seq.fetch_add(1, Ordering::Relaxed);
        Ok(dir
            .as_ref()
            .expect("just created")
            .join(format!("run-{seq}.bin")))
    }
}

impl Drop for SpillCtx {
    fn drop(&mut self) {
        // Recover a poisoned lock: a panicked task must not leave the
        // job's vxq-spill-* directory behind.
        let dir = self.dir.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(dir) = dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// One operator's interface to the spill subsystem: grants, run files,
/// and counters. Local counters are folded into the job profile by
/// [`SpillHandle::finish`].
pub struct SpillHandle {
    ctx: Arc<SpillCtx>,
    op: &'static str,
    stage: usize,
    partition: usize,
    runs_written: AtomicU64,
    bytes_spilled: AtomicU64,
    tuples_spilled: AtomicU64,
    merge_passes: AtomicU64,
    recursion_depth: AtomicU64,
}

impl SpillHandle {
    pub fn config(&self) -> &SpillConfig {
        self.ctx.config()
    }

    /// A fresh (empty) reservation against the job budget.
    pub fn grant(&self) -> MemGrant {
        MemGrant {
            ctx: self.ctx.clone(),
            reserved: 0,
            peak: 0,
        }
    }

    /// Open a new run file in the per-job spill directory.
    pub fn new_run(&self) -> Result<RunWriter> {
        let path = self.ctx.run_path()?;
        let file = File::create(&path)
            .map_err(|e| DataflowError::Spill(format!("create run file {path:?}: {e}")))?;
        self.runs_written.fetch_add(1, Ordering::Relaxed);
        self.ctx.stats.runs_written.fetch_add(1, Ordering::Relaxed);
        Ok(RunWriter {
            w: BufWriter::new(file),
            path,
            bytes: 0,
            tuples: 0,
        })
    }

    /// Account a finished run's volume (called with the writer's totals).
    pub fn note_spilled(&self, bytes: u64, tuples: u64) {
        self.bytes_spilled.fetch_add(bytes, Ordering::Relaxed);
        self.tuples_spilled.fetch_add(tuples, Ordering::Relaxed);
        self.ctx
            .stats
            .bytes_spilled
            .fetch_add(bytes, Ordering::Relaxed);
        self.ctx
            .stats
            .tuples_spilled
            .fetch_add(tuples, Ordering::Relaxed);
    }

    /// Count one k-way merge of sorted runs.
    pub fn note_merge_pass(&self) {
        self.merge_passes.fetch_add(1, Ordering::Relaxed);
        self.ctx.stats.merge_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record that this operator partitioned at `level` (1 = first spill,
    /// 2+ = recursive re-partitioning).
    pub fn note_recursion(&self, level: u64) {
        self.recursion_depth.fetch_max(level, Ordering::Relaxed);
        self.ctx
            .stats
            .max_recursion
            .fetch_max(level, Ordering::Relaxed);
    }

    /// Flag a tolerated budget violation.
    pub fn note_budget_exceeded(&self) {
        self.ctx.note_budget_exceeded();
    }

    /// Report this operator's spill profile into the job profile. Call
    /// once at operator close, before releasing the grant (so the peak is
    /// accurate — though the grant tracks its own high-water mark anyway).
    pub fn finish(&self, grant: &MemGrant) {
        self.ctx
            .stats
            .ops
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(SpillOpProfile {
                stage: self.stage,
                partition: self.partition,
                op: self.op,
                peak_reserved: grant.peak(),
                runs_written: self.runs_written.load(Ordering::Relaxed),
                bytes_spilled: self.bytes_spilled.load(Ordering::Relaxed),
                tuples_spilled: self.tuples_spilled.load(Ordering::Relaxed),
                merge_passes: self.merge_passes.load(Ordering::Relaxed),
                recursion_depth: self.recursion_depth.load(Ordering::Relaxed),
            });
    }
}

/// A per-operator memory reservation drawn from the job-wide tracker.
///
/// Unlike [`crate::stats::MemReservation`] (whose `grow` keeps the bytes
/// accounted on violation), a failed [`MemGrant::try_grow`] rolls the
/// attempt back — the tracker is left as it was, and the operator is
/// expected to spill and retry. The grant releases whatever it still
/// holds on drop.
pub struct MemGrant {
    ctx: Arc<SpillCtx>,
    reserved: usize,
    peak: usize,
}

impl MemGrant {
    /// Try to grow the reservation by `bytes`. `false` = the job budget
    /// would be exceeded (nothing stays accounted): spill now.
    pub fn try_grow(&mut self, bytes: usize) -> bool {
        if self.ctx.mem.alloc(bytes) {
            self.reserved += bytes;
            self.peak = self.peak.max(self.reserved);
            true
        } else {
            self.ctx.mem.free(bytes);
            false
        }
    }

    /// Grow unconditionally, flagging the job when this violates the
    /// budget (the legacy check-and-ignore path, now observable).
    pub fn grow_anyway(&mut self, bytes: usize) {
        if !self.ctx.mem.alloc(bytes) {
            self.ctx.note_budget_exceeded();
        }
        self.reserved += bytes;
        self.peak = self.peak.max(self.reserved);
    }

    /// Release the whole reservation (idempotent; drop also calls this).
    pub fn release_all(&mut self) {
        if self.reserved > 0 {
            self.ctx.mem.free(self.reserved);
            self.reserved = 0;
        }
    }

    /// Bytes currently reserved.
    pub fn reserved(&self) -> usize {
        self.reserved
    }

    /// High-water mark of this grant.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

impl Drop for MemGrant {
    fn drop(&mut self) {
        self.release_all();
    }
}

/// Buffered sequential writer of one run file. Records are
/// `[u32 le length][bytes]`; multi-part records are concatenated (the
/// caller owns any interior structure, e.g. the sort's key prefix).
pub struct RunWriter {
    w: BufWriter<File>,
    path: PathBuf,
    bytes: u64,
    tuples: u64,
}

impl RunWriter {
    /// Append one record assembled from `parts`.
    pub fn push(&mut self, parts: &[&[u8]]) -> Result<()> {
        let len: usize = parts.iter().map(|p| p.len()).sum();
        let len32 = u32::try_from(len)
            .map_err(|_| DataflowError::Spill(format!("spill record of {len} bytes")))?;
        self.w
            .write_all(&len32.to_le_bytes())
            .and_then(|()| parts.iter().try_for_each(|p| self.w.write_all(p)))
            .map_err(|e| DataflowError::Spill(format!("write run {:?}: {e}", self.path)))?;
        self.bytes += 4 + len as u64;
        self.tuples += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Flush and seal the run, returning a token to read it back.
    pub fn finish(mut self) -> Result<RunToken> {
        self.w
            .flush()
            .map_err(|e| DataflowError::Spill(format!("flush run {:?}: {e}", self.path)))?;
        Ok(RunToken {
            path: self.path,
            bytes: self.bytes,
            tuples: self.tuples,
        })
    }
}

/// A sealed run file, ready to be read (and deleted) by a [`RunReader`].
#[derive(Debug)]
pub struct RunToken {
    path: PathBuf,
    pub bytes: u64,
    pub tuples: u64,
}

/// Buffered sequential reader over a sealed run. Deletes the file on
/// drop: a run is consumed exactly once.
pub struct RunReader {
    r: BufReader<File>,
    path: PathBuf,
}

impl RunReader {
    pub fn open(token: RunToken) -> Result<Self> {
        let file = File::open(&token.path)
            .map_err(|e| DataflowError::Spill(format!("open run {:?}: {e}", token.path)))?;
        Ok(RunReader {
            r: BufReader::new(file),
            path: token.path,
        })
    }

    /// Read the next record into `buf` (replacing its contents). Returns
    /// `false` at end of run.
    pub fn next_into(&mut self, buf: &mut Vec<u8>) -> Result<bool> {
        let mut len_bytes = [0u8; 4];
        match self.r.read_exact(&mut len_bytes) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(false),
            Err(e) => {
                return Err(DataflowError::Spill(format!(
                    "read run {:?}: {e}",
                    self.path
                )))
            }
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        buf.clear();
        buf.resize(len, 0);
        self.r
            .read_exact(buf)
            .map_err(|e| DataflowError::Spill(format!("read run {:?}: {e}", self.path)))?;
        Ok(true)
    }
}

impl Drop for RunReader {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Level-seeded partitioning hash for spilled state.
///
/// Deliberately *not* [`crate::exchange::hash_bytes`]: tuples reaching a
/// spilling operator behind a hash exchange were already partitioned by
/// that FNV — reusing it would send every tuple of a task to one spill
/// partition. A different seed per recursion level plus a
/// splitmix64-style finalizer decorrelates both.
pub fn part_hash(key: &[u8], level: u64) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ level.wrapping_mul(0xff51_afd7_ed55_8ccd);
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_root(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vxq-spill-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn ctx_with_root(root: &std::path::Path, budget: usize) -> Arc<SpillCtx> {
        let mem = if budget > 0 {
            MemTracker::with_budget(budget)
        } else {
            MemTracker::new()
        };
        SpillCtx::new(
            mem,
            SpillConfig {
                dir: Some(root.to_path_buf()),
                ..SpillConfig::default()
            },
        )
    }

    #[test]
    fn grant_rolls_back_on_violation() {
        let root = scratch_root("grant");
        let ctx = ctx_with_root(&root, 100);
        let h = ctx.handle("TEST", 0, 0);
        let mut g = h.grant();
        assert!(g.try_grow(60));
        assert!(!g.try_grow(60), "over budget");
        assert_eq!(ctx.memory().current(), 60, "failed grow left no residue");
        assert!(g.try_grow(30));
        assert_eq!(g.reserved(), 90);
        assert_eq!(g.peak(), 90);
        g.release_all();
        assert_eq!(ctx.memory().current(), 0);
        assert!(!ctx.summary().budget_exceeded);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn grow_anyway_flags_the_job() {
        let root = scratch_root("anyway");
        let ctx = ctx_with_root(&root, 10);
        let h = ctx.handle("TEST", 0, 0);
        let mut g = h.grant();
        g.grow_anyway(50);
        assert_eq!(g.reserved(), 50);
        assert!(ctx.summary().budget_exceeded);
        drop(g);
        assert_eq!(ctx.memory().current(), 0, "drop releases");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn run_round_trip_preserves_records() {
        let root = scratch_root("roundtrip");
        let ctx = ctx_with_root(&root, 0);
        let h = ctx.handle("TEST", 0, 0);
        let mut w = h.new_run().unwrap();
        w.push(&[b"hello"]).unwrap();
        w.push(&[b"", b"wor", b"ld"]).unwrap();
        w.push(&[b""]).unwrap();
        let token = w.finish().unwrap();
        assert_eq!(token.tuples, 3);
        let mut r = RunReader::open(token).unwrap();
        let mut buf = Vec::new();
        assert!(r.next_into(&mut buf).unwrap());
        assert_eq!(buf, b"hello");
        assert!(r.next_into(&mut buf).unwrap());
        assert_eq!(buf, b"world");
        assert!(r.next_into(&mut buf).unwrap());
        assert!(buf.is_empty());
        assert!(!r.next_into(&mut buf).unwrap());
        drop(r);
        let dir = ctx.dir_if_created().unwrap();
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "reader deletes its run"
        );
        drop(h); // the handle keeps the ctx alive
        drop(ctx);
        assert!(!dir.exists(), "job dir removed on ctx drop");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn ctx_drop_cleans_up_unread_runs() {
        // An operator dropped early (error elsewhere in the job) leaves
        // sealed and half-written runs behind; the job ctx must still
        // remove the directory.
        let root = scratch_root("early-drop");
        let ctx = ctx_with_root(&root, 0);
        let h = ctx.handle("TEST", 0, 0);
        let mut w1 = h.new_run().unwrap();
        w1.push(&[b"sealed"]).unwrap();
        let _token = w1.finish().unwrap();
        let mut w2 = h.new_run().unwrap();
        w2.push(&[b"abandoned"]).unwrap();
        let dir = ctx.dir_if_created().unwrap();
        assert!(dir.exists());
        drop(w2); // never finished
        drop(h); // the handle keeps the ctx alive
        drop(ctx);
        assert!(!dir.exists(), "spill dir removed with runs still inside");
        assert_eq!(
            std::fs::read_dir(&root).unwrap().count(),
            0,
            "no stray job dirs under the root"
        );
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn stats_fold_runs_and_counters() {
        let root = scratch_root("stats");
        let ctx = ctx_with_root(&root, 0);
        let h = ctx.handle("SORT", 1, 2);
        let mut w = h.new_run().unwrap();
        w.push(&[b"abc"]).unwrap();
        w.push(&[b"de"]).unwrap();
        let t = w.finish().unwrap();
        h.note_spilled(t.bytes, t.tuples);
        h.note_merge_pass();
        h.note_recursion(3);
        let g = h.grant();
        h.finish(&g);
        let s = ctx.summary();
        assert_eq!(s.runs_written, 1);
        assert_eq!(s.tuples_spilled, 2);
        assert_eq!(s.bytes_spilled, (4 + 3) + (4 + 2));
        assert_eq!(s.merge_passes, 1);
        assert_eq!(s.max_recursion, 3);
        let ops = ctx.op_profiles();
        assert_eq!(ops.len(), 1);
        assert_eq!((ops[0].stage, ops[0].partition, ops[0].op), (1, 2, "SORT"));
        assert_eq!(ops[0].tuples_spilled, 2);
        drop(ctx);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn part_hash_differs_by_level_and_from_exchange_hash() {
        let keys: Vec<Vec<u8>> = (0..64u8).map(|i| vec![i, i ^ 0x5a, 7]).collect();
        let mut same_bucket = 0;
        for k in &keys {
            assert_ne!(part_hash(k, 1), part_hash(k, 2), "levels must differ");
            if part_hash(k, 1) % 8 == crate::exchange::hash_bytes(&[k]) % 8 {
                same_bucket += 1;
            }
        }
        // Uncorrelated hashes collide on ~1/8 of keys; the old failure
        // mode was 100% correlation (every tuple in one spill partition).
        assert!(
            same_bucket < keys.len() / 2,
            "spill hash correlates with exchange hash: {same_bucket}/64"
        );
    }

    #[test]
    fn no_dir_created_until_first_run() {
        let root = scratch_root("lazy");
        let ctx = ctx_with_root(&root, 0);
        assert!(ctx.dir_if_created().is_none());
        assert_eq!(std::fs::read_dir(&root).unwrap().count(), 0);
        drop(ctx);
        let _ = std::fs::remove_dir_all(root);
    }
}
