//! The simulated cluster: nodes × partitions, worker threads, exchanges.
//!
//! **Substitution note (DESIGN.md §3):** the paper runs Hyracks on a real
//! 9-node cluster. Here a "node" is a group of `partitions_per_node` worker
//! threads sharing a CPU core gate; exchanges between partitions of
//! different nodes are counted as network traffic. The operator, exchange,
//! and scheduling code paths are identical to the multi-machine case — the
//! only thing the simulation removes is the physical wire.

use crate::cancel::{CancelProbe, CancelToken};
use crate::channel::{bounded, Receiver, Sender};
use crate::context::{CoreGate, TaskContext};
use crate::error::{DataflowError, Result};
use crate::exchange::{HashPartitionSender, MergeSender, OneToOneSender};
use crate::frame::{Frame, DEFAULT_FRAME_SIZE};
use crate::job::{Connector, JobSpec, Parallelism, StageId, StageKind};
use crate::ops::{run_source, BoxWriter, CollectorWriter};
use crate::profile::Profiler;
use crate::spill::{SpillConfig, SpillCtx};
use crate::stats::{Counters, JobStats, MemTracker};
use crate::trace::TraceBuffer;
use jdm::binary::ItemRef;
use jdm::Item;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Cluster shape.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of (simulated) nodes.
    pub nodes: usize,
    /// Worker partitions per node (the paper uses 4).
    pub partitions_per_node: usize,
    /// CPU cores per node; `0` means one core per partition. Setting this
    /// below `partitions_per_node` reproduces hyper-threaded
    /// oversubscription (Fig. 17): the timing model divides each node's
    /// total task work by `min(cores, partitions)` when computing the
    /// simulated makespan (see `crate::cputime`). Worker threads are never
    /// blocked on core tokens at runtime — holding a token across a
    /// channel send can deadlock against consumers needing tokens to
    /// drain, so the limit is applied analytically instead.
    pub cores_per_node: usize,
    /// Frame capacity in bytes.
    pub frame_size: usize,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            nodes: 1,
            partitions_per_node: 1,
            cores_per_node: 0,
            frame_size: DEFAULT_FRAME_SIZE,
        }
    }
}

impl ClusterSpec {
    /// Single-node spec with `p` partitions.
    pub fn single_node(p: usize) -> Self {
        ClusterSpec {
            nodes: 1,
            partitions_per_node: p,
            ..Default::default()
        }
    }

    /// Total partitions.
    pub fn total_partitions(&self) -> usize {
        self.nodes * self.partitions_per_node
    }
}

/// An instantiated cluster, reusable across jobs.
pub struct Cluster {
    spec: ClusterSpec,
    mem: Arc<MemTracker>,
    gates: Vec<CoreGate>,
    spill: SpillConfig,
}

/// Decoded query result: one row per result tuple.
pub type Rows = Vec<Vec<Item>>;

/// Per-run overrides for [`Cluster::run_with`]. The default reproduces
/// [`Cluster::run_observed`]: the cluster's shared tracker (reset at run
/// start) and a token that never fires.
pub struct RunOptions {
    /// Tracker charged for this job's materialized state. `None` uses the
    /// cluster's shared tracker and resets it first — correct for one job
    /// at a time. Concurrent jobs must each bring their own tracker (the
    /// serving layer hands out per-job trackers carrying fair-share
    /// budgets), because a shared reset mid-flight would corrupt another
    /// job's accounting.
    pub mem: Option<Arc<MemTracker>>,
    /// Cancellation token checked at frame boundaries by every task.
    pub cancel: Arc<CancelToken>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            mem: None,
            cancel: CancelToken::new(),
        }
    }
}

impl Cluster {
    pub fn new(spec: ClusterSpec) -> Self {
        Self::with_memory(spec, MemTracker::new())
    }

    /// Use an externally-owned tracker (lets baselines impose budgets).
    pub fn with_memory(spec: ClusterSpec, mem: Arc<MemTracker>) -> Self {
        Self::with_settings(spec, mem, SpillConfig::default())
    }

    /// Full constructor: tracker plus spill tuning (run-file directory,
    /// merge fan-in, partition fan-out).
    pub fn with_settings(spec: ClusterSpec, mem: Arc<MemTracker>, spill: SpillConfig) -> Self {
        let gates = (0..spec.nodes)
            .map(|_| {
                if spec.cores_per_node == 0 {
                    CoreGate::unlimited()
                } else {
                    CoreGate::with_cores(spec.cores_per_node)
                }
            })
            .collect();
        Cluster {
            spec,
            mem,
            gates,
            spill,
        }
    }

    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    pub fn memory(&self) -> &Arc<MemTracker> {
        &self.mem
    }

    fn stage_partitions(&self, job: &JobSpec, id: StageId) -> usize {
        match job.stages[id].parallelism {
            Parallelism::Full => self.spec.total_partitions(),
            Parallelism::One => 1,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn make_ctx(
        &self,
        stage: StageId,
        partition: usize,
        num_partitions: usize,
        mem: &Arc<MemTracker>,
        counters: &Arc<Counters>,
        profiler: &Arc<Profiler>,
        spill: &Arc<SpillCtx>,
        cancel: &Arc<CancelToken>,
    ) -> TaskContext {
        let node = partition
            .checked_div(self.spec.partitions_per_node)
            .unwrap_or(0)
            .min(self.spec.nodes - 1);
        TaskContext {
            stage,
            partition,
            num_partitions,
            node,
            partitions_per_node: self.spec.partitions_per_node,
            frame_size: self.spec.frame_size,
            mem: mem.clone(),
            counters: counters.clone(),
            gate: self.gates[node].clone(),
            profiler: Some(profiler.clone()),
            spill: spill.clone(),
            cancel: cancel.clone(),
        }
    }

    /// Execute `job` and return the decoded result rows plus statistics.
    pub fn run(&self, job: &JobSpec) -> Result<(Rows, JobStats)> {
        self.run_observed(job, None)
    }

    /// Execute `job`, optionally recording per-stage execution spans into
    /// a trace buffer. Per-operator profiling is always on (frame-granular
    /// atomics; see [`crate::profile`]) and lands in
    /// [`JobStats::profile`].
    pub fn run_observed(
        &self,
        job: &JobSpec,
        trace: Option<&Arc<TraceBuffer>>,
    ) -> Result<(Rows, JobStats)> {
        self.run_with(job, trace, RunOptions::default())
    }

    /// [`Cluster::run_observed`] with per-run overrides: a job-private
    /// memory tracker (required for concurrent jobs on one cluster) and a
    /// cancellation token. A fired token takes precedence over the
    /// secondary errors cancellation causes (severed channels), so the
    /// caller always sees [`DataflowError::Cancelled`] — including when
    /// the deadline passes only after the last frame, since a result the
    /// client declared dead must not be reported as a success.
    pub fn run_with(
        &self,
        job: &JobSpec,
        trace: Option<&Arc<TraceBuffer>>,
        opts: RunOptions,
    ) -> Result<(Rows, JobStats)> {
        job.validate()?;
        let terminal = job.terminal()?;
        let counters = Counters::new();
        let profiler = Profiler::new();
        let cancel = opts.cancel;
        let mem = match opts.mem {
            Some(m) => m,
            None => {
                // Single-job mode: the shared tracker describes this run
                // alone, so start it from zero.
                self.mem.reset();
                self.mem.clone()
            }
        };
        // Per-job spill state; dropping it at the end of this function —
        // on success *or* error — removes the job's spill directory.
        let spill_ctx = SpillCtx::new(mem.clone(), self.spill.clone());

        // Each stage has at most one consumer edge in our plans; find it.
        // consumer[s] = (consumer stage, edge index within that stage).
        let nstages = job.stages.len();
        let mut consumer: Vec<Option<(StageId, usize)>> = vec![None; nstages];
        for id in 0..nstages {
            for (edge_idx, input) in job.inputs(id).into_iter().enumerate() {
                if consumer[input.from].is_some() {
                    return Err(DataflowError::BadJob(format!(
                        "stage {} has multiple consumers",
                        input.from
                    )));
                }
                consumer[input.from] = Some((id, edge_idx));
            }
        }

        // Create channels per (consumer stage, edge, destination partition).
        // txs[(stage, edge)][dst], rxs[(stage, edge)][dst]
        let mut txs: Vec<Vec<Vec<Sender<Frame>>>> = Vec::with_capacity(nstages);
        let mut rxs: Vec<Vec<Vec<Option<Receiver<Frame>>>>> = Vec::with_capacity(nstages);
        for id in 0..nstages {
            let nedges = job.inputs(id).len();
            let dparts = self.stage_partitions(job, id);
            let mut stage_txs = Vec::with_capacity(nedges);
            let mut stage_rxs = Vec::with_capacity(nedges);
            for _ in 0..nedges {
                let mut etx = Vec::with_capacity(dparts);
                let mut erx = Vec::with_capacity(dparts);
                for _ in 0..dparts {
                    let (tx, rx) = bounded::<Frame>(64);
                    etx.push(tx);
                    erx.push(Some(rx));
                }
                stage_txs.push(etx);
                stage_rxs.push(erx);
            }
            txs.push(stage_txs);
            rxs.push(stage_rxs);
        }

        let (result_tx, result_rx) = bounded::<Frame>(64);
        let first_error: Arc<Mutex<Option<DataflowError>>> = Arc::new(Mutex::new(None));
        let started = Instant::now();

        std::thread::scope(|scope| {
            for id in 0..nstages {
                let parts = self.stage_partitions(job, id);
                for p in 0..parts {
                    let ctx = self.make_ctx(
                        id, p, parts, &mem, &counters, &profiler, &spill_ctx, &cancel,
                    );
                    // Output writer: collector for the terminal stage,
                    // connector sender otherwise.
                    let out: BoxWriter = if id == terminal {
                        Box::new(CollectorWriter::new(result_tx.clone()))
                    } else {
                        let (cons_stage, edge_idx) =
                            consumer[id].expect("non-terminal stage has a consumer");
                        let edge_txs = &txs[cons_stage][edge_idx];
                        let conn = &job.inputs(cons_stage)[edge_idx].connector;
                        match conn {
                            Connector::OneToOne => {
                                Box::new(OneToOneSender::new(ctx.clone(), edge_txs[p].clone()))
                            }
                            Connector::Hash { key_fields } => Box::new(HashPartitionSender::new(
                                ctx.clone(),
                                key_fields.clone(),
                                edge_txs.clone(),
                            )),
                            Connector::MergeToOne => {
                                Box::new(MergeSender::new(ctx.clone(), edge_txs[0].clone()))
                            }
                        }
                    };
                    // Probe the chain tail (sender / collector) first;
                    // chain factories wrap their own operators on top, so
                    // registration order is tail-first within a task.
                    let out = ctx.instrument(out);

                    // Input receivers for this partition.
                    let my_rxs: Vec<Receiver<Frame>> = rxs[id]
                        .iter_mut()
                        .map(|edge| edge[p].take().expect("receiver taken once"))
                        .collect();

                    let stage = &job.stages[id];
                    let err_slot = first_error.clone();
                    let task_trace = trace.cloned();
                    scope.spawn(move || {
                        let span_start = task_trace.as_ref().map(|t| t.now_us());
                        let timer = crate::cputime::TaskTimer::start();
                        let r = run_task(stage, &ctx, my_rxs, out);
                        let cpu = timer.elapsed();
                        if let (Some(t), Some(start)) = (&task_trace, span_start) {
                            t.span_from(
                                format!("stage {id}"),
                                "execute",
                                start,
                                ctx.node as u32,
                                ctx.partition as u32,
                                vec![
                                    ("stage", crate::trace::ArgValue::Int(id as i64)),
                                    (
                                        "cpu_us",
                                        crate::trace::ArgValue::Int(cpu.as_micros() as i64),
                                    ),
                                ],
                            );
                        }
                        ctx.counters
                            .task_cpu
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push((ctx.node, cpu));
                        if let Err(e) = r {
                            let mut slot = err_slot.lock().unwrap_or_else(|e| e.into_inner());
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                        }
                    });
                }
            }

            // The coordinator's own copies of every sender must go away,
            // or receivers would never observe end-of-stream: workers only
            // hold clones.
            drop(txs);
            drop(result_tx);

            // Drain results on the coordinator thread. On cancellation,
            // stop consuming and drop the receiver: the cascade of severed
            // channels unblocks any worker waiting on a full exchange, so
            // even fully backpressured jobs unwind promptly.
            let result_rx = result_rx; // moved in so it can be dropped below
            let mut rows: Rows = Vec::new();
            let mut decode_err: Option<DataflowError> = None;
            for frame in result_rx.iter() {
                if cancel.fired().is_some() {
                    break;
                }
                for t in frame.tuples() {
                    let mut row = Vec::with_capacity(t.field_count());
                    let mut ok = true;
                    for f in t.fields() {
                        match ItemRef::new(f).and_then(|r| r.to_item()) {
                            Ok(item) => row.push(item),
                            Err(e) => {
                                decode_err.get_or_insert(e.into());
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        rows.push(row);
                    }
                }
            }
            drop(result_rx);
            if let Some(e) = decode_err {
                let mut slot = first_error.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(e);
                }
            }
            Ok::<Rows, DataflowError>(rows)
        })
        .and_then(|rows| {
            // A fired token is the authoritative outcome: the first error
            // recorded by a task is usually a symptom (severed exchange,
            // dropped collector) of the unwind the token started.
            if let Some(reason) = cancel.fired() {
                return Err(DataflowError::Cancelled(reason));
            }
            if let Some(e) = first_error.lock().unwrap_or_else(|e| e.into_inner()).take() {
                return Err(e);
            }
            // Simulated cluster time: per-node makespans from task CPU
            // times (see crate::cputime for the model).
            let task_cpu = counters.task_cpu.lock().unwrap_or_else(|e| e.into_inner());
            let mut per_node: Vec<Vec<std::time::Duration>> = vec![Vec::new(); self.spec.nodes];
            let mut cpu_total = std::time::Duration::ZERO;
            for (node, d) in task_cpu.iter() {
                per_node[(*node).min(self.spec.nodes - 1)].push(*d);
                cpu_total += *d;
            }
            let cores = if self.spec.cores_per_node == 0 {
                self.spec.partitions_per_node.max(1)
            } else {
                self.spec
                    .cores_per_node
                    .min(self.spec.partitions_per_node.max(1))
            };
            let simulated = per_node
                .iter()
                .map(|tasks| crate::cputime::makespan(tasks, cores))
                .max()
                .unwrap_or_default();
            drop(task_cpu);
            let mut profile = profiler.finish();
            profile.spill_ops = spill_ctx.op_profiles();
            let stats = JobStats {
                elapsed: simulated.max(std::time::Duration::from_micros(1)),
                wall_elapsed: started.elapsed(),
                cpu_total,
                peak_memory: mem.peak(),
                peak_cached: mem.cached_peak(),
                network_bytes: counters.network_bytes.load(Ordering::Relaxed) as usize,
                frames_shipped: counters.frames_shipped.load(Ordering::Relaxed) as usize,
                result_tuples: rows.len(),
                bytes_scanned: counters.bytes_scanned.load(Ordering::Relaxed) as usize,
                spill: spill_ctx.summary(),
                profile,
            };
            Ok((rows, stats))
        })
    }
}

/// Body of one worker task.
fn run_task(
    stage: &crate::job::Stage,
    ctx: &TaskContext,
    mut inputs: Vec<Receiver<Frame>>,
    out: BoxWriter,
) -> Result<()> {
    match &stage.kind {
        StageKind::Source { scan, chain } => {
            // Sources push in a tight loop with no receive side; the probe
            // at the chain head gives them the same per-frame cancellation
            // check the receive loops below perform.
            let chain = chain.create(ctx, out)?;
            let chain: BoxWriter = Box::new(CancelProbe::new(ctx.cancel.clone(), chain));
            let mut source = scan.create(ctx)?;
            run_source(source.as_mut(), ctx.frame_size, chain)
        }
        StageKind::Pipe { chain, .. } => {
            let mut head = chain.create(ctx, out)?;
            let rx = inputs.pop().expect("pipe stage has one input");
            head.open()?;
            for frame in rx.iter() {
                ctx.check_cancelled()?;
                head.next_frame(&frame)?;
            }
            ctx.check_cancelled()?;
            head.close()
        }
        StageKind::Join { factory, .. } => {
            let mut op = factory.create(ctx, out)?;
            if let Some(p) = &ctx.profiler {
                op = p.instrument_two_input(ctx.stage, ctx.partition, op);
            }
            let probe_rx = inputs.pop().expect("join stage probe input");
            let build_rx = inputs.pop().expect("join stage build input");
            op.open()?;
            for frame in build_rx.iter() {
                ctx.check_cancelled()?;
                op.build_frame(&frame)?;
            }
            op.build_done()?;
            for frame in probe_rx.iter() {
                ctx.check_cancelled()?;
                op.probe_frame(&frame)?;
            }
            ctx.check_cancelled()?;
            op.close()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::TupleRef;
    use crate::job::{IdentityPipe, PipeFactory, Stage, StageInput, TwoInputFactory, TwoInputOp};
    use crate::ops::eval::{
        Aggregator, AggregatorFactory, ScanSource, ScanSourceFactory, TupleEmitter,
    };
    use crate::ops::{AggregateOp, HashGroupByOp, HashJoinOp};
    use jdm::binary::{to_bytes, write_item};

    /// Source: each partition emits (key = i % 10, value = i) for its slice
    /// of 0..n.
    struct ModSource {
        n: usize,
    }
    impl ScanSourceFactory for ModSource {
        fn create(&self, ctx: &TaskContext) -> Result<Box<dyn ScanSource>> {
            Ok(Box::new(ModScan {
                n: self.n,
                part: ctx.partition,
                parts: ctx.num_partitions,
            }))
        }
    }
    struct ModScan {
        n: usize,
        part: usize,
        parts: usize,
    }
    impl ScanSource for ModScan {
        fn run(&mut self, emit: &mut TupleEmitter<'_>) -> Result<()> {
            for i in 0..self.n {
                if i % self.parts != self.part {
                    continue;
                }
                let k = to_bytes(&Item::int((i % 10) as i64));
                let v = to_bytes(&Item::int(i as i64));
                emit(&[&k, &v])?;
            }
            Ok(())
        }
    }

    struct CountAgg(i64);
    impl Aggregator for CountAgg {
        fn step(&mut self, _t: &TupleRef<'_>) -> Result<()> {
            self.0 += 1;
            Ok(())
        }
        fn finish(&mut self, out: &mut Vec<u8>) -> Result<()> {
            write_item(&Item::int(self.0), out);
            Ok(())
        }
    }
    struct CountFactory;
    impl AggregatorFactory for CountFactory {
        fn create(&self) -> Box<dyn Aggregator> {
            Box::new(CountAgg(0))
        }
    }

    /// Chain factory: hash group-by on field 0 with count.
    struct GroupByChain;
    impl PipeFactory for GroupByChain {
        fn create(&self, ctx: &TaskContext, out: BoxWriter) -> Result<BoxWriter> {
            Ok(Box::new(HashGroupByOp::new(
                vec![0],
                Arc::new(CountFactory),
                ctx.spill_handle("HASH-GROUP-BY"),
                ctx.frame_size,
                out,
            )))
        }
    }

    /// Chain: global count.
    struct GlobalCount;
    impl PipeFactory for GlobalCount {
        fn create(&self, ctx: &TaskContext, out: BoxWriter) -> Result<BoxWriter> {
            Ok(Box::new(AggregateOp::new(
                Box::new(CountAgg(0)),
                ctx.frame_size,
                out,
            )))
        }
    }

    fn scan_stage(n: usize) -> Stage {
        Stage {
            kind: StageKind::Source {
                scan: Arc::new(ModSource { n }),
                chain: Arc::new(IdentityPipe),
            },
            parallelism: Parallelism::Full,
        }
    }

    #[test]
    fn scan_merge_collect() {
        let cluster = Cluster::new(ClusterSpec::single_node(4));
        let mut job = JobSpec::new();
        let s = job.add(scan_stage(100));
        job.add(Stage {
            kind: StageKind::Pipe {
                input: StageInput {
                    from: s,
                    connector: Connector::MergeToOne,
                },
                chain: Arc::new(IdentityPipe),
            },
            parallelism: Parallelism::One,
        });
        let (rows, stats) = cluster.run(&job).unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(stats.result_tuples, 100);
        let mut vals: Vec<i64> = rows
            .iter()
            .map(|r| r[1].as_number().unwrap().as_i64().unwrap())
            .collect();
        vals.sort();
        assert_eq!(vals, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn hash_partitioned_group_by_across_nodes() {
        let cluster = Cluster::new(ClusterSpec {
            nodes: 3,
            partitions_per_node: 2,
            ..Default::default()
        });
        let mut job = JobSpec::new();
        let s = job.add(scan_stage(1000));
        let g = job.add(Stage {
            kind: StageKind::Pipe {
                input: StageInput {
                    from: s,
                    connector: Connector::Hash {
                        key_fields: vec![0],
                    },
                },
                chain: Arc::new(GroupByChain),
            },
            parallelism: Parallelism::Full,
        });
        job.add(Stage {
            kind: StageKind::Pipe {
                input: StageInput {
                    from: g,
                    connector: Connector::MergeToOne,
                },
                chain: Arc::new(IdentityPipe),
            },
            parallelism: Parallelism::One,
        });
        let (mut rows, stats) = cluster.run(&job).unwrap();
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(rows.len(), 10);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], Item::int(i as i64));
            assert_eq!(row[1], Item::int(100));
        }
        assert!(stats.network_bytes > 0, "cross-node traffic expected");
    }

    #[test]
    fn same_results_for_any_partitioning() {
        let run = |nodes, ppn| {
            let cluster = Cluster::new(ClusterSpec {
                nodes,
                partitions_per_node: ppn,
                ..Default::default()
            });
            let mut job = JobSpec::new();
            let s = job.add(scan_stage(500));
            let g = job.add(Stage {
                kind: StageKind::Pipe {
                    input: StageInput {
                        from: s,
                        connector: Connector::Hash {
                            key_fields: vec![0],
                        },
                    },
                    chain: Arc::new(GroupByChain),
                },
                parallelism: Parallelism::Full,
            });
            job.add(Stage {
                kind: StageKind::Pipe {
                    input: StageInput {
                        from: g,
                        connector: Connector::MergeToOne,
                    },
                    chain: Arc::new(IdentityPipe),
                },
                parallelism: Parallelism::One,
            });
            let (mut rows, _) = cluster.run(&job).unwrap();
            rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
            rows
        };
        let base = run(1, 1);
        assert_eq!(run(1, 4), base);
        assert_eq!(run(2, 3), base);
        assert_eq!(run(5, 2), base);
    }

    #[test]
    fn global_aggregate_via_merge() {
        let cluster = Cluster::new(ClusterSpec::single_node(8));
        let mut job = JobSpec::new();
        let s = job.add(scan_stage(777));
        job.add(Stage {
            kind: StageKind::Pipe {
                input: StageInput {
                    from: s,
                    connector: Connector::MergeToOne,
                },
                chain: Arc::new(GlobalCount),
            },
            parallelism: Parallelism::One,
        });
        let (rows, _) = cluster.run(&job).unwrap();
        assert_eq!(rows, vec![vec![Item::int(777)]]);
    }

    struct JoinChain;
    impl TwoInputFactory for JoinChain {
        fn create(&self, ctx: &TaskContext, out: BoxWriter) -> Result<Box<dyn TwoInputOp>> {
            Ok(Box::new(HashJoinOp::new(
                vec![0],
                vec![0],
                ctx.spill_handle("HASH-JOIN"),
                ctx.frame_size,
                out,
            )))
        }
    }

    #[test]
    fn partitioned_hash_join() {
        let cluster = Cluster::new(ClusterSpec {
            nodes: 2,
            partitions_per_node: 2,
            ..Default::default()
        });
        let mut job = JobSpec::new();
        let build = job.add(scan_stage(50));
        let probe = job.add(scan_stage(50));
        let j = job.add(Stage {
            kind: StageKind::Join {
                build: StageInput {
                    from: build,
                    connector: Connector::Hash {
                        key_fields: vec![0],
                    },
                },
                probe: StageInput {
                    from: probe,
                    connector: Connector::Hash {
                        key_fields: vec![0],
                    },
                },
                factory: Arc::new(JoinChain),
            },
            parallelism: Parallelism::Full,
        });
        job.add(Stage {
            kind: StageKind::Pipe {
                input: StageInput {
                    from: j,
                    connector: Connector::MergeToOne,
                },
                chain: Arc::new(IdentityPipe),
            },
            parallelism: Parallelism::One,
        });
        let (rows, _) = cluster.run(&job).unwrap();
        // Each of 50 probe tuples matches the 5 build tuples sharing its
        // key (keys are i % 10 over 0..50 → 5 per key): 250 results.
        assert_eq!(rows.len(), 250);
        for row in &rows {
            assert_eq!(row[0], row[2], "join keys must match");
        }
    }

    #[test]
    fn core_gate_limits_do_not_change_results() {
        let cluster = Cluster::new(ClusterSpec {
            nodes: 1,
            partitions_per_node: 8,
            cores_per_node: 2,
            ..Default::default()
        });
        let mut job = JobSpec::new();
        let s = job.add(scan_stage(200));
        job.add(Stage {
            kind: StageKind::Pipe {
                input: StageInput {
                    from: s,
                    connector: Connector::MergeToOne,
                },
                chain: Arc::new(GlobalCount),
            },
            parallelism: Parallelism::One,
        });
        let (rows, _) = cluster.run(&job).unwrap();
        assert_eq!(rows, vec![vec![Item::int(200)]]);
    }
}
