//! Job specifications: a DAG of stages connected by exchanges.
//!
//! A *stage* is a fused chain of operators executed once per partition.
//! Stage boundaries exist exactly where the physical plan inserts an
//! exchange (or where a second input joins in). The language layer builds
//! a [`JobSpec`] from its physical plan; [`crate::cluster::Cluster::run`]
//! executes it.

use crate::context::TaskContext;
use crate::error::{DataflowError, Result};
use crate::frame::Frame;
use crate::ops::eval::ScanSourceFactory;
use crate::ops::BoxWriter;
use std::sync::Arc;

/// Index into [`JobSpec::stages`].
pub type StageId = usize;

/// How many tasks a stage runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// One task per cluster partition.
    Full,
    /// A single task (global aggregation, final merge).
    One,
}

/// How a stage's input frames are routed from its producer.
#[derive(Debug, Clone)]
pub enum Connector {
    /// Same-partition forwarding; producer and consumer have equal
    /// parallelism.
    OneToOne,
    /// Repartition by hash of these tuple fields.
    Hash { key_fields: Vec<usize> },
    /// All producer partitions feed the consumer's single partition.
    MergeToOne,
}

/// One input edge of a stage.
#[derive(Clone)]
pub struct StageInput {
    pub from: StageId,
    pub connector: Connector,
}

/// Builds the fused operator chain of a stage for one partition. `out` is
/// the runtime-provided tail (exchange sender or result collector); the
/// factory returns the head the runtime pushes frames into.
pub trait PipeFactory: Send + Sync {
    fn create(&self, ctx: &TaskContext, out: BoxWriter) -> Result<BoxWriter>;
}

/// An identity chain (stage is just routing).
pub struct IdentityPipe;

impl PipeFactory for IdentityPipe {
    fn create(&self, _ctx: &TaskContext, out: BoxWriter) -> Result<BoxWriter> {
        Ok(out)
    }
}

/// A two-input operator (hash join): consumes the whole build input, then
/// streams the probe input.
pub trait TwoInputOp: Send {
    fn open(&mut self) -> Result<()>;
    fn build_frame(&mut self, frame: &Frame) -> Result<()>;
    /// Called after the last build frame, before the first probe frame.
    fn build_done(&mut self) -> Result<()> {
        Ok(())
    }
    fn probe_frame(&mut self, frame: &Frame) -> Result<()>;
    fn close(&mut self) -> Result<()>;
    /// Operator name shown in profiles and EXPLAIN ANALYZE output.
    fn name(&self) -> &'static str {
        "JOIN"
    }
}

/// Builds the two-input operator of a join stage.
pub trait TwoInputFactory: Send + Sync {
    fn create(&self, ctx: &TaskContext, out: BoxWriter) -> Result<Box<dyn TwoInputOp>>;
}

/// What a stage does.
pub enum StageKind {
    /// A self-driving scan (EMPTY-TUPLE-SOURCE + DATASCAN) feeding a fused
    /// operator chain.
    Source {
        scan: Arc<dyn ScanSourceFactory>,
        chain: Arc<dyn PipeFactory>,
    },
    /// A chain fed by one upstream edge.
    Pipe {
        input: StageInput,
        chain: Arc<dyn PipeFactory>,
    },
    /// A two-input operator fed by a build edge and a probe edge.
    Join {
        build: StageInput,
        probe: StageInput,
        factory: Arc<dyn TwoInputFactory>,
    },
}

/// One stage of the job.
pub struct Stage {
    pub kind: StageKind,
    pub parallelism: Parallelism,
}

/// A complete job: stages indexed by [`StageId`]; the unique stage that no
/// other stage consumes is the terminal stage, whose output frames become
/// the query result.
#[derive(Default)]
pub struct JobSpec {
    pub stages: Vec<Stage>,
}

impl JobSpec {
    pub fn new() -> Self {
        JobSpec::default()
    }

    /// Append a stage, returning its id.
    pub fn add(&mut self, stage: Stage) -> StageId {
        self.stages.push(stage);
        self.stages.len() - 1
    }

    /// Inputs of a stage (0, 1 or 2 edges).
    pub fn inputs(&self, id: StageId) -> Vec<&StageInput> {
        match &self.stages[id].kind {
            StageKind::Source { .. } => vec![],
            StageKind::Pipe { input, .. } => vec![input],
            StageKind::Join { build, probe, .. } => vec![build, probe],
        }
    }

    /// The terminal stage (validated: exactly one).
    pub fn terminal(&self) -> Result<StageId> {
        let mut consumed = vec![false; self.stages.len()];
        for id in 0..self.stages.len() {
            for input in self.inputs(id) {
                if input.from >= self.stages.len() {
                    return Err(DataflowError::BadJob(format!(
                        "stage {id} reads from unknown stage {}",
                        input.from
                    )));
                }
                consumed[input.from] = true;
            }
        }
        let terminals: Vec<StageId> = (0..self.stages.len()).filter(|&i| !consumed[i]).collect();
        match terminals.as_slice() {
            [t] => Ok(*t),
            [] => Err(DataflowError::BadJob(
                "job has a cycle (no terminal stage)".into(),
            )),
            many => Err(DataflowError::BadJob(format!(
                "multiple terminal stages: {many:?}"
            ))),
        }
    }

    /// Validate connector / parallelism compatibility.
    pub fn validate(&self) -> Result<()> {
        let _ = self.terminal()?;
        for id in 0..self.stages.len() {
            let dst_par = self.stages[id].parallelism;
            for input in self.inputs(id) {
                let src_par = self.stages[input.from].parallelism;
                let ok = match input.connector {
                    Connector::OneToOne => src_par == dst_par,
                    Connector::Hash { .. } => true,
                    Connector::MergeToOne => dst_par == Parallelism::One,
                };
                if !ok {
                    return Err(DataflowError::BadJob(format!(
                        "stage {id}: connector {:?} incompatible with parallelism {:?} -> {:?}",
                        input.connector, src_par, dst_par
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::eval::{ScanSource, TupleEmitter};

    struct NullScan;
    impl ScanSource for NullScan {
        fn run(&mut self, _emit: &mut TupleEmitter<'_>) -> Result<()> {
            Ok(())
        }
    }
    struct NullScanFactory;
    impl ScanSourceFactory for NullScanFactory {
        fn create(&self, _ctx: &TaskContext) -> Result<Box<dyn ScanSource>> {
            Ok(Box::new(NullScan))
        }
    }

    fn source_stage() -> Stage {
        Stage {
            kind: StageKind::Source {
                scan: Arc::new(NullScanFactory),
                chain: Arc::new(IdentityPipe),
            },
            parallelism: Parallelism::Full,
        }
    }

    #[test]
    fn terminal_detection() {
        let mut job = JobSpec::new();
        let s = job.add(source_stage());
        let p = job.add(Stage {
            kind: StageKind::Pipe {
                input: StageInput {
                    from: s,
                    connector: Connector::OneToOne,
                },
                chain: Arc::new(IdentityPipe),
            },
            parallelism: Parallelism::Full,
        });
        assert_eq!(job.terminal().unwrap(), p);
        job.validate().unwrap();
    }

    #[test]
    fn rejects_multiple_terminals() {
        let mut job = JobSpec::new();
        job.add(source_stage());
        job.add(source_stage());
        assert!(job.terminal().is_err());
    }

    #[test]
    fn rejects_bad_merge_parallelism() {
        let mut job = JobSpec::new();
        let s = job.add(source_stage());
        job.add(Stage {
            kind: StageKind::Pipe {
                input: StageInput {
                    from: s,
                    connector: Connector::MergeToOne,
                },
                chain: Arc::new(IdentityPipe),
            },
            parallelism: Parallelism::Full, // wrong: must be One
        });
        assert!(job.validate().is_err());
    }
}
