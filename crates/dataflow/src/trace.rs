//! Structured query-lifecycle tracing.
//!
//! A [`TraceBuffer`] is a bounded ring of timestamped spans covering the
//! whole life of a query — parse, translate, every optimizer rule firing,
//! compile, and per-stage execution. The engine layer records into it;
//! exports are line-delimited JSON ([`TraceBuffer::to_json_lines`]) and
//! the Chrome trace-event format ([`TraceBuffer::to_chrome_trace`], load
//! via `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! JSON is emitted by hand (no serde in the dependency tree); strings go
//! through [`escape_json`].

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Value of a span argument.
#[derive(Debug, Clone)]
pub enum ArgValue {
    Int(i64),
    Str(String),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::Int(v as i64)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One completed span (Chrome "X" event).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub name: String,
    /// Category: `lifecycle`, `rule`, `execute`, …
    pub cat: &'static str,
    /// Microseconds since the buffer was created.
    pub ts_us: u64,
    pub dur_us: u64,
    /// Node id (Chrome: process id).
    pub pid: u32,
    /// Partition id (Chrome: thread id); coordinator work uses 0.
    pub tid: u32,
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Bounded ring buffer of trace events. Thread-safe; overflow drops the
/// oldest events and counts them.
pub struct TraceBuffer {
    epoch: Instant,
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::with_capacity(4096)
    }
}

impl TraceBuffer {
    pub fn new() -> Self {
        TraceBuffer::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds since buffer creation.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    pub fn push(&self, event: TraceEvent) {
        // The ring stays structurally sound under poisoning (pushes and
        // pops are atomic with respect to the guard), so recover rather
        // than losing the whole trace to one panicked task.
        let mut q = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() == self.capacity {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(event);
    }

    /// Record a completed span that started at `start_us`.
    pub fn span_from(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        start_us: u64,
        pid: u32,
        tid: u32,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ts_us: start_us,
            dur_us: self.now_us().saturating_sub(start_us),
            pid,
            tid,
            args,
        });
    }

    /// Start an RAII span on the coordinator (pid 0 / tid 0).
    pub fn span<'a>(&'a self, name: &str, cat: &'static str) -> SpanGuard<'a> {
        SpanGuard {
            buf: self,
            name: name.to_string(),
            cat,
            start_us: self.now_us(),
            pid: 0,
            tid: 0,
            args: Vec::new(),
        }
    }

    /// Record an instantaneous event.
    pub fn event(&self, name: &str, cat: &'static str, args: Vec<(&'static str, ArgValue)>) {
        let ts = self.now_us();
        self.push(TraceEvent {
            name: name.to_string(),
            cat,
            ts_us: ts,
            dur_us: 0,
            pid: 0,
            tid: 0,
            args,
        });
    }

    /// Events dropped to the ring bound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// One JSON object per line.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            write_event_json(&mut out, &e);
            out.push('\n');
        }
        out
    }

    /// The Chrome trace-event file format: a single JSON object with a
    /// `traceEvents` array of phase-"X" (complete) events.
    pub fn to_chrome_trace(&self) -> String {
        let events = self.events();
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_event_json(&mut out, e);
        }
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped\":{}}}}}",
            self.dropped()
        );
        out
    }
}

fn write_event_json(out: &mut String, e: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}",
        escape_json(&e.name),
        escape_json(e.cat),
        e.ts_us,
        e.dur_us,
        e.pid,
        e.tid
    );
    if !e.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in e.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", escape_json(k));
            match v {
                ArgValue::Int(n) => {
                    let _ = write!(out, "{n}");
                }
                ArgValue::Str(s) => {
                    let _ = write!(out, "\"{}\"", escape_json(s));
                }
            }
        }
        out.push('}');
    }
    out.push('}');
}

/// Escape a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// RAII span: records a complete event on drop. Arguments can be attached
/// while the span is open.
pub struct SpanGuard<'a> {
    buf: &'a TraceBuffer,
    name: String,
    cat: &'static str,
    start_us: u64,
    pid: u32,
    tid: u32,
    args: Vec<(&'static str, ArgValue)>,
}

impl SpanGuard<'_> {
    pub fn with_ids(mut self, pid: u32, tid: u32) -> Self {
        self.pid = pid;
        self.tid = tid;
        self
    }

    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        self.args.push((key, value.into()));
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.buf.span_from(
            std::mem::take(&mut self.name),
            self.cat,
            self.start_us,
            self.pid,
            self.tid,
            std::mem::take(&mut self.args),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_duration_and_args() {
        let buf = TraceBuffer::new();
        {
            let mut s = buf.span("parse", "lifecycle");
            s.arg("chars", 17usize);
            s.arg("query", "for $x in …");
        }
        let events = buf.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "parse");
        assert_eq!(events[0].args.len(), 2);
    }

    #[test]
    fn ring_bound_drops_oldest() {
        let buf = TraceBuffer::with_capacity(3);
        for i in 0..5 {
            buf.event(&format!("e{i}"), "t", vec![]);
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 2);
        assert_eq!(buf.events()[0].name, "e2");
    }

    #[test]
    fn exports_escape_and_shape() {
        let buf = TraceBuffer::new();
        buf.event(
            "weird \"name\"\n",
            "rule",
            vec![
                ("k", ArgValue::Str("v\\1".into())),
                ("n", ArgValue::Int(-3)),
            ],
        );
        let lines = buf.to_json_lines();
        assert!(lines.contains("\\\"name\\\""));
        assert!(lines.contains("\\n"));
        assert!(lines.contains("\"n\":-3"));
        let chrome = buf.to_chrome_trace();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.ends_with('}'));
    }

    #[test]
    fn concurrent_pushes_do_not_lose_events_below_capacity() {
        let buf = TraceBuffer::with_capacity(10_000);
        std::thread::scope(|s| {
            for t in 0..8 {
                let buf = &buf;
                s.spawn(move || {
                    for i in 0..100 {
                        buf.event(&format!("t{t}-{i}"), "x", vec![]);
                    }
                });
            }
        });
        assert_eq!(buf.len(), 800);
        assert_eq!(buf.dropped(), 0);
    }
}
