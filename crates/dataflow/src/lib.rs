//! # dataflow — a partitioned-parallel dataflow runtime (the Hyracks analog)
//!
//! This crate reproduces the substrate the paper's system runs on:
//! *Hyracks* (Borkar et al., ICDE 2011), "a flexible and extensible
//! foundation for data-intensive computing". Like Hyracks it is
//! **data-agnostic**: it moves fixed-size [`frame::Frame`]s of serialized
//! tuples between push-based operators and knows nothing about JSON — the
//! language layer (`vxq-core`) supplies expression evaluators, aggregators,
//! and scan sources as trait objects.
//!
//! Components:
//!
//! * [`frame`] — fixed-size frames with an end-of-frame tuple index
//!   (Hyracks' frame layout), appenders and zero-copy accessors.
//! * [`ops`] — physical operators: empty-tuple-source, data scan, assign,
//!   select, unnest, aggregate, subplan, hash & pre-clustered group-by,
//!   hash join, materializing group-by (the *pre-rewrite* plans need it).
//! * [`exchange`] — connectors between stages: one-to-one, hash
//!   partitioning, and merge-to-one, backed by bounded channels.
//! * [`job`] / [`cluster`] — job specifications (stage DAG) executed on a
//!   simulated cluster of `nodes × partitions_per_node` worker threads,
//!   with per-node core limits so that CPU-bound oversubscription behaves
//!   like the paper's hyper-threading experiment (Fig. 17).
//! * [`stats`] — memory and network accounting (peak materialized bytes,
//!   bytes crossing node boundaries), used by the Table-3 reproduction.
//! * [`spill`] — memory-bounded execution: per-operator memory grants
//!   drawn from the job budget, plus the run-file layer the external
//!   sort, grace hash join and spilling group-by overflow into.
//! * [`profile`] — always-on per-operator metrics (tuples/frames/bytes
//!   in and out, busy and emit-stall time) collected by interleaved
//!   probes, aggregated into a [`profile::JobProfile`].
//! * [`trace`] — bounded ring buffer of query-lifecycle spans, exportable
//!   as JSON lines or a Chrome trace-event file.
//! * [`cancel`] — cooperative cancellation tokens (client cancel +
//!   deadlines), checked at frame boundaries by every run loop and
//!   exchange so a fired job unwinds cleanly and releases its resources.

pub mod cancel;
pub mod channel;
pub mod cluster;
pub mod context;
pub mod cputime;
pub mod error;
pub mod exchange;
pub mod frame;
pub mod job;
pub mod ops;
pub mod profile;
pub mod spill;
pub mod stats;
pub mod trace;

pub use cancel::{CancelReason, CancelToken};
pub use cluster::{Cluster, ClusterSpec, Rows, RunOptions};
pub use context::{CoreGate, TaskContext};
pub use error::{DataflowError, Result};
pub use frame::{Frame, FrameAppender, TupleRef};
pub use job::{
    Connector, IdentityPipe, JobSpec, Parallelism, PipeFactory, Stage, StageId, StageInput,
    StageKind, TwoInputFactory, TwoInputOp,
};
pub use profile::{JobProfile, OpProfile, OpSummary, Profiler};
pub use spill::{MemGrant, SpillConfig, SpillCtx, SpillHandle, SpillOpProfile, SpillSummary};
pub use stats::{JobStats, MemTracker};
pub use trace::{ArgValue, TraceBuffer, TraceEvent};
