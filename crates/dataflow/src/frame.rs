//! Fixed-size frames of serialized tuples — the unit of data movement.
//!
//! Layout follows Hyracks: tuple data grows from the front of the buffer;
//! a trailer at the very end records the tuple count and, growing backward,
//! one `u32` *end offset* per tuple:
//!
//! ```text
//! +-------------------------------------------------------------+
//! | tuple 0 | tuple 1 | ... free ... | endN..end1 end0 | count  |
//! +-------------------------------------------------------------+
//! ```
//!
//! Each tuple is: `u16 field_count`, `field_count × u32` field end offsets
//! (relative to the end of the header), then the field bytes. Fields carry
//! serialized [`jdm::binary`] items (the runtime never splits a tuple
//! across frames; an oversized tuple gets a dedicated "big frame", which
//! is Hyracks' behaviour for large records).

use crate::error::{DataflowError, Result};

/// Default frame capacity (32 KiB, Hyracks' classic default).
pub const DEFAULT_FRAME_SIZE: usize = 32 * 1024;

/// An immutable, sealed frame.
#[derive(Debug, Clone)]
pub struct Frame {
    bytes: Box<[u8]>,
}

impl Frame {
    /// Wrap raw frame bytes (must already contain a valid trailer).
    pub fn from_bytes(bytes: Box<[u8]>) -> Self {
        Frame { bytes }
    }

    /// Total size in bytes (data + free space + trailer).
    #[inline]
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Number of tuples in the frame.
    #[inline]
    pub fn tuple_count(&self) -> usize {
        let n = self.bytes.len();
        u32::from_le_bytes(self.bytes[n - 4..].try_into().expect("trailer")) as usize
    }

    #[inline]
    fn tuple_end(&self, i: usize) -> usize {
        let n = self.bytes.len();
        let at = n - 4 - 4 * (i + 1);
        u32::from_le_bytes(self.bytes[at..at + 4].try_into().expect("trailer entry")) as usize
    }

    /// Zero-copy access to tuple `i`.
    pub fn tuple(&self, i: usize) -> TupleRef<'_> {
        debug_assert!(i < self.tuple_count());
        let start = if i == 0 { 0 } else { self.tuple_end(i - 1) };
        let end = self.tuple_end(i);
        TupleRef {
            bytes: &self.bytes[start..end],
        }
    }

    /// Iterate all tuples.
    pub fn tuples(&self) -> impl Iterator<Item = TupleRef<'_>> {
        (0..self.tuple_count()).map(move |i| self.tuple(i))
    }

    /// Bytes actually used by tuple data (for network accounting).
    pub fn data_len(&self) -> usize {
        let n = self.tuple_count();
        if n == 0 {
            0
        } else {
            self.tuple_end(n - 1)
        }
    }
}

/// Zero-copy view of one tuple inside a frame.
#[derive(Debug, Clone, Copy)]
pub struct TupleRef<'a> {
    bytes: &'a [u8],
}

impl<'a> TupleRef<'a> {
    /// Reconstruct a tuple view from raw tuple bytes (used by operators
    /// that buffer tuples outside frames, e.g. join build tables).
    pub fn from_bytes(bytes: &'a [u8]) -> Self {
        TupleRef { bytes }
    }

    /// The tuple's raw bytes (header + fields).
    #[inline]
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Number of fields.
    #[inline]
    pub fn field_count(&self) -> usize {
        u16::from_le_bytes(self.bytes[..2].try_into().expect("field count")) as usize
    }

    #[inline]
    fn header_len(&self) -> usize {
        2 + 4 * self.field_count()
    }

    #[inline]
    fn field_end(&self, i: usize) -> usize {
        let at = 2 + 4 * i;
        u32::from_le_bytes(self.bytes[at..at + 4].try_into().expect("field end")) as usize
    }

    /// Raw bytes of field `i` (a serialized [`jdm::binary`] item).
    pub fn field(&self, i: usize) -> &'a [u8] {
        debug_assert!(
            i < self.field_count(),
            "field {i} of {}",
            self.field_count()
        );
        let h = self.header_len();
        let start = if i == 0 { h } else { h + self.field_end(i - 1) };
        let end = h + self.field_end(i);
        &self.bytes[start..end]
    }

    /// All fields.
    pub fn fields(&self) -> impl Iterator<Item = &'a [u8]> + '_ {
        (0..self.field_count()).map(move |i| self.field(i))
    }
}

/// Builds frames by appending tuples; produces sealed [`Frame`]s.
pub struct FrameAppender {
    capacity: usize,
    data: Vec<u8>,
    ends: Vec<u32>,
    /// Allow frames larger than `capacity` for single oversized tuples.
    allow_big: bool,
}

impl FrameAppender {
    /// Appender producing frames of `capacity` bytes (oversized tuples get
    /// dedicated big frames).
    pub fn new(capacity: usize) -> Self {
        FrameAppender {
            capacity,
            data: Vec::with_capacity(capacity),
            ends: Vec::new(),
            allow_big: true,
        }
    }

    /// Like [`FrameAppender::new`] but rejecting oversized tuples, which
    /// models a hard Hyracks frame-size restriction (§4.2 mentions the
    /// dataflow frame size restriction the pipelining rules satisfy).
    pub fn new_strict(capacity: usize) -> Self {
        FrameAppender {
            capacity,
            data: Vec::with_capacity(capacity),
            ends: Vec::new(),
            allow_big: false,
        }
    }

    /// Bytes a tuple with the given field lengths occupies.
    fn tuple_size(fields: &[&[u8]]) -> usize {
        2 + 4 * fields.len() + fields.iter().map(|f| f.len()).sum::<usize>()
    }

    fn trailer_size(ntuples: usize) -> usize {
        4 + 4 * ntuples
    }

    /// Current number of buffered tuples.
    pub fn tuple_count(&self) -> usize {
        self.ends.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Try to append; returns `Ok(false)` when the frame is full (caller
    /// should [`FrameAppender::take_frame`] and retry), `Err` when a single
    /// tuple can never fit and big frames are disabled.
    pub fn append(&mut self, fields: &[&[u8]]) -> Result<bool> {
        let tsize = Self::tuple_size(fields);
        let needed = self.data.len() + tsize + Self::trailer_size(self.ends.len() + 1);
        if needed > self.capacity {
            if tsize + Self::trailer_size(1) > self.capacity {
                // Oversized tuple: only representable as a big frame.
                if !self.allow_big {
                    return Err(DataflowError::TupleTooLarge {
                        tuple: tsize,
                        capacity: self.capacity,
                    });
                }
                if !self.is_empty() {
                    return Ok(false); // flush current frame first
                }
                // fall through: single big tuple in an oversized frame
            } else {
                return Ok(false);
            }
        }
        self.data
            .extend_from_slice(&(fields.len() as u16).to_le_bytes());
        let mut end = 0u32;
        for f in fields {
            end += f.len() as u32;
            self.data.extend_from_slice(&end.to_le_bytes());
        }
        for f in fields {
            self.data.extend_from_slice(f);
        }
        self.ends.push(self.data.len() as u32);
        Ok(true)
    }

    /// Copy a whole existing tuple (used by repartitioners and unions).
    pub fn append_tuple(&mut self, t: &TupleRef<'_>) -> Result<bool> {
        // Re-append raw: reconstruct field slices to reuse append's sizing.
        let tsize = t.bytes().len();
        let needed = self.data.len() + tsize + Self::trailer_size(self.ends.len() + 1);
        if needed > self.capacity {
            if tsize + Self::trailer_size(1) > self.capacity {
                if !self.allow_big {
                    return Err(DataflowError::TupleTooLarge {
                        tuple: tsize,
                        capacity: self.capacity,
                    });
                }
                if !self.is_empty() {
                    return Ok(false);
                }
            } else {
                return Ok(false);
            }
        }
        self.data.extend_from_slice(t.bytes());
        self.ends.push(self.data.len() as u32);
        Ok(true)
    }

    /// Seal the buffered tuples into a frame and reset the appender.
    /// Returns `None` when empty.
    pub fn take_frame(&mut self) -> Option<Frame> {
        if self.ends.is_empty() {
            return None;
        }
        let trailer = Self::trailer_size(self.ends.len());
        // Frames are fixed-size (Hyracks' model); a lone oversized tuple
        // gets a dedicated bigger frame.
        let total = self.capacity.max(self.data.len() + trailer);
        let mut bytes = vec![0u8; total];
        bytes[..self.data.len()].copy_from_slice(&self.data);
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&(self.ends.len() as u32).to_le_bytes());
        for (i, end) in self.ends.iter().enumerate() {
            let at = n - 4 - 4 * (i + 1);
            bytes[at..at + 4].copy_from_slice(&end.to_le_bytes());
        }
        self.data.clear();
        self.ends.clear();
        Some(Frame::from_bytes(bytes.into_boxed_slice()))
    }
}

/// Helper: build a single-tuple-stream frame sequence from item fields.
/// Used widely in tests.
pub fn frames_from_rows(rows: &[Vec<Vec<u8>>], capacity: usize) -> Vec<Frame> {
    let mut out = Vec::new();
    let mut app = FrameAppender::new(capacity);
    for row in rows {
        let fields: Vec<&[u8]> = row.iter().map(|f| f.as_slice()).collect();
        loop {
            match app.append(&fields) {
                Ok(true) => break,
                Ok(false) => out.extend(app.take_frame()),
                Err(e) => panic!("append failed: {e}"),
            }
        }
    }
    out.extend(app.take_frame());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(n: u8, len: usize) -> Vec<u8> {
        vec![n; len]
    }

    #[test]
    fn append_and_read_back() {
        let mut app = FrameAppender::new(256);
        assert!(app.append(&[&field(1, 10), &field(2, 5)]).unwrap());
        assert!(app.append(&[&field(3, 0), &field(4, 7)]).unwrap());
        let frame = app.take_frame().unwrap();
        assert_eq!(frame.tuple_count(), 2);
        let t0 = frame.tuple(0);
        assert_eq!(t0.field_count(), 2);
        assert_eq!(t0.field(0), &field(1, 10)[..]);
        assert_eq!(t0.field(1), &field(2, 5)[..]);
        let t1 = frame.tuple(1);
        assert_eq!(t1.field(0), &[] as &[u8]);
        assert_eq!(t1.field(1), &field(4, 7)[..]);
    }

    #[test]
    fn frame_fills_and_rolls_over() {
        let mut app = FrameAppender::new(128);
        let mut frames = Vec::new();
        let mut appended = 0;
        for _ in 0..50 {
            let f = field(9, 20);
            loop {
                if app.append(&[&f]).unwrap() {
                    appended += 1;
                    break;
                }
                frames.push(app.take_frame().unwrap());
            }
        }
        frames.extend(app.take_frame());
        assert_eq!(appended, 50);
        let total: usize = frames.iter().map(Frame::tuple_count).sum();
        assert_eq!(total, 50);
        assert!(frames.len() > 1, "should have rolled over");
        // Every regular frame stays within capacity.
        for f in &frames {
            assert!(f.size() <= 128);
        }
    }

    #[test]
    fn oversized_tuple_gets_big_frame() {
        let mut app = FrameAppender::new(64);
        let big = field(7, 500);
        assert!(app.append(&[&big]).unwrap());
        let frame = app.take_frame().unwrap();
        assert_eq!(frame.tuple_count(), 1);
        assert!(frame.size() > 64);
        assert_eq!(frame.tuple(0).field(0), &big[..]);
    }

    #[test]
    fn oversized_tuple_flushes_pending_first() {
        let mut app = FrameAppender::new(64);
        assert!(app.append(&[&field(1, 8)]).unwrap());
        let big = field(7, 500);
        assert!(!app.append(&[&big]).unwrap(), "must ask for a flush first");
        let f1 = app.take_frame().unwrap();
        assert_eq!(f1.tuple_count(), 1);
        assert!(app.append(&[&big]).unwrap());
    }

    #[test]
    fn strict_appender_rejects_oversized() {
        let mut app = FrameAppender::new_strict(64);
        let big = field(7, 500);
        match app.append(&[&big]) {
            Err(DataflowError::TupleTooLarge { .. }) => {}
            other => panic!("expected TupleTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn append_tuple_copies_faithfully() {
        let mut app = FrameAppender::new(256);
        app.append(&[&field(1, 3), &field(2, 4), &field(3, 5)])
            .unwrap();
        let f = app.take_frame().unwrap();
        let t = f.tuple(0);

        let mut app2 = FrameAppender::new(256);
        assert!(app2.append_tuple(&t).unwrap());
        let f2 = app2.take_frame().unwrap();
        let t2 = f2.tuple(0);
        assert_eq!(t2.field_count(), 3);
        for i in 0..3 {
            assert_eq!(t.field(i), t2.field(i));
        }
    }

    #[test]
    fn empty_appender_yields_no_frame() {
        let mut app = FrameAppender::new(64);
        assert!(app.take_frame().is_none());
    }

    #[test]
    fn data_len_reflects_payload() {
        let mut app = FrameAppender::new(1024);
        app.append(&[&field(0, 10)]).unwrap();
        let f = app.take_frame().unwrap();
        // 2 (count) + 4 (end) + 10 (data)
        assert_eq!(f.data_len(), 16);
    }

    #[test]
    fn frames_from_rows_helper() {
        let rows: Vec<Vec<Vec<u8>>> = (0..10)
            .map(|i| vec![field(i as u8, 8), field(i as u8, 4)])
            .collect();
        let frames = frames_from_rows(&rows, 64);
        let total: usize = frames.iter().map(Frame::tuple_count).sum();
        assert_eq!(total, 10);
    }
}
