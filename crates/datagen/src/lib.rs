//! # datagen — synthetic NOAA GHCN-Daily sensor data
//!
//! **Substitution note (DESIGN.md §3):** the paper queries up to 803 GB of
//! NOAA GHCN-Daily data converted to the NOAA web-service JSON format
//! (Listing 6). That archive is not redistributable at that scale, so this
//! crate generates seeded synthetic files with the *exact same structure*:
//!
//! ```json
//! { "root": [
//!     { "metadata": { "count": 31 },
//!       "results": [
//!         { "date": "20131225T00:00", "dataType": "TMIN",
//!           "station": "GSW123006", "value": 4 }, ...
//!       ] }, ...
//! ] }
//! ```
//!
//! Properties the evaluation depends on are preserved:
//!
//! * the `measurements/array` knob of Fig. 18 / Table 1 (30 → 1);
//! * every `(station, date)` with a `TMIN` also has a `TMAX` (so the Q2
//!   self-join has matches) with `TMAX > TMIN`;
//! * dates spread over years so Q0's December-25 filter is selective;
//! * per-node sub-directories (`node0/`, `node1/`, …) — "each node has a
//!   unique set of JSON files stored under the same directory".
//!
//! Everything is deterministic per seed.

use jdm::{Item, Number};
use rng::StdRng;
use std::io::Write;
use std::path::Path;

pub mod rng;

/// Measurement kinds; TMIN/TMAX pair up for the self-join query.
pub const DATA_TYPES: [&str; 4] = ["TMIN", "TMAX", "WIND", "PRCP"];

/// Average JSON text bytes per measurement object (used for sizing).
pub const BYTES_PER_MEASUREMENT: usize = 90;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct SensorSpec {
    /// RNG seed; same seed ⇒ identical dataset.
    pub seed: u64,
    /// Simulated cluster nodes (one sub-directory each).
    pub nodes: usize,
    /// Files per node directory.
    pub files_per_node: usize,
    /// `root` array members per file (each holds one `results` array).
    pub records_per_file: usize,
    /// Measurements per `results` array — the Fig. 18 knob.
    pub measurements_per_array: usize,
    /// Number of distinct stations.
    pub stations: usize,
    /// First year of the date range.
    pub start_year: i32,
    /// Number of years covered.
    pub years: usize,
}

impl Default for SensorSpec {
    fn default() -> Self {
        SensorSpec {
            seed: 42,
            nodes: 1,
            files_per_node: 4,
            records_per_file: 64,
            measurements_per_array: 30,
            stations: 40,
            start_year: 2000,
            years: 15,
        }
    }
}

/// What was generated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatasetStats {
    pub files: usize,
    pub records: usize,
    pub measurements: usize,
    pub bytes: usize,
}

impl SensorSpec {
    /// Pick `records_per_file` so the whole dataset is roughly
    /// `total_bytes` at the given shape.
    pub fn sized(total_bytes: usize, nodes: usize, files_per_node: usize, mpa: usize) -> Self {
        let files = nodes * files_per_node;
        let per_file = total_bytes / files.max(1);
        let records = (per_file / (mpa.max(1) * BYTES_PER_MEASUREMENT)).max(1);
        SensorSpec {
            nodes,
            files_per_node,
            records_per_file: records,
            measurements_per_array: mpa,
            ..SensorSpec::default()
        }
    }

    /// Total measurements this spec will produce.
    pub fn total_measurements(&self) -> usize {
        self.nodes * self.files_per_node * self.records_per_file * self.measurements_per_array
    }

    /// Generate one file's item. `file_index` is global (node-major).
    pub fn file_item(&self, file_index: usize) -> Item {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (file_index as u64).wrapping_mul(0x9E37_79B9));
        let mut records = Vec::with_capacity(self.records_per_file);
        // Records come in TMIN/TMAX pairs over the same station & dates so
        // the Q2 self-join always has matches; every 3rd pair is replaced
        // by noise types to keep selection queries honest.
        let mut i = 0;
        while i < self.records_per_file {
            let station = format!("GSW{:06}", rng.gen_range(0..self.stations));
            let year = self.start_year + rng.gen_range(0..self.years as i32);
            let month = rng.gen_range(1..=12u8);
            let max_day = jdm::datetime::days_in_month(year, month);
            let start_day = rng.gen_range(1..=max_day.max(1));
            let n = self.measurements_per_array;

            let pair_kind = i % 6;
            if pair_kind < 4 && i + 1 < self.records_per_file {
                // A TMIN record and its matching TMAX record.
                let tmins: Vec<i64> = (0..n).map(|_| rng.gen_range(-25i64..20)).collect();
                let deltas: Vec<i64> = (0..n).map(|_| rng.gen_range(3i64..25)).collect();
                records.push(self.record(&station, year, month, start_day, "TMIN", &tmins));
                let tmaxs: Vec<i64> = tmins.iter().zip(&deltas).map(|(t, d)| t + d).collect();
                records.push(self.record(&station, year, month, start_day, "TMAX", &tmaxs));
                i += 2;
            } else {
                let dt = if pair_kind == 4 { "WIND" } else { "PRCP" };
                let vals: Vec<i64> = (0..n).map(|_| rng.gen_range(0i64..120)).collect();
                records.push(self.record(&station, year, month, start_day, dt, &vals));
                i += 1;
            }
        }
        Item::Object(vec![("root".into(), Item::Array(records))])
    }

    /// One `{metadata, results}` record: consecutive days from
    /// `(year, month, start_day)`, wrapping within the month.
    fn record(
        &self,
        station: &str,
        year: i32,
        month: u8,
        start_day: u8,
        data_type: &str,
        values: &[i64],
    ) -> Item {
        let dim = jdm::datetime::days_in_month(year, month);
        let results: Vec<Item> = values
            .iter()
            .enumerate()
            .map(|(k, v)| {
                let day = (start_day - 1 + k as u8) % dim + 1;
                Item::Object(vec![
                    (
                        "date".into(),
                        Item::str(format!("{year:04}{month:02}{day:02}T00:00")),
                    ),
                    ("dataType".into(), Item::str(data_type)),
                    ("station".into(), Item::str(station)),
                    ("value".into(), Item::Number(Number::Int(*v))),
                ])
            })
            .collect();
        Item::Object(vec![
            (
                "metadata".into(),
                Item::Object(vec![("count".into(), Item::int(results.len() as i64))]),
            ),
            ("results".into(), Item::Array(results)),
        ])
    }

    /// Write the dataset under `dir` as `node{i}/part{j}.json`.
    /// Returns stats. Existing files are overwritten.
    pub fn generate(&self, dir: &Path) -> std::io::Result<DatasetStats> {
        let mut stats = DatasetStats::default();
        for node in 0..self.nodes {
            let node_dir = dir.join(format!("node{node}"));
            std::fs::create_dir_all(&node_dir)?;
            for f in 0..self.files_per_node {
                let idx = node * self.files_per_node + f;
                let item = self.file_item(idx);
                let text = jdm::text::to_string(&item);
                let path = node_dir.join(format!("part{f:04}.json"));
                let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
                file.write_all(text.as_bytes())?;
                file.flush()?;
                stats.files += 1;
                stats.bytes += text.len();
                stats.records += self.records_per_file;
                stats.measurements += self.records_per_file * self.measurements_per_array;
            }
        }
        Ok(stats)
    }
}

/// Write the paper's bookstore example (Listing 1) as a collection of
/// `files` files under `dir/node0`, returning total books written.
pub fn generate_bookstore(
    dir: &Path,
    files: usize,
    books_per_file: usize,
) -> std::io::Result<usize> {
    const TITLES: [&str; 4] = [
        "Everyday Italian",
        "Harry Potter",
        "XQuery Kick Start",
        "Learning XML",
    ];
    const AUTHORS: [&str; 3] = ["Giada De Laurentiis", "J K. Rowling", "Erik T. Ray"];
    const CATEGORIES: [&str; 3] = ["COOKING", "CHILDREN", "WEB"];
    let node_dir = dir.join("node0");
    std::fs::create_dir_all(&node_dir)?;
    let mut written = 0;
    for f in 0..files {
        let books: Vec<Item> = (0..books_per_file)
            .map(|i| {
                let k = (f * books_per_file + i) % TITLES.len();
                Item::Object(vec![
                    ("-category".into(), Item::str(CATEGORIES[k % 3])),
                    ("title".into(), Item::str(TITLES[k])),
                    ("author".into(), Item::str(AUTHORS[k % 3])),
                    ("year".into(), Item::str(format!("{}", 2000 + k))),
                    ("price".into(), Item::str(format!("{}.00", 20 + k))),
                ])
            })
            .collect();
        written += books.len();
        let doc = Item::Object(vec![(
            "bookstore".into(),
            Item::Object(vec![("book".into(), Item::Array(books))]),
        )]);
        std::fs::write(
            node_dir.join(format!("books{f}.json")),
            jdm::text::to_string(&doc),
        )?;
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jdm::parse::parse_item;

    #[test]
    fn structure_matches_listing6() {
        let spec = SensorSpec {
            records_per_file: 8,
            measurements_per_array: 5,
            ..Default::default()
        };
        let item = spec.file_item(0);
        let root = item.get_key("root").expect("root array");
        let Item::Array(records) = root else {
            panic!("root must be an array")
        };
        assert_eq!(records.len(), 8);
        for rec in records {
            let count = rec
                .get_key("metadata")
                .and_then(|m| m.get_key("count"))
                .and_then(Item::as_number)
                .unwrap();
            let Item::Array(results) = rec.get_key("results").unwrap() else {
                panic!("results must be an array")
            };
            assert_eq!(count.as_i64().unwrap() as usize, results.len());
            assert_eq!(results.len(), 5);
            for m in results {
                for key in ["date", "dataType", "station", "value"] {
                    assert!(m.get_key(key).is_some(), "missing {key}");
                }
                let d = m.get_key("date").unwrap().as_str().unwrap();
                assert!(jdm::DateTime::parse(d).is_ok(), "bad date {d}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = SensorSpec::default();
        assert_eq!(spec.file_item(3), spec.file_item(3));
        let other = SensorSpec {
            seed: 99,
            ..SensorSpec::default()
        };
        assert_ne!(spec.file_item(3), other.file_item(3));
    }

    #[test]
    fn tmin_has_matching_tmax() {
        let spec = SensorSpec {
            records_per_file: 20,
            measurements_per_array: 4,
            ..Default::default()
        };
        let item = spec.file_item(1);
        let records = item.get_key("root").unwrap();
        let mut tmin = std::collections::HashSet::new();
        let mut tmax = std::collections::HashSet::new();
        for rec in records.keys_or_members() {
            for m in rec.get_key("results").unwrap().keys_or_members() {
                let key = (
                    m.get_key("station").unwrap().as_str().unwrap().to_string(),
                    m.get_key("date").unwrap().as_str().unwrap().to_string(),
                );
                match m.get_key("dataType").unwrap().as_str().unwrap() {
                    "TMIN" => {
                        tmin.insert(key);
                    }
                    "TMAX" => {
                        tmax.insert(key);
                    }
                    _ => {}
                }
            }
        }
        assert!(!tmin.is_empty());
        assert_eq!(tmin, tmax, "every TMIN key must have a matching TMAX key");
    }

    #[test]
    fn generate_writes_parseable_files() {
        let dir = std::env::temp_dir().join("vxq-datagen-test");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = SensorSpec {
            nodes: 2,
            files_per_node: 3,
            records_per_file: 4,
            measurements_per_array: 3,
            ..Default::default()
        };
        let stats = spec.generate(&dir).unwrap();
        assert_eq!(stats.files, 6);
        assert_eq!(stats.measurements, 2 * 3 * 4 * 3);
        for node in 0..2 {
            let d = dir.join(format!("node{node}"));
            for entry in std::fs::read_dir(&d).unwrap() {
                let text = std::fs::read(entry.unwrap().path()).unwrap();
                parse_item(&text).expect("generated file must be valid JSON");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sized_hits_rough_target() {
        let spec = SensorSpec::sized(1_000_000, 2, 4, 30);
        let total = spec.total_measurements() * BYTES_PER_MEASUREMENT;
        assert!(total > 500_000 && total < 2_000_000, "got {total}");
    }

    #[test]
    fn bookstore_collection_is_valid() {
        let dir = std::env::temp_dir().join("vxq-bookstore-test");
        let _ = std::fs::remove_dir_all(&dir);
        let n = generate_bookstore(&dir, 2, 5).unwrap();
        assert_eq!(n, 10);
        let text = std::fs::read(dir.join("node0/books0.json")).unwrap();
        let item = parse_item(&text).unwrap();
        assert!(item.get_key("bookstore").unwrap().get_key("book").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
