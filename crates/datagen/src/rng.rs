//! Seeded PRNG replacing the external `rand` crate.
//!
//! The generator only needs determinism per seed (the tests assert
//! same-seed ⇒ same dataset, different-seed ⇒ different dataset), not any
//! particular stream, so a SplitMix64 core with a uniform range mapper is
//! sufficient and keeps the crate dependency-free.

use std::ops::{Range, RangeInclusive};

/// Deterministic 64-bit generator (SplitMix64).
pub struct StdRng {
    state: u64,
}

impl StdRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Out {
        range.sample(self)
    }
}

/// Range types accepted by [`StdRng::gen_range`].
pub trait SampleRange {
    type Out;
    fn sample(self, rng: &mut StdRng) -> Self::Out;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Out = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Out = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 12];
        for _ in 0..2000 {
            let m = rng.gen_range(1..=12u8);
            assert!((1..=12).contains(&m));
            seen[(m - 1) as usize] = true;
            let v = rng.gen_range(-25i64..20);
            assert!((-25..20).contains(&v));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
        }
        assert!(seen.iter().all(|&s| s), "all months must be reachable");
    }
}
