//! AST → naive logical plan.
//!
//! The translator deliberately produces the *unoptimized* shapes of the
//! paper's figures — `promote`/`data` wrappers around document arguments
//! (Fig. 3), `ASSIGN collection` + `UNNEST iterate` for collections
//! (Fig. 5), `AGGREGATE sequence` + `ASSIGN treat` around GROUP-BY
//! (Fig. 9) — so that the rewrite rules have exactly the work the paper
//! describes. Two deviations from a full XQuery translator, both noted in
//! DESIGN.md: multiple independent `for` clauses become a JOIN operator
//! directly (join recognition is assumed), and `group by` supports one
//! grouped (non-key) variable, which covers the paper's workload.

use crate::ast::{BinOp, Clause, Expr};
use crate::error::{ParseError, Result};
use algebra::expr::{AggFunc, Function, LogicalExpr};
use algebra::plan::{LogicalOp, LogicalPlan, VarGen, VarId};
use jdm::Item;
use std::collections::HashMap;

/// Translate a parsed query into its naive logical plan.
pub fn translate(expr: &Expr) -> Result<LogicalPlan> {
    let mut t = Translator {
        gen: VarGen::new(),
        scope: HashMap::new(),
    };
    let root = t.translate_top(expr)?;
    Ok(LogicalPlan::new(root))
}

/// How a surface name is bound.
#[derive(Debug, Clone, Copy)]
enum Binding {
    /// One item per tuple (for/let variables).
    Item(VarId),
    /// A grouped sequence (after `group by`).
    Sequence(VarId),
}

impl Binding {
    fn var(self) -> VarId {
        match self {
            Binding::Item(v) | Binding::Sequence(v) => v,
        }
    }
}

struct Translator {
    gen: VarGen,
    scope: HashMap<String, Binding>,
}

/// The aggregate functions recognised over FLWOR / grouped sequences.
fn aggregate_function(name: &str) -> Option<Function> {
    match name {
        "count" => Some(Function::Count),
        "sum" => Some(Function::Sum),
        "avg" => Some(Function::Avg),
        "min" => Some(Function::Min),
        "max" => Some(Function::Max),
        _ => None,
    }
}

impl Translator {
    // ---------------------------------------------------------------- top

    fn translate_top(&mut self, expr: &Expr) -> Result<LogicalOp> {
        match expr {
            Expr::Flwor { clauses, ret } => {
                let (op, out) = self.flwor_stream(clauses, ret, LogicalOp::EmptyTupleSource)?;
                Ok(LogicalOp::Distribute {
                    exprs: vec![out],
                    input: Box::new(op),
                })
            }
            _ => {
                // `avg(FLWOR) div 10` — an aggregate call over a FLWOR
                // embedded in scalar context (Q2's shape).
                if let Some(call) = find_agg_over_flwor(expr) {
                    let Expr::FnCall { name, args } = call else {
                        unreachable!()
                    };
                    let func = aggregate_function(name).expect("checked by finder");
                    let Expr::Flwor { clauses, ret } = &args[0] else {
                        unreachable!()
                    };
                    let (chain, out) =
                        self.flwor_stream(clauses, ret, LogicalOp::EmptyTupleSource)?;
                    let agg_var = self.gen.fresh();
                    let agg = LogicalOp::Aggregate {
                        var: agg_var,
                        func: AggFunc::from_scalar(func).expect("aggregate function"),
                        arg: out,
                        input: Box::new(chain),
                    };
                    let result = self.scalar_replacing(expr, call, agg_var)?;
                    let res_var = self.gen.fresh();
                    let assign = LogicalOp::Assign {
                        var: res_var,
                        expr: result,
                        input: Box::new(agg),
                    };
                    return Ok(LogicalOp::Distribute {
                        exprs: vec![LogicalExpr::Var(res_var)],
                        input: Box::new(assign),
                    });
                }
                // A bare path query (the bookstore examples): stream items.
                if is_pathlike(expr) {
                    let (op, v) = self.bind_sequence(expr, LogicalOp::EmptyTupleSource)?;
                    return Ok(LogicalOp::Distribute {
                        exprs: vec![LogicalExpr::Var(v)],
                        input: Box::new(op),
                    });
                }
                // Pure scalar query (`1 + 1`).
                let e = self.scalar(expr)?;
                let v = self.gen.fresh();
                let assign = LogicalOp::Assign {
                    var: v,
                    expr: e,
                    input: Box::new(LogicalOp::EmptyTupleSource),
                };
                Ok(LogicalOp::Distribute {
                    exprs: vec![LogicalExpr::Var(v)],
                    input: Box::new(assign),
                })
            }
        }
    }

    // -------------------------------------------------------------- FLWOR

    /// Translate a FLWOR into an operator chain; returns the chain and the
    /// per-tuple result expression.
    fn flwor_stream(
        &mut self,
        clauses: &[Clause],
        ret: &Expr,
        input: LogicalOp,
    ) -> Result<(LogicalOp, LogicalExpr)> {
        let mut op = input;
        let mut have_source = false;

        for clause in clauses {
            match clause {
                Clause::For { var, expr } => {
                    if have_source && is_independent(expr, &self.scope) {
                        // Second data source: a join (the translator
                        // performs join recognition; the WHERE above will
                        // supply the condition, split by the base rules).
                        let (right, v) = self.bind_sequence(expr, LogicalOp::EmptyTupleSource)?;
                        op = LogicalOp::Join {
                            cond: LogicalExpr::Const(Item::Boolean(true)),
                            left: Box::new(op),
                            right: Box::new(right),
                        };
                        self.scope.insert(var.clone(), Binding::Item(v));
                    } else {
                        let (chain, v) = self.bind_sequence(expr, op)?;
                        op = chain;
                        self.scope.insert(var.clone(), Binding::Item(v));
                    }
                    have_source = true;
                }
                Clause::Let { var, expr } => {
                    let e = self.scalar(expr)?;
                    let v = self.gen.fresh();
                    op = LogicalOp::Assign {
                        var: v,
                        expr: e,
                        input: Box::new(op),
                    };
                    self.scope.insert(var.clone(), Binding::Item(v));
                }
                Clause::Where(cond) => {
                    let e = self.scalar(cond)?;
                    op = LogicalOp::Select {
                        cond: e,
                        input: Box::new(op),
                    };
                }
                Clause::GroupBy { keys } => {
                    op = self.translate_group_by(keys, op)?;
                }
                Clause::OrderBy { keys } => {
                    let mut tkeys = Vec::with_capacity(keys.len());
                    for (e, asc) in keys {
                        tkeys.push((self.scalar(e)?, *asc));
                    }
                    op = LogicalOp::OrderBy {
                        keys: tkeys,
                        input: Box::new(op),
                    };
                }
            }
        }

        let out = self.translate_return(ret, &mut op)?;
        Ok((op, out))
    }

    /// GROUP-BY with the paper's naive inner focus: `AGGREGATE sequence`.
    fn translate_group_by(
        &mut self,
        keys: &[(String, Expr)],
        mut op: LogicalOp,
    ) -> Result<LogicalOp> {
        // Evaluate key expressions below the group-by (Fig. 9's ASSIGN).
        let mut group_keys = Vec::new();
        let mut new_scope: HashMap<String, Binding> = HashMap::new();
        for (name, kexpr) in keys {
            let e = self.scalar(kexpr)?;
            let kv = self.gen.fresh();
            op = LogicalOp::Assign {
                var: kv,
                expr: e,
                input: Box::new(op),
            };
            let gk = self.gen.fresh();
            group_keys.push((gk, LogicalExpr::Var(kv)));
            new_scope.insert(name.clone(), Binding::Item(gk));
        }

        // The grouped (non-key) variable: exactly one supported.
        let grouped: Vec<(String, VarId)> = self
            .scope
            .iter()
            .filter_map(|(n, b)| match b {
                Binding::Item(v) if !new_scope.contains_key(n) => Some((n.clone(), *v)),
                _ => None,
            })
            .collect();
        let [(gname, gvar)] = grouped.as_slice() else {
            return Err(ParseError::new(
                0,
                format!(
                    "group by supports exactly one grouped variable, found {}",
                    grouped.len()
                ),
            ));
        };

        let seq_var = self.gen.fresh();
        let nested = LogicalOp::Aggregate {
            var: seq_var,
            func: AggFunc::Sequence,
            arg: LogicalExpr::Var(*gvar),
            input: Box::new(LogicalOp::NestedTupleSource),
        };
        new_scope.insert(gname.clone(), Binding::Sequence(seq_var));
        self.scope = new_scope;
        Ok(LogicalOp::GroupBy {
            keys: group_keys,
            nested: Box::new(nested),
            input: Box::new(op),
        })
    }

    /// Translate the `return` expression, possibly extending the chain.
    fn translate_return(&mut self, ret: &Expr, op: &mut LogicalOp) -> Result<LogicalExpr> {
        // Aggregate call in return position.
        if let Expr::FnCall { name, args } = ret {
            if let (Some(func), [arg]) = (aggregate_function(name), args.as_slice()) {
                return self.translate_return_aggregate(func, arg, op);
            }
        }
        // `return $x` with a direct binding: no assign needed.
        if let Expr::VarRef(name) = ret {
            if let Some(b) = self.scope.get(name) {
                return Ok(LogicalExpr::Var(b.var()));
            }
        }
        let e = self.scalar(ret)?;
        let v = self.gen.fresh();
        let prev = std::mem::replace(op, LogicalOp::EmptyTupleSource);
        *op = LogicalOp::Assign {
            var: v,
            expr: e,
            input: Box::new(prev),
        };
        Ok(LogicalExpr::Var(v))
    }

    /// `return count(...)` — the two paper forms:
    /// * Q1: `count($x("title"))` over a grouped sequence → `ASSIGN treat`
    ///   + scalar `count` (Fig. 9), which the group-by rules then convert;
    /// * Q1b: `count(for $j in $x return $j("title"))` → a SUBPLAN with an
    ///   incremental AGGREGATE (Fig. 11) straight from the translator.
    fn translate_return_aggregate(
        &mut self,
        func: Function,
        arg: &Expr,
        op: &mut LogicalOp,
    ) -> Result<LogicalExpr> {
        // Q1b shape: aggregate over a FLWOR iterating a grouped sequence.
        if let Expr::Flwor { clauses, ret } = arg {
            if let [Clause::For {
                var: ivar,
                expr: Expr::VarRef(sname),
            }] = clauses.as_slice()
            {
                if let Some(Binding::Sequence(sv)) = self.scope.get(sname).copied() {
                    let j = self.gen.fresh();
                    let saved = self.scope.insert(ivar.clone(), Binding::Item(j));
                    let inner = self.scalar(ret)?;
                    match saved {
                        Some(b) => {
                            self.scope.insert(ivar.clone(), b);
                        }
                        None => {
                            self.scope.remove(ivar);
                        }
                    }
                    let c = self.gen.fresh();
                    let nested = LogicalOp::Aggregate {
                        var: c,
                        func: AggFunc::from_scalar(func).expect("aggregate function"),
                        arg: inner,
                        input: Box::new(LogicalOp::Unnest {
                            var: j,
                            expr: LogicalExpr::Call(Function::Iterate, vec![LogicalExpr::Var(sv)]),
                            input: Box::new(LogicalOp::NestedTupleSource),
                        }),
                    };
                    let prev = std::mem::replace(op, LogicalOp::EmptyTupleSource);
                    *op = LogicalOp::Subplan {
                        nested: Box::new(nested),
                        input: Box::new(prev),
                    };
                    return Ok(LogicalExpr::Var(c));
                }
            }
            return Err(ParseError::new(0, "unsupported FLWOR inside aggregate"));
        }

        // Q1 shape: scalar aggregate over an expression referencing a
        // grouped sequence — insert the `treat` scaffolding of Fig. 9.
        let seq_names: Vec<String> = self
            .scope
            .iter()
            .filter(|(_, b)| matches!(b, Binding::Sequence(_)))
            .map(|(n, _)| n.clone())
            .collect();
        let mut treat_subs: Vec<(String, Binding, VarId)> = Vec::new();
        for name in &seq_names {
            if expr_uses_var(arg, name) {
                let Binding::Sequence(sv) = self.scope[name] else {
                    unreachable!()
                };
                let t = self.gen.fresh();
                let prev = std::mem::replace(op, LogicalOp::EmptyTupleSource);
                *op = LogicalOp::Assign {
                    var: t,
                    expr: LogicalExpr::Call(Function::TreatItem, vec![LogicalExpr::Var(sv)]),
                    input: Box::new(prev),
                };
                treat_subs.push((name.clone(), Binding::Sequence(sv), t));
                self.scope.insert(name.clone(), Binding::Item(t));
            }
        }
        let inner = self.scalar(arg)?;
        for (name, orig, _) in treat_subs {
            self.scope.insert(name, orig);
        }
        let c = self.gen.fresh();
        let prev = std::mem::replace(op, LogicalOp::EmptyTupleSource);
        *op = LogicalOp::Assign {
            var: c,
            expr: LogicalExpr::Call(func, vec![inner]),
            input: Box::new(prev),
        };
        Ok(LogicalExpr::Var(c))
    }

    // ------------------------------------------------------ sequence bind

    /// Build a chain binding one item of `expr`'s sequence per tuple.
    fn bind_sequence(&mut self, expr: &Expr, input: LogicalOp) -> Result<(LogicalOp, VarId)> {
        match expr {
            Expr::VarRef(name) => {
                let b = self
                    .scope
                    .get(name)
                    .copied()
                    .ok_or_else(|| ParseError::new(0, format!("unbound variable ${name}")))?;
                let u = self.gen.fresh();
                let op = LogicalOp::Unnest {
                    var: u,
                    expr: LogicalExpr::Call(Function::Iterate, vec![LogicalExpr::Var(b.var())]),
                    input: Box::new(input),
                };
                Ok((op, u))
            }
            Expr::Flwor { clauses, ret } => {
                let (chain, out) = self.flwor_stream(clauses, ret, input)?;
                let u = self.gen.fresh();
                let op = LogicalOp::Unnest {
                    var: u,
                    expr: LogicalExpr::Call(Function::Iterate, vec![out]),
                    input: Box::new(chain),
                };
                Ok((op, u))
            }
            _ if is_pathlike(expr) => self.translate_path(expr, input),
            other => {
                let e = self.scalar(other)?;
                let u = self.gen.fresh();
                let op = LogicalOp::Unnest {
                    var: u,
                    expr: LogicalExpr::Call(Function::Iterate, vec![e]),
                    input: Box::new(input),
                };
                Ok((op, u))
            }
        }
    }

    /// Translate a path spine (`collection(...)("a")()("b")...`) into the
    /// naive chain of Fig. 5: ASSIGN collection, UNNEST iterate, merged
    /// `value` ASSIGNs, and ASSIGN keys-or-members + UNNEST iterate per
    /// `()` step.
    fn translate_path(&mut self, expr: &Expr, input: LogicalOp) -> Result<(LogicalOp, VarId)> {
        // Decompose the spine.
        let mut steps = Vec::new();
        let mut base = expr;
        loop {
            match base {
                Expr::PathValue { base: b, arg } => {
                    steps.push(Some(arg.as_ref()));
                    base = b;
                }
                Expr::PathKom { base: b } => {
                    steps.push(None);
                    base = b;
                }
                _ => break,
            }
        }
        steps.reverse();

        let mut op = input;
        // Translate the base.
        let mut cur: LogicalExpr = match base {
            Expr::FnCall { name, args } if name == "collection" => {
                let [Expr::Literal(Item::String(path))] = args.as_slice() else {
                    return Err(ParseError::new(0, "collection() takes one string literal"));
                };
                let wrapped = promote_data(LogicalExpr::Const(Item::String(path.clone())));
                let a = self.gen.fresh();
                op = LogicalOp::Assign {
                    var: a,
                    expr: LogicalExpr::Call(Function::Collection, vec![wrapped]),
                    input: Box::new(op),
                };
                let u = self.gen.fresh();
                op = LogicalOp::Unnest {
                    var: u,
                    expr: LogicalExpr::Call(Function::Iterate, vec![LogicalExpr::Var(a)]),
                    input: Box::new(op),
                };
                LogicalExpr::Var(u)
            }
            Expr::FnCall { name, args } if name == "json-doc" => {
                let [arg] = args.as_slice() else {
                    return Err(ParseError::new(0, "json-doc() takes one argument"));
                };
                let wrapped = promote_data(self.scalar(arg)?);
                let a = self.gen.fresh();
                op = LogicalOp::Assign {
                    var: a,
                    expr: LogicalExpr::Call(Function::JsonDoc, vec![wrapped]),
                    input: Box::new(op),
                };
                LogicalExpr::Var(a)
            }
            other => self.scalar(other)?,
        };

        // Apply the steps.
        for step in steps {
            match step {
                Some(arg) => {
                    cur = LogicalExpr::Call(Function::Value, vec![cur, self.scalar(arg)?]);
                }
                None => {
                    // Flush a pending value chain into an ASSIGN so the
                    // keys-or-members applies to a variable (Fig. 5).
                    if !matches!(cur, LogicalExpr::Var(_)) {
                        let v = self.gen.fresh();
                        op = LogicalOp::Assign {
                            var: v,
                            expr: cur,
                            input: Box::new(op),
                        };
                        cur = LogicalExpr::Var(v);
                    }
                    let s = self.gen.fresh();
                    op = LogicalOp::Assign {
                        var: s,
                        expr: LogicalExpr::Call(Function::KeysOrMembers, vec![cur]),
                        input: Box::new(op),
                    };
                    let i = self.gen.fresh();
                    op = LogicalOp::Unnest {
                        var: i,
                        expr: LogicalExpr::Call(Function::Iterate, vec![LogicalExpr::Var(s)]),
                        input: Box::new(op),
                    };
                    cur = LogicalExpr::Var(i);
                }
            }
        }

        // A trailing value chain binds through UNNEST iterate so that
        // empty sequences (missing keys) are skipped per XQuery `for`
        // semantics.
        match cur {
            LogicalExpr::Var(v) => Ok((op, v)),
            chain => {
                let u = self.gen.fresh();
                op = LogicalOp::Unnest {
                    var: u,
                    expr: LogicalExpr::Call(Function::Iterate, vec![chain]),
                    input: Box::new(op),
                };
                Ok((op, u))
            }
        }
    }

    // -------------------------------------------------------------- scalar

    fn scalar(&mut self, expr: &Expr) -> Result<LogicalExpr> {
        self.scalar_inner(expr, None)
    }

    /// Scalar translation replacing the pointer-identical `target` subtree
    /// with a variable reference (used for `avg(FLWOR) div 10`).
    fn scalar_replacing(&mut self, expr: &Expr, target: &Expr, var: VarId) -> Result<LogicalExpr> {
        self.scalar_inner(expr, Some((target, var)))
    }

    fn scalar_inner(
        &mut self,
        expr: &Expr,
        replace: Option<(&Expr, VarId)>,
    ) -> Result<LogicalExpr> {
        if let Some((target, var)) = replace {
            if std::ptr::eq(expr, target) {
                return Ok(LogicalExpr::Var(var));
            }
        }
        match expr {
            Expr::Literal(item) => Ok(LogicalExpr::Const(item.clone())),
            Expr::VarRef(name) => self
                .scope
                .get(name)
                .map(|b| LogicalExpr::Var(b.var()))
                .ok_or_else(|| ParseError::new(0, format!("unbound variable ${name}"))),
            Expr::PathValue { base, arg } => Ok(LogicalExpr::Call(
                Function::Value,
                vec![
                    self.scalar_inner(base, replace)?,
                    self.scalar_inner(arg, replace)?,
                ],
            )),
            Expr::PathKom { base } => Ok(LogicalExpr::Call(
                Function::KeysOrMembers,
                vec![self.scalar_inner(base, replace)?],
            )),
            Expr::Neg(inner) => Ok(LogicalExpr::Call(
                Function::Sub,
                vec![
                    LogicalExpr::Const(Item::int(0)),
                    self.scalar_inner(inner, replace)?,
                ],
            )),
            Expr::Binary { op, lhs, rhs } => {
                let f = match op {
                    BinOp::Or => Function::Or,
                    BinOp::And => Function::And,
                    BinOp::Eq => Function::Eq,
                    BinOp::Ne => Function::Ne,
                    BinOp::Lt => Function::Lt,
                    BinOp::Le => Function::Le,
                    BinOp::Gt => Function::Gt,
                    BinOp::Ge => Function::Ge,
                    BinOp::Add => Function::Add,
                    BinOp::Sub => Function::Sub,
                    BinOp::Mul => Function::Mul,
                    BinOp::Div => Function::Div,
                    BinOp::IDiv => Function::IDiv,
                };
                Ok(LogicalExpr::Call(
                    f,
                    vec![
                        self.scalar_inner(lhs, replace)?,
                        self.scalar_inner(rhs, replace)?,
                    ],
                ))
            }
            Expr::FnCall { name, args } => {
                let f = match name.as_str() {
                    "data" => Function::Data,
                    "dateTime" => Function::DateTime,
                    "year-from-dateTime" => Function::YearFromDateTime,
                    "month-from-dateTime" => Function::MonthFromDateTime,
                    "day-from-dateTime" => Function::DayFromDateTime,
                    "collection" => Function::Collection,
                    "json-doc" => Function::JsonDoc,
                    "not" => Function::Not,
                    other => match aggregate_function(other) {
                        Some(agg) => {
                            if args.iter().any(|a| matches!(a, Expr::Flwor { .. })) {
                                return Err(ParseError::new(
                                    0,
                                    "aggregate over FLWOR is only supported in return \
                                     position or at the top level",
                                ));
                            }
                            agg
                        }
                        None => {
                            return Err(ParseError::new(0, format!("unknown function {other}()")))
                        }
                    },
                };
                let mut targs = Vec::with_capacity(args.len());
                for a in args {
                    targs.push(self.scalar_inner(a, replace)?);
                }
                Ok(LogicalExpr::Call(f, targs))
            }
            Expr::Flwor { .. } => Err(ParseError::new(0, "FLWOR not supported in scalar context")),
        }
    }
}

/// `promote(data(x))` — the coercion scaffolding of Fig. 3.
fn promote_data(inner: LogicalExpr) -> LogicalExpr {
    LogicalExpr::Call(
        Function::Promote,
        vec![LogicalExpr::Call(Function::Data, vec![inner])],
    )
}

/// Is this a navigation spine rooted at a data-access call?
fn is_pathlike(expr: &Expr) -> bool {
    match expr {
        Expr::PathValue { base, .. } | Expr::PathKom { base } => is_pathlike(base),
        Expr::FnCall { name, .. } => name == "collection" || name == "json-doc",
        _ => false,
    }
}

/// Does the expression avoid all in-scope variables (safe as the
/// independent side of a join)?
fn is_independent(expr: &Expr, scope: &HashMap<String, Binding>) -> bool {
    match expr {
        Expr::VarRef(name) => !scope.contains_key(name),
        Expr::Literal(_) => true,
        Expr::PathValue { base, arg } => is_independent(base, scope) && is_independent(arg, scope),
        Expr::PathKom { base } => is_independent(base, scope),
        Expr::Neg(e) => is_independent(e, scope),
        Expr::Binary { lhs, rhs, .. } => is_independent(lhs, scope) && is_independent(rhs, scope),
        Expr::FnCall { args, .. } => args.iter().all(|a| is_independent(a, scope)),
        Expr::Flwor { .. } => false,
    }
}

/// Does the AST reference `$name`?
fn expr_uses_var(expr: &Expr, name: &str) -> bool {
    match expr {
        Expr::VarRef(n) => n == name,
        Expr::Literal(_) => false,
        Expr::PathValue { base, arg } => expr_uses_var(base, name) || expr_uses_var(arg, name),
        Expr::PathKom { base } => expr_uses_var(base, name),
        Expr::Neg(e) => expr_uses_var(e, name),
        Expr::Binary { lhs, rhs, .. } => expr_uses_var(lhs, name) || expr_uses_var(rhs, name),
        Expr::FnCall { args, .. } => args.iter().any(|a| expr_uses_var(a, name)),
        Expr::Flwor { clauses, ret } => {
            expr_uses_var(ret, name)
                || clauses.iter().any(|c| match c {
                    Clause::For { expr, .. } | Clause::Let { expr, .. } => {
                        expr_uses_var(expr, name)
                    }
                    Clause::Where(e) => expr_uses_var(e, name),
                    Clause::GroupBy { keys } => keys.iter().any(|(_, e)| expr_uses_var(e, name)),
                    Clause::OrderBy { keys } => keys.iter().any(|(e, _)| expr_uses_var(e, name)),
                })
        }
    }
}

/// Find an aggregate call whose single argument is a FLWOR.
fn find_agg_over_flwor(expr: &Expr) -> Option<&Expr> {
    match expr {
        Expr::FnCall { name, args } => {
            if aggregate_function(name).is_some()
                && args.len() == 1
                && matches!(args[0], Expr::Flwor { .. })
            {
                return Some(expr);
            }
            args.iter().find_map(find_agg_over_flwor)
        }
        Expr::PathValue { base, arg } => {
            find_agg_over_flwor(base).or_else(|| find_agg_over_flwor(arg))
        }
        Expr::PathKom { base } => find_agg_over_flwor(base),
        Expr::Neg(e) => find_agg_over_flwor(e),
        Expr::Binary { lhs, rhs, .. } => {
            find_agg_over_flwor(lhs).or_else(|| find_agg_over_flwor(rhs))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn plan(q: &str) -> LogicalPlan {
        translate(&parse(q).unwrap()).unwrap()
    }

    #[test]
    fn bookstore_doc_query_matches_fig3() {
        let p = plan(r#"json-doc("books.json")("bookstore")("book")()"#);
        // DISTRIBUTE <- UNNEST iterate <- ASSIGN k-o-m <- ASSIGN value* <-
        // ASSIGN json-doc <- ETS
        assert_eq!(
            p.shape(),
            vec![
                "distribute",
                "unnest",
                "assign",
                "assign",
                "assign",
                "empty-tuple-source"
            ]
        );
        let t = p.explain();
        assert!(t.contains("promote(data("), "{t}");
        assert!(t.contains("keys-or-members"), "{t}");
    }

    #[test]
    fn collection_query_matches_fig5() {
        let p = plan(r#"collection("/books")("bookstore")("book")()"#);
        assert_eq!(
            p.shape(),
            vec![
                "distribute",
                "unnest", // iterate over k-o-m seq
                "assign", // k-o-m
                "assign", // merged value chain
                "unnest", // iterate over collection
                "assign", // collection
                "empty-tuple-source"
            ]
        );
    }

    #[test]
    fn q1_matches_fig9() {
        let p = plan(
            r#"for $r in collection("/sensors")("root")()("results")()
               where $r("dataType") eq "TMIN"
               group by $date := $r("date")
               return count($r("station"))"#,
        );
        let t = p.explain();
        assert!(t.contains("group-by"), "{t}");
        assert!(t.contains("sequence("), "{t}");
        assert!(t.contains("treat("), "{t}");
        assert!(t.contains("count(value("), "{t}");
        assert!(t.contains("select eq(value("), "{t}");
    }

    #[test]
    fn q1b_builds_subplan_directly() {
        let p = plan(
            r#"for $r in collection("/s")("root")()("results")()
               group by $date := $r("date")
               return count(for $i in $r return $i("station"))"#,
        );
        let t = p.explain();
        assert!(t.contains("subplan"), "{t}");
        assert!(!t.contains("treat("), "{t}");
        assert!(t.contains("unnest"), "{t}");
    }

    #[test]
    fn q2_builds_join_and_global_aggregate() {
        let p = plan(
            r#"avg(
                 for $rmin in collection("/s")("root")()("results")()
                 for $rmax in collection("/s")("root")()("results")()
                 where $rmin("station") eq $rmax("station")
                   and $rmin("date") eq $rmax("date")
                   and $rmin("dataType") eq "TMIN"
                   and $rmax("dataType") eq "TMAX"
                 return $rmax("value") - $rmin("value")
               ) div 10"#,
        );
        let t = p.explain();
        assert!(t.contains("join"), "{t}");
        assert!(t.contains("aggregate"), "{t}");
        assert!(t.contains("avg("), "{t}");
        assert!(t.contains("divide($"), "{t}");
        assert!(t.contains("select"), "{t}");
    }

    #[test]
    fn let_and_where_translate() {
        let p = plan(
            r#"for $r in collection("/s")("root")()("results")()
               let $dt := dateTime(data($r("date")))
               where year-from-dateTime($dt) ge 2003
               return $r"#,
        );
        let t = p.explain();
        assert!(t.contains("dateTime(data(value("), "{t}");
        assert!(t.contains("select ge(year-from-dateTime("), "{t}");
        // `return $r` adds no assign: distribute references $r's var.
        assert!(t.starts_with("distribute [$"), "{t}");
    }

    #[test]
    fn trailing_value_step_binds_via_unnest() {
        // Q0b's shape: path ends in ("date").
        let p = plan(r#"for $d in collection("/s")("root")()("results")()("date") return $d"#);
        let t = p.explain();
        assert!(t.contains("unnest $"), "{t}");
        assert!(t.contains(r#"iterate(value($"#), "{t}");
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let e = translate(&parse("for $x in $nope return $x").unwrap()).unwrap_err();
        assert!(e.msg.contains("unbound"), "{e}");
    }

    #[test]
    fn group_by_with_no_grouped_variable_errors() {
        // Two grouped variables: unsupported (documented).
        let q = r#"for $a in collection("/s")("root")()
                   for $b in $a("results")()
                   group by $k := $b("date")
                   return count($b("station"))"#;
        let e = translate(&parse(q).unwrap()).unwrap_err();
        assert!(e.msg.contains("group by"), "{e}");
    }
}
