//! Recursive-descent parser.
//!
//! Precedence (loosest to tightest): FLWOR, `or`, `and`, comparison,
//! additive, multiplicative, unary minus, postfix path steps, primary.
//! Postfix `(...)` after any primary is a JSONiq navigation step; a name
//! immediately followed by `(` is a function call whose *result* may then
//! take further postfix steps — exactly how
//! `collection("/sensors")("root")()` reads.

use crate::ast::{BinOp, Clause, Expr};
use crate::error::{ParseError, Result};
use crate::lexer::{tokenize, Token, TokenKind};
use jdm::{Item, Number};

/// Parse a complete query.
pub fn parse(src: &str) -> Result<Expr> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::new(
                self.offset(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(ParseError::new(
                self.offset(),
                format!("unexpected trailing {:?}", self.peek()),
            ))
        }
    }

    fn expect_var(&mut self) -> Result<String> {
        match self.bump() {
            TokenKind::Var(n) => Ok(n),
            other => Err(ParseError::new(
                self.offset(),
                format!("expected $variable, found {other:?}"),
            )),
        }
    }

    /// Entry: FLWOR or plain expression.
    fn expr(&mut self) -> Result<Expr> {
        if self.peek().is_kw("for") || self.peek().is_kw("let") {
            return self.flwor();
        }
        self.or_expr()
    }

    fn flwor(&mut self) -> Result<Expr> {
        let mut clauses = Vec::new();
        loop {
            if self.eat_kw("for") {
                loop {
                    let var = self.expect_var()?;
                    if !self.eat_kw("in") {
                        return Err(ParseError::new(self.offset(), "expected 'in'"));
                    }
                    let e = self.expr()?;
                    clauses.push(Clause::For { var, expr: e });
                    if !matches!(self.peek(), TokenKind::Comma) {
                        break;
                    }
                    self.bump();
                }
            } else if self.eat_kw("let") {
                loop {
                    let var = self.expect_var()?;
                    self.expect(&TokenKind::Bind, "':='")?;
                    let e = self.expr()?;
                    clauses.push(Clause::Let { var, expr: e });
                    if !matches!(self.peek(), TokenKind::Comma) {
                        break;
                    }
                    self.bump();
                }
            } else if self.eat_kw("where") {
                let e = self.or_expr()?;
                clauses.push(Clause::Where(e));
            } else if self.peek().is_kw("group") && self.peek2().is_kw("by") {
                self.bump();
                self.bump();
                let mut keys = Vec::new();
                loop {
                    let var = self.expect_var()?;
                    self.expect(&TokenKind::Bind, "':='")?;
                    let e = self.or_expr()?;
                    keys.push((var, e));
                    if !matches!(self.peek(), TokenKind::Comma) {
                        break;
                    }
                    self.bump();
                }
                clauses.push(Clause::GroupBy { keys });
            } else if self.peek().is_kw("order") && self.peek2().is_kw("by") {
                self.bump();
                self.bump();
                let mut keys = Vec::new();
                loop {
                    let e = self.or_expr()?;
                    let asc = if self.eat_kw("descending") {
                        false
                    } else {
                        self.eat_kw("ascending");
                        true
                    };
                    keys.push((e, asc));
                    if !matches!(self.peek(), TokenKind::Comma) {
                        break;
                    }
                    self.bump();
                }
                clauses.push(Clause::OrderBy { keys });
            } else if self.eat_kw("return") {
                let ret = self.expr()?;
                return Ok(Expr::Flwor {
                    clauses,
                    ret: Box::new(ret),
                });
            } else {
                return Err(ParseError::new(
                    self.offset(),
                    format!("expected FLWOR clause or 'return', found {:?}", self.peek()),
                ));
            }
        }
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_kw("and") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            k if k.is_kw("eq") => Some(BinOp::Eq),
            k if k.is_kw("ne") => Some(BinOp::Ne),
            k if k.is_kw("lt") => Some(BinOp::Lt),
            k if k.is_kw("le") => Some(BinOp::Le),
            k if k.is_kw("gt") => Some(BinOp::Gt),
            k if k.is_kw("ge") => Some(BinOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let rhs = self.add_expr()?;
                Ok(Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                })
            }
            None => Ok(lhs),
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                k if k.is_kw("div") => BinOp::Div,
                k if k.is_kw("idiv") => BinOp::IDiv,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if matches!(self.peek(), TokenKind::Minus) {
            self.bump();
            let inner = self.unary_expr()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.postfix_expr()
    }

    /// Primary followed by any number of JSONiq path steps.
    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut base = self.primary()?;
        loop {
            if !matches!(self.peek(), TokenKind::LParen) {
                return Ok(base);
            }
            self.bump();
            if matches!(self.peek(), TokenKind::RParen) {
                self.bump();
                base = Expr::PathKom {
                    base: Box::new(base),
                };
            } else {
                let arg = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                base = Expr::PathValue {
                    base: Box::new(base),
                    arg: Box::new(arg),
                };
            }
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            TokenKind::Int(i) => Ok(Expr::Literal(Item::Number(Number::Int(i)))),
            TokenKind::Double(d) => Ok(Expr::Literal(Item::Number(Number::Double(d)))),
            TokenKind::Str(s) => Ok(Expr::Literal(Item::str(s))),
            TokenKind::Var(name) => Ok(Expr::VarRef(name)),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::Name(name) => {
                // A name in expression position must be a function call
                // (keywords were consumed by the clause machinery).
                if !matches!(self.peek(), TokenKind::LParen) {
                    return Err(ParseError::new(
                        self.offset(),
                        format!("expected '(' after function name '{name}'"),
                    ));
                }
                self.bump();
                let mut args = Vec::new();
                if !matches!(self.peek(), TokenKind::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if matches!(self.peek(), TokenKind::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(Expr::FnCall { name, args })
            }
            other => Err(ParseError::new(
                self.offset(),
                format!("unexpected token {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bookstore_path() {
        let e = parse(r#"json-doc("books.json")("bookstore")("book")()"#).unwrap();
        // Shape: Kom(Value(Value(FnCall json-doc, "bookstore"), "book"))
        let Expr::PathKom { base } = e else {
            panic!("expected kom at top: {e:?}")
        };
        let Expr::PathValue { base, arg } = *base else {
            panic!("expected value")
        };
        assert_eq!(*arg, Expr::Literal(Item::str("book")));
        let Expr::PathValue { base, .. } = *base else {
            panic!("expected value")
        };
        assert!(matches!(*base, Expr::FnCall { ref name, .. } if name == "json-doc"));
    }

    #[test]
    fn parses_flwor_with_group_by() {
        let q = r#"
            for $r in collection("/sensors")("root")()("results")()
            where $r("dataType") eq "TMIN"
            group by $date := $r("date")
            return count($r("station"))
        "#;
        let Expr::Flwor { clauses, ret } = parse(q).unwrap() else {
            panic!("expected flwor")
        };
        assert_eq!(clauses.len(), 3);
        assert!(matches!(&clauses[0], Clause::For { var, .. } if var == "r"));
        assert!(matches!(&clauses[1], Clause::Where(_)));
        assert!(matches!(&clauses[2], Clause::GroupBy { keys } if keys[0].0 == "date"));
        assert!(matches!(*ret, Expr::FnCall { ref name, .. } if name == "count"));
    }

    #[test]
    fn parses_nested_flwor_in_count() {
        let q = r#"
            for $r in collection("/s")("root")()
            group by $d := $r("date")
            return count(for $i in $r return $i("station"))
        "#;
        let Expr::Flwor { ret, .. } = parse(q).unwrap() else {
            panic!()
        };
        let Expr::FnCall { name, args } = *ret else {
            panic!()
        };
        assert_eq!(name, "count");
        assert!(matches!(args[0], Expr::Flwor { .. }));
    }

    #[test]
    fn parses_q2_join_shape() {
        let q = r#"
            avg(
              for $a in collection("/s")("root")()("results")()
              for $b in collection("/s")("root")()("results")()
              where $a("station") eq $b("station")
                and $a("dataType") eq "TMIN"
              return $b("value") - $a("value")
            ) div 10
        "#;
        let e = parse(q).unwrap();
        let Expr::Binary {
            op: BinOp::Div,
            lhs,
            rhs,
        } = e
        else {
            panic!("expected div: {e:?}")
        };
        assert_eq!(*rhs, Expr::Literal(Item::int(10)));
        let Expr::FnCall { name, args } = *lhs else {
            panic!()
        };
        assert_eq!(name, "avg");
        let Expr::Flwor { clauses, .. } = &args[0] else {
            panic!()
        };
        assert!(matches!(&clauses[0], Clause::For { .. }));
        assert!(matches!(&clauses[1], Clause::For { .. }));
        assert!(matches!(&clauses[2], Clause::Where(_)));
    }

    #[test]
    fn precedence_and_parens() {
        let e = parse("1 + 2 * 3").unwrap();
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = e
        else {
            panic!()
        };
        assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));

        let e = parse("(1 + 2) * 3").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn unary_minus() {
        let e = parse("- $x + 1").unwrap();
        let Expr::Binary {
            op: BinOp::Add,
            lhs,
            ..
        } = e
        else {
            panic!()
        };
        assert!(matches!(*lhs, Expr::Neg(_)));
    }

    #[test]
    fn comparison_in_where_binds_looser_than_path() {
        let q = r#"for $x in $y return $x("a") eq "b""#;
        let Expr::Flwor { ret, .. } = parse(q).unwrap() else {
            panic!()
        };
        assert!(matches!(*ret, Expr::Binary { op: BinOp::Eq, .. }));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("for $x retur $x").unwrap_err();
        assert!(err.msg.contains("expected 'in'"), "{err}");
        assert!(parse("count(").is_err());
        assert!(parse("1 +").is_err());
        assert!(parse("bare-name").is_err());
    }

    #[test]
    fn let_clause() {
        let q = r#"for $r in $s let $d := dateTime(data($r("date"))) where $d eq "x" return $r"#;
        let Expr::Flwor { clauses, .. } = parse(q).unwrap() else {
            panic!()
        };
        assert!(matches!(&clauses[1], Clause::Let { var, .. } if var == "d"));
    }
}

#[cfg(test)]
mod order_by_tests {
    use super::*;

    #[test]
    fn order_by_directions() {
        let q = r#"for $x in $y order by $x("a") descending, $x("b") ascending, $x("c") return $x"#;
        let Expr::Flwor { clauses, .. } = parse(q).unwrap() else {
            panic!()
        };
        let Clause::OrderBy { keys } = &clauses[1] else {
            panic!("expected order by, got {clauses:?}")
        };
        let dirs: Vec<bool> = keys.iter().map(|(_, asc)| *asc).collect();
        assert_eq!(dirs, vec![false, true, true]);
    }

    #[test]
    fn order_by_then_return() {
        let q = "for $x in $y order by $x return $x";
        assert!(parse(q).is_ok());
    }
}
