//! Tokenizer for the JSONiq-extension-to-XQuery subset.
//!
//! XQuery names may contain hyphens (`year-from-dateTime`), so `-` joins
//! an identifier when it is immediately surrounded by name characters;
//! subtraction therefore requires whitespace (as the paper's queries are
//! written: `$r_max("value") - $r_min("value")`).

use crate::error::{ParseError, Result};

/// One token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `$name`
    Var(String),
    /// Identifier / keyword (keywords are contextual in XQuery).
    Name(String),
    /// String literal (unescaped).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Decimal/double literal.
    Double(f64),
    LParen,
    RParen,
    Comma,
    /// `:=`
    Bind,
    Plus,
    Minus,
    Star,
    Eof,
}

impl TokenKind {
    /// Is this the contextual keyword `kw`?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Name(n) if n == kw)
    }
}

/// Tokenize the whole query.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                // XQuery comment `(: ... :)`
                if i + 1 < b.len() && b[i + 1] == b':' {
                    let mut depth = 1;
                    let mut j = i + 2;
                    while j + 1 < b.len() && depth > 0 {
                        if b[j] == b'(' && b[j + 1] == b':' {
                            depth += 1;
                            j += 2;
                        } else if b[j] == b':' && b[j + 1] == b')' {
                            depth -= 1;
                            j += 2;
                        } else {
                            j += 1;
                        }
                    }
                    if depth > 0 {
                        return Err(ParseError::new(i, "unterminated comment"));
                    }
                    i = j;
                } else {
                    out.push(Token {
                        kind: TokenKind::LParen,
                        offset: i,
                    });
                    i += 1;
                }
            }
            b')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    offset: i,
                });
                i += 1;
            }
            b',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    offset: i,
                });
                i += 1;
            }
            b'+' => {
                out.push(Token {
                    kind: TokenKind::Plus,
                    offset: i,
                });
                i += 1;
            }
            b'*' => {
                out.push(Token {
                    kind: TokenKind::Star,
                    offset: i,
                });
                i += 1;
            }
            b':' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token {
                        kind: TokenKind::Bind,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(i, "expected ':='"));
                }
            }
            b'$' => {
                let start = i + 1;
                let end = scan_name(b, start);
                if end == start {
                    return Err(ParseError::new(i, "expected variable name after '$'"));
                }
                out.push(Token {
                    kind: TokenKind::Var(src[start..end].to_string()),
                    offset: i,
                });
                i = end;
            }
            b'"' | b'\'' => {
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    if j >= b.len() {
                        return Err(ParseError::new(i, "unterminated string literal"));
                    }
                    if b[j] == quote {
                        // XQuery escapes quotes by doubling.
                        if j + 1 < b.len() && b[j + 1] == quote {
                            s.push(quote as char);
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    // Copy one UTF-8 character.
                    let ch_len = utf8_len(b[j]);
                    s.push_str(&src[j..j + ch_len]);
                    j += ch_len;
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    offset: i,
                });
                i = j + 1;
            }
            b'-' => {
                out.push(Token {
                    kind: TokenKind::Minus,
                    offset: i,
                });
                i += 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_double = false;
                if i < b.len() && b[i] == b'.' {
                    is_double = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    is_double = true;
                    i += 1;
                    if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
                        i += 1;
                    }
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let kind = if is_double {
                    TokenKind::Double(
                        text.parse()
                            .map_err(|_| ParseError::new(start, "bad number"))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| ParseError::new(start, "bad number"))?,
                    )
                };
                out.push(Token {
                    kind,
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let end = scan_name(b, i);
                out.push(Token {
                    kind: TokenKind::Name(src[i..end].to_string()),
                    offset: i,
                });
                i = end;
            }
            other => {
                return Err(ParseError::new(
                    i,
                    format!("unexpected character {:?}", other as char),
                ))
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        offset: b.len(),
    });
    Ok(out)
}

/// Scan a name: letters, digits, `_`, and `-` when followed by a name char.
fn scan_name(b: &[u8], start: usize) -> usize {
    let mut i = start;
    while i < b.len() {
        let c = b[i];
        let hyphen_joins = c == b'-'
            && i + 1 < b.len()
            && (b[i + 1].is_ascii_alphanumeric() || b[i + 1] == b'_')
            && i > start;
        if c.is_ascii_alphanumeric() || c == b'_' || hyphen_joins {
            i += 1;
        } else {
            break;
        }
    }
    i
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_path_query() {
        use TokenKind::*;
        assert_eq!(
            kinds(r#"collection("/books")("bookstore")()"#),
            vec![
                Name("collection".into()),
                LParen,
                Str("/books".into()),
                RParen,
                LParen,
                Str("bookstore".into()),
                RParen,
                LParen,
                RParen,
                Eof
            ]
        );
    }

    #[test]
    fn hyphenated_names_are_single_tokens() {
        assert_eq!(
            kinds("year-from-dateTime($d)"),
            vec![
                TokenKind::Name("year-from-dateTime".into()),
                TokenKind::LParen,
                TokenKind::Var("d".into()),
                TokenKind::RParen,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn minus_with_spaces_is_subtraction() {
        assert_eq!(
            kinds("$a - $b"),
            vec![
                TokenKind::Var("a".into()),
                TokenKind::Minus,
                TokenKind::Var("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_bind() {
        assert_eq!(
            kinds("let $x := 10 div 2.5"),
            vec![
                TokenKind::Name("let".into()),
                TokenKind::Var("x".into()),
                TokenKind::Bind,
                TokenKind::Int(10),
                TokenKind::Name("div".into()),
                TokenKind::Double(2.5),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 (: a (: nested :) comment :) + 2"),
            vec![
                TokenKind::Int(1),
                TokenKind::Plus,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn doubled_quote_escapes() {
        assert_eq!(
            kinds(r#""say ""hi""""#),
            vec![TokenKind::Str("say \"hi\"".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("a ; b").is_err());
        assert!(tokenize("\"open").is_err());
        assert!(tokenize("$").is_err());
    }
}
