//! Abstract syntax tree for the supported JSONiq subset.

use jdm::Item;

/// Binary operators, in XQuery surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    IDiv,
}

impl BinOp {
    pub fn name(self) -> &'static str {
        use BinOp::*;
        match self {
            Or => "or",
            And => "and",
            Eq => "eq",
            Ne => "ne",
            Lt => "lt",
            Le => "le",
            Gt => "gt",
            Ge => "ge",
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "div",
            IDiv => "idiv",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal (string / number).
    Literal(Item),
    /// `$name`
    VarRef(String),
    /// `name(args...)`
    FnCall { name: String, args: Vec<Expr> },
    /// JSONiq `value` step: `base("key")` or `base(2)` or `base($k)`.
    PathValue { base: Box<Expr>, arg: Box<Expr> },
    /// JSONiq `keys-or-members` step: `base()`.
    PathKom { base: Box<Expr> },
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// FLWOR expression.
    Flwor {
        clauses: Vec<Clause>,
        ret: Box<Expr>,
    },
}

/// One FLWOR clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    For {
        var: String,
        expr: Expr,
    },
    Let {
        var: String,
        expr: Expr,
    },
    Where(Expr),
    GroupBy {
        keys: Vec<(String, Expr)>,
    },
    /// Keys with `true` = ascending.
    OrderBy {
        keys: Vec<(Expr, bool)>,
    },
}
