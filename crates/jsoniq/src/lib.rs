//! # jsoniq — the query language frontend
//!
//! Implements the subset of the *JSONiq extension to the XQuery
//! specification* that the paper's system and evaluation exercise:
//!
//! * FLWOR expressions (`for` / `let` / `where` / `group by` / `return`),
//!   including multiple `for` clauses (joins) and FLWORs nested inside
//!   aggregate function calls;
//! * JSONiq navigation: the postfix `value` step `E("key")` / `E(i)` and
//!   the `keys-or-members` step `E()`;
//! * general comparisons (`eq ne lt le gt ge`), boolean `and`/`or`,
//!   arithmetic (`+ - * div idiv`);
//! * the built-ins the evaluation queries use: `collection`, `json-doc`,
//!   `count`, `sum`, `avg`, `min`, `max`, `data`, `dateTime`,
//!   `year-from-dateTime`, `month-from-dateTime`, `day-from-dateTime`.
//!
//! The pipeline is the paper's (§3.1): query string → [`parser`] → AST →
//! [`translate`] → **naive** logical plan (the shapes of the paper's
//! Figs. 3, 5 and 9, complete with `promote`/`data`/`treat` scaffolding),
//! which the `algebra` crate's rewrite rules then optimize.
//!
//! ```
//! use jsoniq::compile;
//!
//! let plan = compile(r#"json-doc("books.json")("bookstore")("book")()"#).unwrap();
//! assert!(plan.explain().contains("keys-or-members"));
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod translate;

pub use error::{ParseError, Result};

/// Parse and translate a query into its naive logical plan.
pub fn compile(query: &str) -> Result<algebra::LogicalPlan> {
    let expr = parser::parse(query)?;
    translate::translate(&expr)
}
