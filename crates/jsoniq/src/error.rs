//! Frontend errors.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ParseError>;

/// Lexing, parsing, or translation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the query text (best effort for translation errors).
    pub offset: usize,
    /// Human-readable description.
    pub msg: String,
}

impl ParseError {
    pub fn new(offset: usize, msg: impl Into<String>) -> Self {
        ParseError {
            offset,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}
