//! Parser robustness and AST/plan invariants.

use jsoniq::parser::parse;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser must never panic, whatever bytes arrive.
    #[test]
    fn parser_never_panics_on_ascii(src in "[ -~]{0,200}") {
        let _ = parse(&src);
    }

    #[test]
    fn parser_never_panics_on_unicode(src in "\\PC{0,100}") {
        let _ = parse(&src);
    }

    /// Structured generator: random-but-valid FLWOR queries must parse
    /// and translate without panicking (translation may reject some —
    /// e.g. aggregates in odd positions — but must do so with an error).
    #[test]
    fn valid_queries_parse_and_translate(
        coll in "[a-z]{1,8}",
        key1 in "[a-z]{1,6}",
        key2 in "[a-z]{1,6}",
        lit in 0i64..1000,
        with_where in any::<bool>(),
        with_group in any::<bool>(),
        with_order in any::<bool>(),
    ) {
        let mut q = format!(
            "for $x in collection(\"/{coll}\")(\"{key1}\")()(\"{key2}\")()\n"
        );
        if with_where {
            q.push_str(&format!("where $x(\"{key1}\") eq {lit}\n"));
        }
        if with_group {
            q.push_str(&format!("group by $g := $x(\"{key2}\")\n"));
        } else if with_order {
            q.push_str(&format!("order by $x(\"{key2}\") descending\n"));
        }
        if with_group {
            q.push_str("return count($x(\"v\"))");
        } else {
            q.push_str("return $x");
        }
        let ast = parse(&q).expect("generated query must parse");
        let plan = jsoniq::translate::translate(&ast).expect("generated query must translate");
        // The naive plan always starts from a distribute over a chain
        // rooted at the empty tuple source.
        let shape = plan.shape();
        prop_assert_eq!(shape.first().copied(), Some("distribute"));
        prop_assert_eq!(shape.last().copied(), Some("empty-tuple-source"));
    }

    /// Path expressions of arbitrary depth parse into the right number of
    /// steps and translate cleanly.
    #[test]
    fn deep_paths_translate(keys in prop::collection::vec("[a-z]{1,5}", 1..8)) {
        let mut q = String::from("json-doc(\"f.json\")");
        for k in &keys {
            q.push_str(&format!("(\"{k}\")"));
        }
        let ast = parse(&q).expect("parses");
        let plan = jsoniq::translate::translate(&ast).expect("translates");
        let text = plan.explain();
        for k in &keys {
            prop_assert!(text.contains(&format!("\"{k}\"")), "{text}");
        }
    }
}

#[test]
fn error_offsets_point_into_the_source() {
    for src in [
        "for $x retur 1",
        "1 +++ 2",
        "count(",
        "$x(\"unclosed",
        "for $x in",
    ] {
        match parse(src) {
            Err(e) => assert!(e.offset <= src.len(), "offset {} beyond {src:?}", e.offset),
            Ok(_) => panic!("{src:?} should not parse"),
        }
    }
}
