//! Stage-1 cost breakdown for one JSON file: raw classification
//! throughput (full and fused index profiles) per kernel, then full
//! index-build throughput per mode with the kernels interleaved
//! round-robin so host throttling penalizes them all equally.
//!
//! Usage: `stage1_breakdown <file.json> [byte-cap]`
//!
//! The optional byte cap truncates the buffer (at a record boundary,
//! re-closed to stay valid JSON in the GHCN `{"root":[{...,"results":
//! [...]}]}` shape) to keep the working set cache-resident — useful for
//! separating compute-bound from memory-bandwidth-bound behavior.

use jdm::index::StructuralIndex;
use jdm::stage1::{IndexMasks, Kernel, Stage1Masks, Stage1Mode};

fn main() {
    let path = std::env::args()
        .nth(1)
        .expect("usage: stage1_breakdown <file.json> [byte-cap]");
    let mut buf = std::fs::read(&path).unwrap();
    if let Some(cap) = std::env::args()
        .nth(2)
        .and_then(|s| s.parse::<usize>().ok())
    {
        if buf.len() > cap {
            let cut = buf[..cap].iter().rposition(|&b| b == b'}').unwrap() + 1;
            buf.truncate(cut);
            buf.extend_from_slice(b"]}]}");
        }
    }
    let kernels = [Kernel::Swar, Kernel::Sse2, Kernel::Avx2];
    for k in kernels {
        let mut m = Stage1Masks::default();
        m.scan_into(&buf, k); // warm
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t = std::time::Instant::now();
            m.scan_into(&buf, k);
            best = best.min(t.elapsed().as_secs_f64());
        }
        println!(
            "scan full  {:>5}: {:.3} GB/s",
            k.label(),
            buf.len() as f64 / best / 1e9
        );
    }
    for k in kernels {
        let mut m = IndexMasks::default();
        m.scan_into(&buf, k); // warm
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t = std::time::Instant::now();
            m.scan_into(&buf, k);
            best = best.min(t.elapsed().as_secs_f64());
        }
        println!(
            "scan index {:>5}: {:.3} GB/s",
            k.label(),
            buf.len() as f64 / best / 1e9
        );
    }
    let modes = [Stage1Mode::Scalar, Stage1Mode::Swar, Stage1Mode::Avx2];
    let mut best = [f64::INFINITY; 3];
    let mut tape = Vec::new();
    for _ in 0..25 {
        for (i, &mode) in modes.iter().enumerate() {
            let t = std::time::Instant::now();
            let idx = StructuralIndex::build_reusing_with(&buf, tape, mode).unwrap();
            best[i] = best[i].min(t.elapsed().as_secs_f64());
            tape = idx.into_tape();
        }
    }
    for (i, &mode) in modes.iter().enumerate() {
        println!(
            "build {mode:?}: {:.3} GB/s",
            buf.len() as f64 / best[i] / 1e9
        );
    }
    println!("swar/scalar ratio: {:.2}x", best[0] / best[1]);
}
