//! Error type shared by the parsing, navigation and binary layers.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, JdmError>;

/// Errors produced by the JSON data-model layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JdmError {
    /// Malformed JSON text. Carries the byte offset of the problem and a
    /// human-readable description.
    Parse { offset: usize, msg: String },
    /// Input ended in the middle of a value.
    UnexpectedEof { offset: usize },
    /// A number literal could not be represented (overflow, bad format).
    BadNumber { offset: usize },
    /// Invalid UTF-8 inside a string literal.
    BadUtf8 { offset: usize },
    /// Malformed binary item data.
    BadBinary(String),
    /// An `xs:dateTime` literal did not match any accepted format.
    BadDateTime(String),
    /// Dynamic type error while navigating (e.g. `value` applied to an
    /// atomic). Mirrors JSONiq's behaviour of raising a type error rather
    /// than returning the empty sequence in strict contexts.
    Type(String),
}

impl fmt::Display for JdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JdmError::Parse { offset, msg } => {
                write!(f, "JSON parse error at byte {offset}: {msg}")
            }
            JdmError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of input at byte {offset}")
            }
            JdmError::BadNumber { offset } => write!(f, "invalid number at byte {offset}"),
            JdmError::BadUtf8 { offset } => write!(f, "invalid UTF-8 at byte {offset}"),
            JdmError::BadBinary(msg) => write!(f, "bad binary item: {msg}"),
            JdmError::BadDateTime(s) => write!(f, "invalid dateTime literal: {s:?}"),
            JdmError::Type(msg) => write!(f, "type error: {msg}"),
        }
    }
}

impl std::error::Error for JdmError {}

impl JdmError {
    /// Convenience constructor for [`JdmError::Parse`].
    pub fn parse(offset: usize, msg: impl Into<String>) -> Self {
        JdmError::Parse {
            offset,
            msg: msg.into(),
        }
    }
}
