//! Tagged binary item format — the Hyracks "pointable" analog.
//!
//! Items are serialized into frames in a self-describing, navigable layout
//! so operators can compare, hash, and navigate **without deserializing**
//! ([`ItemRef`] is a zero-copy cursor). Layout (all integers little-endian):
//!
//! ```text
//! tag  0x00 null
//!      0x01 false
//!      0x02 true
//!      0x03 int      : i64
//!      0x04 double   : f64
//!      0x05 string   : u32 len, bytes
//!      0x06 array    : u32 payload_len, u32 count, count × u32 member
//!                      offsets (relative to the data area), members
//!      0x07 object   : u32 payload_len, u32 count, count × u32 pair
//!                      offsets, pairs (u32 key_len, key bytes, value)
//!      0x08 dateTime : i32 year, u8 month, day, hour, minute, second
//!      0x09 sequence : same layout as array
//! ```
//!
//! The offset tables give O(1) array indexing (JSONiq `$a(i)`), which the
//! paper's value expression relies on.

use crate::datetime::DateTime;
use crate::error::{JdmError, Result};
use crate::item::Item;
use crate::number::Number;

/// Type tags. Public so the dataflow layer can switch on them cheaply.
pub mod tag {
    /// JSON `null`.
    pub const NULL: u8 = 0x00;
    /// JSON `false`.
    pub const FALSE: u8 = 0x01;
    /// JSON `true`.
    pub const TRUE: u8 = 0x02;
    /// 64-bit integer payload.
    pub const INT: u8 = 0x03;
    /// IEEE-754 double payload.
    pub const DOUBLE: u8 = 0x04;
    /// Length-prefixed UTF-8 string.
    pub const STRING: u8 = 0x05;
    /// Array with an offset table.
    pub const ARRAY: u8 = 0x06;
    /// Object with an offset table over key/value pairs.
    pub const OBJECT: u8 = 0x07;
    /// `xs:dateTime` atomic.
    pub const DATETIME: u8 = 0x08;
    /// XQuery sequence (same layout as an array).
    pub const SEQUENCE: u8 = 0x09;
}

/// Serialize `item` onto the end of `out`.
pub fn write_item(item: &Item, out: &mut Vec<u8>) {
    match item {
        Item::Null => out.push(tag::NULL),
        Item::Boolean(false) => out.push(tag::FALSE),
        Item::Boolean(true) => out.push(tag::TRUE),
        Item::Number(Number::Int(i)) => {
            out.push(tag::INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Item::Number(Number::Double(d)) => {
            out.push(tag::DOUBLE);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Item::String(s) => {
            out.push(tag::STRING);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Item::DateTime(d) => {
            out.push(tag::DATETIME);
            out.extend_from_slice(&d.year.to_le_bytes());
            out.extend_from_slice(&[d.month, d.day, d.hour, d.minute, d.second]);
        }
        Item::Array(members) => write_listlike(tag::ARRAY, members, out),
        Item::Sequence(members) => write_listlike(tag::SEQUENCE, members, out),
        Item::Object(pairs) => {
            out.push(tag::OBJECT);
            let payload_pos = out.len();
            out.extend_from_slice(&0u32.to_le_bytes()); // payload_len patch
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            let table_pos = out.len();
            out.resize(out.len() + 4 * pairs.len(), 0);
            let data_start = out.len();
            for (i, (k, v)) in pairs.iter().enumerate() {
                let off = (out.len() - data_start) as u32;
                out[table_pos + 4 * i..table_pos + 4 * (i + 1)].copy_from_slice(&off.to_le_bytes());
                out.extend_from_slice(&(k.len() as u32).to_le_bytes());
                out.extend_from_slice(k.as_bytes());
                write_item(v, out);
            }
            let payload_len = (out.len() - payload_pos - 4) as u32;
            out[payload_pos..payload_pos + 4].copy_from_slice(&payload_len.to_le_bytes());
        }
    }
}

fn write_listlike(t: u8, members: &[Item], out: &mut Vec<u8>) {
    out.push(t);
    let payload_pos = out.len();
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&(members.len() as u32).to_le_bytes());
    let table_pos = out.len();
    out.resize(out.len() + 4 * members.len(), 0);
    let data_start = out.len();
    for (i, m) in members.iter().enumerate() {
        let off = (out.len() - data_start) as u32;
        out[table_pos + 4 * i..table_pos + 4 * (i + 1)].copy_from_slice(&off.to_le_bytes());
        write_item(m, out);
    }
    let payload_len = (out.len() - payload_pos - 4) as u32;
    out[payload_pos..payload_pos + 4].copy_from_slice(&payload_len.to_le_bytes());
}

/// Build a serialized sequence directly from already-serialized member
/// items (used by group-by runtimes that accumulate member bytes).
pub fn write_sequence_from_parts(parts: &[&[u8]], out: &mut Vec<u8>) {
    out.push(tag::SEQUENCE);
    let payload_pos = out.len();
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
    let mut off = 0u32;
    for p in parts {
        out.extend_from_slice(&off.to_le_bytes());
        off += p.len() as u32;
    }
    for p in parts {
        out.extend_from_slice(p);
    }
    let payload_len = (out.len() - payload_pos - 4) as u32;
    out[payload_pos..payload_pos + 4].copy_from_slice(&payload_len.to_le_bytes());
}

/// Serialize into a fresh buffer.
pub fn to_bytes(item: &Item) -> Vec<u8> {
    let mut v = Vec::with_capacity(64);
    write_item(item, &mut v);
    v
}

/// Total serialized length of the item starting at `buf[0]`, without
/// walking its contents (O(1) for every type).
pub fn item_len(buf: &[u8]) -> Result<usize> {
    let t = *buf
        .first()
        .ok_or_else(|| JdmError::BadBinary("empty".into()))?;
    let len = match t {
        tag::NULL | tag::FALSE | tag::TRUE => 1,
        tag::INT | tag::DOUBLE => 9,
        tag::DATETIME => 10,
        tag::STRING => 5 + read_u32(buf, 1)? as usize,
        tag::ARRAY | tag::OBJECT | tag::SEQUENCE => 5 + read_u32(buf, 1)? as usize,
        other => return Err(JdmError::BadBinary(format!("bad tag {other:#x}"))),
    };
    if buf.len() < len {
        return Err(JdmError::BadBinary("truncated item".into()));
    }
    Ok(len)
}

#[inline]
fn read_u32(buf: &[u8], at: usize) -> Result<u32> {
    buf.get(at..at + 4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
        .ok_or_else(|| JdmError::BadBinary("truncated length".into()))
}

/// A zero-copy cursor over one serialized item.
#[derive(Debug, Clone, Copy)]
pub struct ItemRef<'a> {
    buf: &'a [u8],
}

impl<'a> ItemRef<'a> {
    /// Wrap a buffer whose first byte is an item tag. Validates only the
    /// outermost envelope; nested structure is validated lazily.
    pub fn new(buf: &'a [u8]) -> Result<Self> {
        let len = item_len(buf)?;
        Ok(ItemRef { buf: &buf[..len] })
    }

    /// The exact bytes of this item (useful for re-appending into frames).
    #[inline]
    pub fn bytes(&self) -> &'a [u8] {
        self.buf
    }

    /// The type tag.
    #[inline]
    pub fn tag(&self) -> u8 {
        self.buf[0]
    }

    /// True for arrays and objects.
    pub fn is_json_item(&self) -> bool {
        matches!(self.tag(), tag::ARRAY | tag::OBJECT)
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&'a str> {
        if self.tag() != tag::STRING {
            return None;
        }
        let len = read_u32(self.buf, 1).ok()? as usize;
        std::str::from_utf8(self.buf.get(5..5 + len)?).ok()
    }

    /// Numeric payload.
    pub fn as_number(&self) -> Option<Number> {
        match self.tag() {
            tag::INT => Some(Number::Int(i64::from_le_bytes(
                self.buf.get(1..9)?.try_into().ok()?,
            ))),
            tag::DOUBLE => Some(Number::Double(f64::from_le_bytes(
                self.buf.get(1..9)?.try_into().ok()?,
            ))),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self.tag() {
            tag::TRUE => Some(true),
            tag::FALSE => Some(false),
            _ => None,
        }
    }

    /// DateTime payload.
    pub fn as_datetime(&self) -> Option<DateTime> {
        if self.tag() != tag::DATETIME {
            return None;
        }
        let b = self.buf;
        Some(DateTime {
            year: i32::from_le_bytes(b.get(1..5)?.try_into().ok()?),
            month: *b.get(5)?,
            day: *b.get(6)?,
            hour: *b.get(7)?,
            minute: *b.get(8)?,
            second: *b.get(9)?,
        })
    }

    /// Member / pair count for arrays, objects and sequences.
    pub fn count(&self) -> Option<usize> {
        match self.tag() {
            tag::ARRAY | tag::OBJECT | tag::SEQUENCE => Some(read_u32(self.buf, 5).ok()? as usize),
            _ => None,
        }
    }

    fn table_start(&self) -> usize {
        9 // tag + payload_len + count
    }

    fn data_start(&self) -> Option<usize> {
        Some(self.table_start() + 4 * self.count()?)
    }

    /// O(1) member access for arrays/sequences (0-based here; the JSONiq
    /// 1-based `value` adjustment happens in the expression layer).
    pub fn member(&self, idx: usize) -> Option<ItemRef<'a>> {
        if !matches!(self.tag(), tag::ARRAY | tag::SEQUENCE) || idx >= self.count()? {
            return None;
        }
        let off = read_u32(self.buf, self.table_start() + 4 * idx).ok()? as usize;
        let start = self.data_start()? + off;
        ItemRef::new(self.buf.get(start..)?).ok()
    }

    /// Object key lookup (first occurrence wins, matching the tree model).
    pub fn get_key(&self, key: &str) -> Option<ItemRef<'a>> {
        if self.tag() != tag::OBJECT {
            return None;
        }
        for i in 0..self.count()? {
            let (k, v) = self.pair(i)?;
            if k == key {
                return Some(v);
            }
        }
        None
    }

    /// The i-th key/value pair of an object.
    pub fn pair(&self, idx: usize) -> Option<(&'a str, ItemRef<'a>)> {
        if self.tag() != tag::OBJECT || idx >= self.count()? {
            return None;
        }
        let off = read_u32(self.buf, self.table_start() + 4 * idx).ok()? as usize;
        let start = self.data_start()? + off;
        let klen = read_u32(self.buf, start).ok()? as usize;
        let key = std::str::from_utf8(self.buf.get(start + 4..start + 4 + klen)?).ok()?;
        let val = ItemRef::new(self.buf.get(start + 4 + klen..)?).ok()?;
        Some((key, val))
    }

    /// Iterate members (arrays/sequences) or values (objects).
    pub fn members(&self) -> MemberIter<'a> {
        MemberIter {
            item: *self,
            idx: 0,
            count: self.count().unwrap_or(0),
        }
    }

    /// Deserialize into the tree model.
    pub fn to_item(&self) -> Result<Item> {
        match self.tag() {
            tag::NULL => Ok(Item::Null),
            tag::FALSE => Ok(Item::Boolean(false)),
            tag::TRUE => Ok(Item::Boolean(true)),
            tag::INT | tag::DOUBLE => self
                .as_number()
                .map(Item::Number)
                .ok_or_else(|| JdmError::BadBinary("bad number".into())),
            tag::STRING => self
                .as_str()
                .map(Item::str)
                .ok_or_else(|| JdmError::BadBinary("bad string".into())),
            tag::DATETIME => self
                .as_datetime()
                .map(Item::DateTime)
                .ok_or_else(|| JdmError::BadBinary("bad dateTime".into())),
            tag::ARRAY | tag::SEQUENCE => {
                let n = self.count().unwrap_or(0);
                let mut v = Vec::with_capacity(n);
                for i in 0..n {
                    let m = self
                        .member(i)
                        .ok_or_else(|| JdmError::BadBinary("bad member".into()))?;
                    v.push(m.to_item()?);
                }
                Ok(if self.tag() == tag::ARRAY {
                    Item::Array(v)
                } else {
                    Item::Sequence(v)
                })
            }
            tag::OBJECT => {
                let n = self.count().unwrap_or(0);
                let mut pairs = Vec::with_capacity(n);
                for i in 0..n {
                    let (k, v) = self
                        .pair(i)
                        .ok_or_else(|| JdmError::BadBinary("bad pair".into()))?;
                    pairs.push((k.into(), v.to_item()?));
                }
                Ok(Item::Object(pairs))
            }
            other => Err(JdmError::BadBinary(format!("bad tag {other:#x}"))),
        }
    }
}

/// Iterator over container members, yielding [`ItemRef`]s.
pub struct MemberIter<'a> {
    item: ItemRef<'a>,
    idx: usize,
    count: usize,
}

impl<'a> Iterator for MemberIter<'a> {
    type Item = ItemRef<'a>;

    fn next(&mut self) -> Option<ItemRef<'a>> {
        if self.idx >= self.count {
            return None;
        }
        let out = match self.item.tag() {
            tag::ARRAY | tag::SEQUENCE => self.item.member(self.idx),
            tag::OBJECT => self.item.pair(self.idx).map(|(_, v)| v),
            _ => None,
        };
        self.idx += 1;
        out
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.count - self.idx;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_item;

    fn round_trip(src: &str) -> Item {
        let item = parse_item(src.as_bytes()).unwrap();
        let bytes = to_bytes(&item);
        let back = ItemRef::new(&bytes).unwrap().to_item().unwrap();
        assert_eq!(item, back, "round trip mismatch for {src}");
        item
    }

    #[test]
    fn round_trips_scalars() {
        round_trip("null");
        round_trip("true");
        round_trip("false");
        round_trip("42");
        round_trip("-7.25");
        round_trip("\"hello world\"");
        round_trip("\"\"");
    }

    #[test]
    fn round_trips_containers() {
        round_trip("[]");
        round_trip("{}");
        round_trip(r#"[1, [2, [3, {"x": null}]], "s"]"#);
        round_trip(r#"{"a": {"b": {"c": [true, false]}}}"#);
    }

    #[test]
    fn round_trips_datetime_and_sequence() {
        let dt = DateTime::parse("20131225T06:30").unwrap();
        let seq = Item::seq([Item::DateTime(dt), Item::int(1)]);
        let bytes = to_bytes(&seq);
        let back = ItemRef::new(&bytes).unwrap().to_item().unwrap();
        assert_eq!(back, seq);
    }

    #[test]
    fn member_access_is_positional() {
        let item = parse_item(br#"[10, 20, 30]"#).unwrap();
        let bytes = to_bytes(&item);
        let r = ItemRef::new(&bytes).unwrap();
        assert_eq!(r.count(), Some(3));
        assert_eq!(r.member(1).unwrap().as_number(), Some(Number::Int(20)));
        assert!(r.member(3).is_none());
    }

    #[test]
    fn object_key_lookup() {
        let item = parse_item(br#"{"alpha": 1, "beta": "two", "alpha": 99}"#).unwrap();
        let bytes = to_bytes(&item);
        let r = ItemRef::new(&bytes).unwrap();
        assert_eq!(r.get_key("beta").unwrap().as_str(), Some("two"));
        // First occurrence wins, like the tree model.
        assert_eq!(
            r.get_key("alpha").unwrap().as_number(),
            Some(Number::Int(1))
        );
        assert!(r.get_key("gamma").is_none());
    }

    #[test]
    fn item_len_is_consistent() {
        for src in [
            "null",
            "3",
            r#""abc""#,
            r#"[1,2]"#,
            r#"{"k": [1, {"n": 2}]}"#,
        ] {
            let bytes = to_bytes(&parse_item(src.as_bytes()).unwrap());
            assert_eq!(item_len(&bytes).unwrap(), bytes.len(), "for {src}");
        }
    }

    #[test]
    fn items_concatenate_cleanly() {
        // Frames store items back to back; item_len must delimit them.
        let a = to_bytes(&Item::int(1));
        let b = to_bytes(&parse_item(br#"{"x": [1,2,3]}"#).unwrap());
        let mut buf = a.clone();
        buf.extend_from_slice(&b);
        let first_len = item_len(&buf).unwrap();
        assert_eq!(first_len, a.len());
        let second = ItemRef::new(&buf[first_len..]).unwrap();
        assert_eq!(second.get_key("x").unwrap().count(), Some(3));
    }

    #[test]
    fn rejects_truncated_and_garbage() {
        assert!(ItemRef::new(&[]).is_err());
        assert!(ItemRef::new(&[0xFF]).is_err());
        let bytes = to_bytes(&parse_item(br#"[1,2,3]"#).unwrap());
        assert!(ItemRef::new(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn member_iter_visits_all() {
        let bytes = to_bytes(&parse_item(br#"{"a": 1, "b": 2}"#).unwrap());
        let r = ItemRef::new(&bytes).unwrap();
        let vals: Vec<Number> = r.members().map(|m| m.as_number().unwrap()).collect();
        assert_eq!(vals, vec![Number::Int(1), Number::Int(2)]);
    }
}
