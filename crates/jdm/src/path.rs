//! Projection paths — the DATASCAN "second argument" of the paper.
//!
//! A [`ProjectionPath`] is a sequence of navigation steps taken straight out
//! of the query's leading path expression, e.g. for
//! `collection("/sensors")("root")()("results")()` the pushed-down path is
//! `[Key("root"), AllMembers, Key("results"), AllMembers]`.
//!
//! The pipelining rules (§4.2) extend the DATASCAN operator with such a
//! path; the runtime then uses [`crate::project`] to stream only the
//! matching sub-items out of each file.

use std::fmt;

/// One navigation step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PathStep {
    /// JSONiq `value` on an object: `("key")`.
    Key(Box<str>),
    /// JSONiq `value` on an array with a 1-based index: `(i)`.
    Index(i64),
    /// JSONiq `keys-or-members` applied to an *array*: `()` — emits every
    /// member. (Applied to an object it would emit keys; the projecting
    /// scan only pushes the array form down, matching the paper's plans.)
    AllMembers,
}

/// A sequence of [`PathStep`]s pushed into a data scan.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ProjectionPath {
    steps: Vec<PathStep>,
}

impl ProjectionPath {
    /// The empty path (scan emits whole files).
    pub fn root() -> Self {
        ProjectionPath { steps: Vec::new() }
    }

    /// Build from steps.
    pub fn new(steps: Vec<PathStep>) -> Self {
        ProjectionPath { steps }
    }

    /// Append one step (used by the pipelining rules as they merge path
    /// expressions into the DATASCAN argument one at a time).
    pub fn push(&mut self, step: PathStep) {
        self.steps.push(step);
    }

    /// The steps.
    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    /// True when no navigation is pushed down.
    pub fn is_root(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl fmt::Display for ProjectionPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, "$");
        }
        for s in &self.steps {
            match s {
                PathStep::Key(k) => write!(f, "(\"{k}\")")?,
                PathStep::Index(i) => write!(f, "({i})")?,
                PathStep::AllMembers => write!(f, "()")?,
            }
        }
        Ok(())
    }
}

impl FromIterator<PathStep> for ProjectionPath {
    fn from_iter<T: IntoIterator<Item = PathStep>>(iter: T) -> Self {
        ProjectionPath {
            steps: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_query_syntax() {
        let p: ProjectionPath = [
            PathStep::Key("root".into()),
            PathStep::AllMembers,
            PathStep::Key("results".into()),
            PathStep::AllMembers,
        ]
        .into_iter()
        .collect();
        assert_eq!(p.to_string(), "(\"root\")()(\"results\")()");
        assert_eq!(ProjectionPath::root().to_string(), "$");
    }

    #[test]
    fn push_extends() {
        let mut p = ProjectionPath::root();
        assert!(p.is_root());
        p.push(PathStep::Key("a".into()));
        p.push(PathStep::Index(3));
        assert_eq!(p.len(), 2);
        assert_eq!(p.to_string(), "(\"a\")(3)");
    }
}
