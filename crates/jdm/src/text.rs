//! JSON text serialization (the inverse of [`crate::parse`]).
//!
//! Sequences are serialized as their items separated by newlines — that is
//! how query results are printed, matching VXQuery's serializer behaviour
//! for top-level sequences.

use crate::item::Item;
use std::fmt::{self, Write as _};

/// Serialize an item to compact JSON text.
pub fn to_string(item: &Item) -> String {
    let mut s = String::new();
    write_json(item, &mut s).expect("string formatting cannot fail");
    s
}

/// Serialize with two-space indentation (examples / debugging).
pub fn to_string_pretty(item: &Item) -> String {
    let mut s = String::new();
    write_pretty(item, &mut s, 0).expect("string formatting cannot fail");
    s
}

fn write_json(item: &Item, out: &mut String) -> fmt::Result {
    match item {
        Item::Null => out.push_str("null"),
        Item::Boolean(true) => out.push_str("true"),
        Item::Boolean(false) => out.push_str("false"),
        Item::Number(n) => write!(out, "{n}")?,
        Item::String(s) => write_escaped(s, out),
        Item::DateTime(d) => {
            // dateTime has no JSON form; emit its lexical representation.
            out.push('"');
            write!(out, "{d}")?;
            out.push('"');
        }
        Item::Array(members) => {
            out.push('[');
            for (i, m) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(m, out)?;
            }
            out.push(']');
        }
        Item::Object(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_json(v, out)?;
            }
            out.push('}');
        }
        Item::Sequence(items) => {
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    out.push('\n');
                }
                write_json(it, out)?;
            }
        }
    }
    Ok(())
}

fn write_pretty(item: &Item, out: &mut String, indent: usize) -> fmt::Result {
    const PAD: &str = "  ";
    match item {
        Item::Array(members) if !members.is_empty() => {
            out.push_str("[\n");
            for (i, m) in members.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=indent {
                    out.push_str(PAD);
                }
                write_pretty(m, out, indent + 1)?;
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str(PAD);
            }
            out.push(']');
        }
        Item::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=indent {
                    out.push_str(PAD);
                }
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, out, indent + 1)?;
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str(PAD);
            }
            out.push('}');
        }
        Item::Sequence(items) => {
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    out.push('\n');
                }
                write_pretty(it, out, indent)?;
            }
        }
        other => write_json(other, out)?,
    }
    Ok(())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_item;

    fn rt(src: &str) {
        let item = parse_item(src.as_bytes()).unwrap();
        let text = to_string(&item);
        let back = parse_item(text.as_bytes()).unwrap();
        assert_eq!(item, back, "text round trip for {src}");
    }

    #[test]
    fn round_trips_via_text() {
        rt("null");
        rt(r#"{"a": [1, 2.5, "x\ny", {"b": []}], "c": true}"#);
        rt(r#""quotes \" and \\ backslash""#);
        rt("[\"\\u0001\"]");
    }

    #[test]
    fn compact_output_shape() {
        let item = parse_item(br#"{ "a" : [ 1 , 2 ] }"#).unwrap();
        assert_eq!(to_string(&item), r#"{"a":[1,2]}"#);
    }

    #[test]
    fn sequences_print_one_per_line() {
        let s = Item::seq([Item::int(1), Item::str("x")]);
        assert_eq!(to_string(&s), "1\n\"x\"");
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let item = parse_item(br#"{"a":[1,{"b":2}],"c":{}}"#).unwrap();
        let pretty = to_string_pretty(&item);
        assert!(pretty.contains('\n'));
        assert_eq!(parse_item(pretty.as_bytes()).unwrap(), item);
    }
}
