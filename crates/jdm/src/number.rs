//! JSON numbers with a total order.
//!
//! JSON does not distinguish integers from doubles, but query processing
//! wants exact integer arithmetic for counts and indexes, so [`Number`]
//! keeps the two representations separate and widens only when necessary —
//! the same behaviour as VXQuery's `xs:integer`/`xs:double` promotion.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A JSON number: either an exact 64-bit integer or an IEEE double.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Exact integer.
    Int(i64),
    /// IEEE-754 double. NaN is not constructible from JSON text, but the
    /// total order below handles it defensively (NaN sorts last).
    Double(f64),
}

impl Number {
    /// The value as a double, widening integers.
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(i) => i as f64,
            Number::Double(d) => d,
        }
    }

    /// The value as an integer if it is exactly representable.
    #[inline]
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::Int(i) => Some(i),
            Number::Double(d) if d.fract() == 0.0 && d.abs() < 9.007_199_254_740_992e15 => {
                Some(d as i64)
            }
            Number::Double(_) => None,
        }
    }

    /// True if the two numbers compare equal under numeric promotion
    /// (`1 eq 1.0` is true in JSONiq).
    #[inline]
    pub fn num_eq(self, other: Number) -> bool {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }

    /// Numeric comparison under promotion; NaN sorts after everything.
    pub fn num_cmp(self, other: Number) -> Ordering {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a.cmp(&b),
            _ => {
                let (a, b) = (self.as_f64(), other.as_f64());
                a.partial_cmp(&b)
                    .unwrap_or_else(|| match (a.is_nan(), b.is_nan()) {
                        (true, true) => Ordering::Equal,
                        (true, false) => Ordering::Greater,
                        (false, true) => Ordering::Less,
                        (false, false) => unreachable!("partial_cmp failed on non-NaN"),
                    })
            }
        }
    }

    /// Addition with integer-exactness preserved when both sides are ints
    /// and the sum does not overflow. (Named after the XQuery operator;
    /// intentionally not the `std::ops` trait — these can fail/widen.)
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Number) -> Number {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => match a.checked_add(b) {
                Some(s) => Number::Int(s),
                None => Number::Double(a as f64 + b as f64),
            },
            _ => Number::Double(self.as_f64() + other.as_f64()),
        }
    }

    /// Subtraction (same promotion policy as [`Number::add`]).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Number) -> Number {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => match a.checked_sub(b) {
                Some(s) => Number::Int(s),
                None => Number::Double(a as f64 - b as f64),
            },
            _ => Number::Double(self.as_f64() - other.as_f64()),
        }
    }

    /// Multiplication (same promotion policy as [`Number::add`]).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Number) -> Number {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => match a.checked_mul(b) {
                Some(s) => Number::Int(s),
                None => Number::Double(a as f64 * b as f64),
            },
            _ => Number::Double(self.as_f64() * other.as_f64()),
        }
    }

    /// XQuery `div`: always a double (per spec, `div` on integers yields a
    /// decimal; we approximate decimals with doubles).
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Number) -> Number {
        Number::Double(self.as_f64() / other.as_f64())
    }

    /// XQuery `idiv`: integer division, truncating toward zero.
    pub fn idiv(self, other: Number) -> Option<Number> {
        match (self.as_i64(), other.as_i64()) {
            (Some(_), Some(0)) => None,
            (Some(a), Some(b)) => Some(Number::Int(a / b)),
            _ => {
                let q = self.as_f64() / other.as_f64();
                if q.is_finite() {
                    Some(Number::Int(q.trunc() as i64))
                } else {
                    None
                }
            }
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        self.num_cmp(*other) == Ordering::Equal
    }
}
impl Eq for Number {}

impl PartialOrd for Number {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Number {
    fn cmp(&self, other: &Self) -> Ordering {
        self.num_cmp(*other)
    }
}

impl Hash for Number {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Numbers that compare equal must hash equal: hash the double bits
        // of the canonical value, mapping -0.0 to +0.0, and integers that
        // fit exactly through the integer path.
        match self.as_i64() {
            Some(i) => {
                state.write_u8(0);
                state.write_i64(i);
            }
            None => {
                let d = self.as_f64();
                let d = if d == 0.0 { 0.0 } else { d };
                state.write_u8(1);
                state.write_u64(d.to_bits());
            }
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::Double(d) => {
                if d.fract() == 0.0 && d.is_finite() && d.abs() < 1e15 {
                    // Keep a trailing ".0" marker off — JSON output of 2.0
                    // as "2" is valid JSON and matches most serializers'
                    // shortest-round-trip behaviour closely enough.
                    write!(f, "{d}")
                } else {
                    write!(f, "{d}")
                }
            }
        }
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        Number::Int(v)
    }
}
impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number::Double(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(n: Number) -> u64 {
        let mut h = DefaultHasher::new();
        n.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_double_equality_promotes() {
        assert_eq!(Number::Int(1), Number::Double(1.0));
        assert_ne!(Number::Int(1), Number::Double(1.5));
    }

    #[test]
    fn equal_numbers_hash_equal() {
        assert_eq!(hash_of(Number::Int(42)), hash_of(Number::Double(42.0)));
        assert_eq!(hash_of(Number::Double(0.0)), hash_of(Number::Double(-0.0)));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            Number::Double(2.5),
            Number::Int(3),
            Number::Int(-1),
            Number::Double(f64::NAN),
            Number::Double(0.0),
        ];
        v.sort();
        assert_eq!(v[0], Number::Int(-1));
        assert_eq!(v[1], Number::Double(0.0));
        assert_eq!(v[2], Number::Double(2.5));
        assert_eq!(v[3], Number::Int(3));
        assert!(v[4].as_f64().is_nan());
    }

    #[test]
    fn arithmetic_preserves_ints() {
        assert_eq!(Number::Int(2).add(Number::Int(3)), Number::Int(5));
        assert_eq!(Number::Int(2).mul(Number::Int(3)), Number::Int(6));
        assert_eq!(Number::Int(7).sub(Number::Int(9)), Number::Int(-2));
        match Number::Int(1).div(Number::Int(2)) {
            Number::Double(d) => assert_eq!(d, 0.5),
            _ => panic!("div must produce a double"),
        }
    }

    #[test]
    fn overflow_widens_to_double() {
        let big = Number::Int(i64::MAX);
        match big.add(Number::Int(1)) {
            Number::Double(d) => assert!(d >= i64::MAX as f64),
            Number::Int(_) => panic!("expected widening"),
        }
    }

    #[test]
    fn idiv_truncates_and_rejects_zero() {
        assert_eq!(Number::Int(7).idiv(Number::Int(2)), Some(Number::Int(3)));
        assert_eq!(Number::Int(-7).idiv(Number::Int(2)), Some(Number::Int(-3)));
        assert_eq!(Number::Int(7).idiv(Number::Int(0)), None);
    }

    #[test]
    fn as_i64_rejects_fractions() {
        assert_eq!(Number::Double(2.0).as_i64(), Some(2));
        assert_eq!(Number::Double(2.5).as_i64(), None);
        assert_eq!(Number::Double(1e300).as_i64(), None);
    }
}
