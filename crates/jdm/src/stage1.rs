//! Vectorized stage-1 structural scanning.
//!
//! This is the simdjson-style (Langdale & Lemire, *Parsing Gigabytes of
//! JSON per Second*) front half of the two-stage parse: the input is
//! processed in 64-byte blocks and each block is summarized as a handful
//! of bitmasks — one bit per byte — that the tape builder
//! ([`crate::index::StructuralIndex`]) then consumes instead of touching
//! bytes one at a time.
//!
//! The full per-block mask set ([`BlockMasks`], produced by
//! [`Stage1Masks::scan`]) is:
//!
//! * `backslash` — raw `\` positions (escape analysis input);
//! * `quote` — `"` positions that are **not** escaped, computed with the
//!   carry-propagated odd/even backslash-run trick so escape state flows
//!   across block boundaries;
//! * `in_string` — prefix-XOR of `quote`: a bit is set for the opening
//!   quote and every interior byte of a string, clear on the closing
//!   quote; the sign bit carries the "still inside a string" state into
//!   the next block;
//! * `ws` — JSON whitespace (space, tab, LF, CR), context-free;
//! * `op` — the structural characters `{ } [ ] : ,`, context-free;
//! * `ctrl` — bytes `< 0x20` (must be escaped inside strings);
//! * `nonascii` — bytes `>= 0x80` (UTF-8 validation trigger).
//!
//! Except for `quote`/`in_string`, masks are raw byte classifications;
//! consumers are expected to intersect them with string context as
//! needed.
//!
//! The index builder consumes a *fused* profile of the same
//! classifications ([`IndexMasks`]): a single mask,
//! `interesting = quote | backslash | ctrl | nonascii`. One mask
//! suffices because the builder only scans *forward from a fresh opening
//! quote*: the first interesting byte of the string body decides the
//! whole span — a `"` is an unescaped clean close by construction (any
//! escaping backslash would have been interesting first), anything else
//! sends the string to the scalar slow path. That removes the escape
//! carry pass entirely from the hot profile (and whitespace skipping
//! stays a plain byte loop: it is pure position advance, so any
//! implementation is parity-safe, and real-world compact JSON has 0–1
//! byte whitespace runs where a byte loop beats mask iteration). Both
//! profiles come out of the same classification kernels, and the test
//! suite pins the fused profile to the per-byte definition.
//!
//! Three interchangeable kernels produce the per-block classifications:
//! a per-byte scalar reference, a portable SWAR kernel (plain `u64`
//! arithmetic, no platform dependence), and `x86_64` SSE2/AVX2 kernels
//! behind runtime feature detection. All kernels must produce
//! bit-identical masks — the proptest suite enforces this — and the
//! consumer ([`crate::index`]) preserves exact validation parity with the
//! scalar builder by delegating every non-clean case (escapes, control
//! characters, invalid UTF-8, unterminated strings) to the shared scalar
//! routines, so errors and offsets cannot diverge by construction.
//!
//! Kernel selection is controlled by [`Stage1Mode`], settable per scan
//! (`ScanOptions` in `vxq-core`) or process-wide via the `VXQ_STAGE1`
//! environment variable (`auto`, `simd`, `swar`, `scalar`, and the
//! benchmarking overrides `sse2`/`avx2`).

use std::sync::OnceLock;

/// How stage 1 should run; resolved to a concrete [`Kernel`] at scan time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Stage1Mode {
    /// Pick the fastest available kernel (AVX2 → SSE2 → SWAR).
    #[default]
    Auto,
    /// Best vector kernel, falling back to SWAR off x86_64.
    Simd,
    /// Force the portable SWAR kernel.
    Swar,
    /// Bypass stage 1 entirely: the builder runs its original per-byte
    /// scalar scan (first-class fallback, exercised in CI).
    Scalar,
    /// Force SSE2 (benchmark override; SWAR off x86_64).
    Sse2,
    /// Force AVX2 (benchmark override; downgrades when not detected).
    Avx2,
}

impl Stage1Mode {
    /// Parse a `VXQ_STAGE1` value. Unknown strings yield `None`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(Stage1Mode::Auto),
            "simd" => Some(Stage1Mode::Simd),
            "swar" => Some(Stage1Mode::Swar),
            "scalar" => Some(Stage1Mode::Scalar),
            "sse2" => Some(Stage1Mode::Sse2),
            "avx2" => Some(Stage1Mode::Avx2),
            _ => None,
        }
    }

    /// The process-wide mode from `VXQ_STAGE1` (read once; `Auto` when
    /// unset or unrecognized).
    pub fn from_env() -> Self {
        static MODE: OnceLock<Stage1Mode> = OnceLock::new();
        *MODE.get_or_init(|| {
            std::env::var("VXQ_STAGE1")
                .ok()
                .and_then(|v| Stage1Mode::parse(&v))
                .unwrap_or_default()
        })
    }

    /// Resolve to a concrete kernel on this machine. Forced vector modes
    /// degrade gracefully (AVX2 → SSE2 → SWAR) so a pinned configuration
    /// never fails to run.
    pub fn resolve(self) -> Kernel {
        match self {
            Stage1Mode::Scalar => Kernel::Scalar,
            Stage1Mode::Swar => Kernel::Swar,
            Stage1Mode::Sse2 => sse2_kernel(),
            Stage1Mode::Avx2 | Stage1Mode::Auto | Stage1Mode::Simd => best_kernel(),
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn sse2_kernel() -> Kernel {
    // SSE2 is part of the x86_64 baseline: always available.
    Kernel::Sse2
}

#[cfg(not(target_arch = "x86_64"))]
fn sse2_kernel() -> Kernel {
    Kernel::Swar
}

#[cfg(target_arch = "x86_64")]
fn best_kernel() -> Kernel {
    if std::arch::is_x86_feature_detected!("avx2") {
        Kernel::Avx2
    } else {
        Kernel::Sse2
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn best_kernel() -> Kernel {
    Kernel::Swar
}

/// A concrete stage-1 implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// No masks; the builder's original per-byte scan.
    Scalar,
    /// Portable `u64` SWAR classification.
    Swar,
    /// `core::arch::x86_64` SSE2 (baseline on x86_64).
    Sse2,
    /// `core::arch::x86_64` AVX2 (runtime-detected).
    Avx2,
}

impl Kernel {
    /// Stable lowercase label for profiles/metrics.
    pub fn label(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Swar => "swar",
            Kernel::Sse2 => "sse2",
            Kernel::Avx2 => "avx2",
        }
    }
}

/// Every kernel that can run on this machine (always includes `Scalar`
/// and `Swar`); used by benches and differential tests to sweep them all.
pub fn available_kernels() -> Vec<Kernel> {
    let mut out = vec![Kernel::Scalar, Kernel::Swar];
    #[cfg(target_arch = "x86_64")]
    {
        out.push(Kernel::Sse2);
        if std::arch::is_x86_feature_detected!("avx2") {
            out.push(Kernel::Avx2);
        }
    }
    out
}

/// The full bitmasks of one 64-byte block. Bit `i` corresponds to byte
/// `block_start + i` (little-endian bit order). Bits past the end of the
/// input (in the final, partial block) are zero in every mask.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockMasks {
    /// Raw `\` positions.
    pub backslash: u64,
    /// Unescaped `"` positions.
    pub quote: u64,
    /// Prefix-XOR of `quote` (open bit and interior set, close bit clear).
    pub in_string: u64,
    /// Space, tab, LF, CR.
    pub ws: u64,
    /// `{ } [ ] : ,`.
    pub op: u64,
    /// Bytes `< 0x20`.
    pub ctrl: u64,
    /// Bytes `>= 0x80`.
    pub nonascii: u64,
}

/// The fused per-block mask the index builder consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexBlock {
    /// `quote | backslash | ctrl | nonascii` — every byte that can end a
    /// clean string span or disqualify it from the mask-only fast path.
    pub interesting: u64,
}

/// Raw, context-free byte classifications of one block — what a kernel
/// produces before the escape/string post-processing derives the final
/// masks. The full profile fills everything but `interesting`; the index
/// profile fills only `interesting`.
#[derive(Debug, Clone, Copy, Default)]
struct RawBlock {
    backslash: u64,
    quote: u64,
    ws: u64,
    op: u64,
    ctrl: u64,
    nonascii: u64,
    interesting: u64,
}

impl RawBlock {
    /// Zero all bits at and above `n` (tail-block padding).
    fn truncate(&mut self, n: usize) {
        debug_assert!(n < 64);
        let valid = (1u64 << n) - 1;
        self.backslash &= valid;
        self.quote &= valid;
        self.ws &= valid;
        self.op &= valid;
        self.ctrl &= valid;
        self.nonascii &= valid;
        self.interesting &= valid;
    }
}

/// The full stage-1 scan result over one document: one [`BlockMasks`]
/// per 64-byte block. Reusable across documents
/// ([`Stage1Masks::scan_into`] keeps the allocation).
#[derive(Debug, Clone, Default)]
pub struct Stage1Masks {
    blocks: Vec<BlockMasks>,
    len: usize,
    kernel: Option<Kernel>,
}

impl Stage1Masks {
    /// Scan `buf` with `kernel` into a fresh mask set.
    pub fn scan(buf: &[u8], kernel: Kernel) -> Self {
        let mut m = Stage1Masks::default();
        m.scan_into(buf, kernel);
        m
    }

    /// Scan `buf` with `kernel`, reusing this value's block storage.
    /// `Kernel::Scalar` runs the per-byte reference classifier (the
    /// builder never asks for masks in scalar mode, but tests do).
    pub fn scan_into(&mut self, buf: &[u8], kernel: Kernel) {
        self.blocks.clear();
        self.len = buf.len();
        self.kernel = Some(kernel);
        let out = &mut self.blocks;
        match kernel {
            Kernel::Scalar => scan_full(buf, out, classify_ref::<true>),
            Kernel::Swar => scan_full(buf, out, classify_swar::<true>),
            #[cfg(target_arch = "x86_64")]
            Kernel::Sse2 => scan_full(buf, out, x86::classify_sse2_full),
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => x86::with_avx2(|c| scan_full(buf, out, c)),
            #[cfg(not(target_arch = "x86_64"))]
            Kernel::Sse2 | Kernel::Avx2 => scan_full(buf, out, classify_swar::<true>),
        }
    }

    /// Length of the scanned input in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the scanned input was empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The per-block masks.
    #[inline]
    pub fn blocks(&self) -> &[BlockMasks] {
        &self.blocks
    }

    /// Kernel that produced these masks (`None` before the first scan).
    #[inline]
    pub fn kernel(&self) -> Option<Kernel> {
        self.kernel
    }

    /// Position of the first byte in `[from, to)` whose bit is set in the
    /// mask selected by `f` from each block. The closure sees raw block
    /// masks; padding bits in the final block are zero, so complemented
    /// masks (e.g. `!ws`) are safe as long as `to <= len`.
    #[inline]
    pub fn first_set(
        &self,
        from: usize,
        to: usize,
        f: impl Fn(&BlockMasks) -> u64,
    ) -> Option<usize> {
        if from >= to {
            return None;
        }
        debug_assert!(to <= self.len);
        let mut blk = from >> 6;
        let last = (to - 1) >> 6;
        let mut m = f(&self.blocks[blk]) & (!0u64 << (from & 63));
        loop {
            if m != 0 {
                let p = (blk << 6) | m.trailing_zeros() as usize;
                return (p < to).then_some(p);
            }
            blk += 1;
            if blk > last {
                return None;
            }
            m = f(&self.blocks[blk]);
        }
    }

    /// First non-whitespace byte at or after `from`.
    #[inline]
    pub fn next_non_ws(&self, from: usize) -> Option<usize> {
        self.first_set(from, self.len, |b| !b.ws)
    }

    /// First unescaped quote at or after `from`.
    #[inline]
    pub fn next_quote(&self, from: usize) -> Option<usize> {
        self.first_set(from, self.len, |b| b.quote)
    }

    /// First control byte (`< 0x20`) in `[from, to)`.
    #[inline]
    pub fn first_ctrl_in(&self, from: usize, to: usize) -> Option<usize> {
        self.first_set(from, to, |b| b.ctrl)
    }

    /// Whether `[from, to)` contains a backslash.
    #[inline]
    pub fn range_has_backslash(&self, from: usize, to: usize) -> bool {
        self.first_set(from, to, |b| b.backslash).is_some()
    }

    /// Whether `[from, to)` contains a byte `>= 0x80`.
    #[inline]
    pub fn range_has_nonascii(&self, from: usize, to: usize) -> bool {
        self.first_set(from, to, |b| b.nonascii).is_some()
    }
}

/// The fused stage-1 scan result the index builder iterates. Reusable
/// across documents ([`IndexMasks::scan_into`] keeps the allocation).
#[derive(Debug, Clone, Default)]
pub struct IndexMasks {
    blocks: Vec<IndexBlock>,
    len: usize,
}

impl IndexMasks {
    /// Scan `buf` with `kernel`, reusing this value's block storage.
    pub fn scan_into(&mut self, buf: &[u8], kernel: Kernel) {
        self.blocks.clear();
        self.len = buf.len();
        scan_index_append(buf, kernel, &mut self.blocks);
    }

    /// Length of the scanned input in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the scanned input was empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The per-block fused masks.
    #[inline]
    pub fn blocks(&self) -> &[IndexBlock] {
        &self.blocks
    }

    /// Position of the first *interesting* byte (quote, backslash,
    /// control, or non-ASCII) at or after `from`. Scanning a string body
    /// forward from its opening quote, this single position decides the
    /// span: a `"` here is an unescaped clean close by construction (an
    /// escaping backslash would have been interesting first), anything
    /// else means the string needs the scalar slow path.
    #[inline(always)]
    pub fn first_interesting(&self, from: usize) -> Option<usize> {
        let mut blk = from >> 6;
        // Padding bits past the input length are zero, so running off the
        // end of `blocks` is the only termination condition needed.
        let mut m = self.blocks.get(blk)?.interesting & (!0u64 << (from & 63));
        loop {
            if m != 0 {
                return Some((blk << 6) | m.trailing_zeros() as usize);
            }
            blk += 1;
            m = self.blocks.get(blk)?.interesting;
        }
    }

    /// Raw `interesting` word for block `blk` (`None` past the end).
    /// Lets a caller with monotonically advancing positions keep its own
    /// running cursor instead of re-deriving the block on every lookup.
    #[inline(always)]
    pub fn interesting_word(&self, blk: usize) -> Option<u64> {
        self.blocks.get(blk).map(|b| b.interesting)
    }
}

/// Append the fused index profile of `buf` to `out`, dispatching on
/// `kernel`. Any trailing partial block is zero-padded, so `buf` must
/// either end at the true end of the document or be cut at a 64-byte
/// boundary.
fn scan_index_append(buf: &[u8], kernel: Kernel, out: &mut Vec<IndexBlock>) {
    match kernel {
        Kernel::Scalar => scan_index(buf, out, classify_ref::<false>),
        Kernel::Swar => scan_index(buf, out, classify_swar::<false>),
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse2 => scan_index(buf, out, x86::classify_sse2_index),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => x86::with_avx2_index(|c| scan_index(buf, out, c)),
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Sse2 | Kernel::Avx2 => scan_index(buf, out, classify_swar::<false>),
    }
}

/// Streaming flavor of [`IndexMasks`]: classifies the input in
/// cache-sized chunks *on demand* instead of one up-front pass. The
/// index builder's byte accesses trail the classifier by at most one
/// chunk, so a fused build effectively reads the document once — the
/// builder's loads hit bytes the classifier just pulled into cache —
/// where an eager whole-file scan streams large documents through
/// memory twice.
pub struct IndexScanner<'a> {
    buf: &'a [u8],
    kernel: Kernel,
    blocks: &'a mut Vec<IndexBlock>,
    /// Bytes classified so far — a multiple of [`IndexScanner::CHUNK`]
    /// until the final chunk, then exactly `buf.len()`.
    scanned: usize,
}

impl<'a> IndexScanner<'a> {
    /// Bytes classified per demand miss: small enough that the chunk is
    /// still L2-resident when the consumer reads the same bytes, large
    /// enough to amortize the kernel dispatch. Must be a multiple of 64.
    const CHUNK: usize = 64 * 1024;

    /// New scanner over `buf`. Block words land in `blocks` (cleared
    /// here; caller-owned so the allocation can be reused across
    /// documents).
    pub fn new(buf: &'a [u8], kernel: Kernel, blocks: &'a mut Vec<IndexBlock>) -> Self {
        blocks.clear();
        IndexScanner {
            buf,
            kernel,
            blocks,
            scanned: 0,
        }
    }

    /// Raw `interesting` word for block `blk` (`None` past the end of
    /// the input), classifying further chunks as needed.
    #[inline(always)]
    pub fn word(&mut self, blk: usize) -> Option<u64> {
        while blk >= self.blocks.len() {
            if self.scanned >= self.buf.len() {
                return None;
            }
            self.extend();
        }
        Some(self.blocks[blk].interesting)
    }

    #[cold]
    fn extend(&mut self) {
        let end = usize::min(self.scanned + Self::CHUNK, self.buf.len());
        scan_index_append(&self.buf[self.scanned..end], self.kernel, self.blocks);
        self.scanned = end;
    }
}

/// Drive `classify` over whole blocks plus one zero-padded tail block,
/// threading the escape and in-string carries and producing the full
/// mask profile.
#[inline(always)]
fn scan_full(
    buf: &[u8],
    out: &mut Vec<BlockMasks>,
    mut classify: impl FnMut(&[u8; 64]) -> RawBlock,
) {
    let mut carry = Carries::default();
    let mut chunks = buf.chunks_exact(64);
    for chunk in &mut chunks {
        let block: &[u8; 64] = chunk.try_into().expect("exact 64-byte chunk");
        let raw = classify(block);
        out.push(derive_full(raw, &mut carry));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 64];
        tail[..rem.len()].copy_from_slice(rem);
        let mut raw = classify(&tail);
        raw.truncate(rem.len());
        out.push(derive_full(raw, &mut carry));
    }
}

/// [`scan_full`]'s twin for the fused index profile — no escape carry,
/// no `in_string` derivation: the raw classifications *are* the result.
#[inline(always)]
fn scan_index(
    buf: &[u8],
    out: &mut Vec<IndexBlock>,
    mut classify: impl FnMut(&[u8; 64]) -> RawBlock,
) {
    let mut chunks = buf.chunks_exact(64);
    for chunk in &mut chunks {
        let block: &[u8; 64] = chunk.try_into().expect("exact 64-byte chunk");
        let raw = classify(block);
        out.push(IndexBlock {
            interesting: raw.interesting,
        });
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 64];
        tail[..rem.len()].copy_from_slice(rem);
        let mut raw = classify(&tail);
        raw.truncate(rem.len());
        out.push(IndexBlock {
            interesting: raw.interesting,
        });
    }
}

/// Cross-block state for the full profile.
#[derive(Default)]
struct Carries {
    prev_escaped: u64,
    in_string: u64,
}

/// Escape/string post-processing for the full profile. Shared by every
/// kernel so the carry logic cannot diverge.
#[inline(always)]
fn derive_full(raw: RawBlock, carry: &mut Carries) -> BlockMasks {
    let escaped = find_escaped(raw.backslash, &mut carry.prev_escaped);
    let quote = raw.quote & !escaped;
    let in_string = prefix_xor(quote) ^ carry.in_string;
    // Sign-extend bit 63: all-ones when the block ends inside a string.
    carry.in_string = ((in_string as i64) >> 63) as u64;
    BlockMasks {
        backslash: raw.backslash,
        quote,
        in_string,
        ws: raw.ws,
        op: raw.op,
        ctrl: raw.ctrl,
        nonascii: raw.nonascii,
    }
}

/// Which characters are escaped by a backslash, with the classic
/// odd/even backslash-run carry (simdjson's `find_escaped`): a character
/// is escaped iff it is preceded by an odd-length run of backslashes.
/// `prev_escaped` carries "first byte of the next block is escaped".
#[inline(always)]
fn find_escaped(backslash: u64, prev_escaped: &mut u64) -> u64 {
    const EVEN: u64 = 0x5555_5555_5555_5555;
    if backslash == 0 {
        let escaped = *prev_escaped;
        *prev_escaped = 0;
        return escaped;
    }
    // A backslash that is itself escaped starts nothing.
    let backslash = backslash & !*prev_escaped;
    let follows_escape = (backslash << 1) | *prev_escaped;
    let odd_sequence_starts = backslash & !EVEN & !follows_escape;
    let (sequences_starting_on_even_bits, carry) = odd_sequence_starts.overflowing_add(backslash);
    *prev_escaped = carry as u64;
    let invert_mask = sequences_starting_on_even_bits << 1;
    (EVEN ^ invert_mask) & follows_escape
}

/// Running XOR from bit 0: output bit `i` = XOR of input bits `0..=i`.
/// Applied to the quote mask this flags "inside a string" (open quote
/// included, close quote excluded). Shift-based so it stays portable (no
/// carry-less multiply needed).
#[inline(always)]
fn prefix_xor(m: u64) -> u64 {
    let mut x = m;
    x ^= x << 1;
    x ^= x << 2;
    x ^= x << 4;
    x ^= x << 8;
    x ^= x << 16;
    x ^= x << 32;
    x
}

// ---------------------------------------------------------------------------
// Scalar reference kernel
// ---------------------------------------------------------------------------

/// Per-byte reference classifier: the ground truth the vector kernels are
/// differentially tested against.
fn classify_ref<const FULL: bool>(block: &[u8; 64]) -> RawBlock {
    let mut r = RawBlock::default();
    for (i, &b) in block.iter().enumerate() {
        let bit = 1u64 << i;
        if FULL {
            match b {
                b'\\' => r.backslash |= bit,
                b'"' => r.quote |= bit,
                b' ' | b'\t' | b'\n' | b'\r' => r.ws |= bit,
                b'{' | b'}' | b'[' | b']' | b':' | b',' => r.op |= bit,
                _ => {}
            }
            if b < 0x20 {
                r.ctrl |= bit;
            }
            if b >= 0x80 {
                r.nonascii |= bit;
            }
        } else if matches!(b, b'"' | b'\\') || !(0x20..0x80).contains(&b) {
            r.interesting |= bit;
        }
    }
    r
}

/// Fully independent per-byte mask construction (its own escape/string
/// state machine, no bit tricks) — used by tests to validate the carry
/// logic itself, not just the kernels.
pub fn reference_masks(buf: &[u8]) -> Stage1Masks {
    let nblocks = buf.len().div_ceil(64);
    let mut blocks = vec![BlockMasks::default(); nblocks];
    let mut escaped = false;
    let mut in_string = false;
    for (i, &b) in buf.iter().enumerate() {
        let (blk, bit) = (i >> 6, 1u64 << (i & 63));
        let m = &mut blocks[blk];
        if b == b'\\' {
            m.backslash |= bit;
        }
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            m.ws |= bit;
        }
        if matches!(b, b'{' | b'}' | b'[' | b']' | b':' | b',') {
            m.op |= bit;
        }
        if b < 0x20 {
            m.ctrl |= bit;
        }
        if b >= 0x80 {
            m.nonascii |= bit;
        }
        if b == b'"' && !escaped {
            m.quote |= bit;
            in_string = !in_string;
        }
        if in_string {
            // Open quote and interior bytes; close quote flipped off above.
            m.in_string |= bit;
        }
        escaped = !escaped && b == b'\\';
    }
    Stage1Masks {
        blocks,
        len: buf.len(),
        kernel: Some(Kernel::Scalar),
    }
}

// ---------------------------------------------------------------------------
// SWAR kernel (portable u64)
// ---------------------------------------------------------------------------

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;
const K7F: u64 = 0x7F7F_7F7F_7F7F_7F7F;

/// `b` replicated into every byte lane.
const fn splat(b: u8) -> u64 {
    LO.wrapping_mul(b as u64)
}

/// Nonzero-lane marker: the MSB of each byte lane of the result is set
/// iff the corresponding lane of `x` is nonzero, where `x7` must be
/// `x & K7F`. `(x7 + 0x7F)` cannot carry across lanes, so this is
/// per-lane exact; non-MSB bits of the result are garbage and must be
/// masked with [`HI`] by the caller (deferred so OR/AND combinations of
/// several markers pay it once).
#[inline(always)]
fn nonzero_lanes(x: u64, x7: u64) -> u64 {
    x7.wrapping_add(K7F) | x
}

/// Nonzero-lane marker for `w ^ splat(B)` — i.e. lane != `B` — valid for
/// `B < 0x80` (all JSON classification targets), where `w7 = w & K7F`.
#[inline(always)]
fn ne_lanes<const B: u8>(w: u64, w7: u64) -> u64 {
    nonzero_lanes(w ^ splat(B), w7 ^ splat(B))
}

/// Gather the high bit of each byte lane into the low 8 bits (bit `i` =
/// lane `i`). The multiplier places the eight partial products at
/// distinct bit positions, so no carries occur and the result is exact.
#[inline(always)]
fn movemask_lanes(marks: u64) -> u64 {
    marks.wrapping_mul(0x0002_0408_1020_4081) >> 56
}

/// Portable SWAR classifier: eight u64 lanes-of-bytes per block.
fn classify_swar<const FULL: bool>(block: &[u8; 64]) -> RawBlock {
    // Lane < 0x20 iff its top three bits are zero.
    const KE0: u64 = 0xE0E0_E0E0_E0E0_E0E0;
    const K60: u64 = 0x6060_6060_6060_6060;
    let mut r = RawBlock::default();
    for (i, word) in block.chunks_exact(8).enumerate() {
        let w = u64::from_le_bytes(word.try_into().expect("8-byte word"));
        let shift = i * 8;
        let w7 = w & K7F;
        // Nonzero marker for the ctrl test (lane >= 0x20 iff any of the
        // top three bits set); inverted it flags ctrl lanes.
        let not_ctrl = nonzero_lanes(w & KE0, w & K60);
        if FULL {
            // `x | 0x04` folds tab (0x09) and CR (0x0D) onto 0x0D and
            // nothing else onto it, so whitespace needs three tests.
            let w4 = w | splat(0x04);
            let w47 = w7 | splat(0x04);
            let not_ws =
                ne_lanes::<b' '>(w, w7) & ne_lanes::<b'\n'>(w, w7) & ne_lanes::<b'\r'>(w4, w47);
            r.ws |= movemask_lanes(!not_ws & HI) << shift;
            r.backslash |= movemask_lanes(!ne_lanes::<b'\\'>(w, w7) & HI) << shift;
            r.quote |= movemask_lanes(!ne_lanes::<b'"'>(w, w7) & HI) << shift;
            let ctrl = !not_ctrl & HI;
            // `x | 0x20` folds `[`→`{` and `]`→`}`; it also folds the
            // control bytes 0x1A→`:` and 0x0C→`,`, which the `& !ctrl`
            // removes (`:`/`,`/brackets already have bit 5 set, so real
            // structural bytes are unaffected by the fold).
            let folded = w | splat(0x20);
            let folded7 = w7 | splat(0x20);
            let not_op = nonzero_lanes(folded ^ splat(b'{'), folded7 ^ splat(b'{'))
                & nonzero_lanes(folded ^ splat(b'}'), folded7 ^ splat(b'}'))
                & nonzero_lanes(folded ^ splat(b':'), folded7 ^ splat(b':'))
                & nonzero_lanes(folded ^ splat(b','), folded7 ^ splat(b','));
            r.op |= movemask_lanes(!not_op & HI & !ctrl) << shift;
            r.ctrl |= movemask_lanes(ctrl) << shift;
            r.nonascii |= movemask_lanes(w & HI) << shift;
        } else {
            // Fused profile: quote | backslash | ctrl | non-ASCII in one
            // extraction.
            let not_qbc = ne_lanes::<b'"'>(w, w7) & ne_lanes::<b'\\'>(w, w7) & not_ctrl;
            r.interesting |= movemask_lanes((!not_qbc | w) & HI) << shift;
        }
    }
    r
}

/// End of the ASCII-digit run starting at `i` — the shared number fast
/// path: both `scan_number_at` (event parser *and* tape builder) advance
/// through digit runs eight bytes at a time with this, keeping the number
/// grammar identical in all stages by construction.
#[inline]
pub(crate) fn digit_run_end(b: &[u8], mut i: usize) -> usize {
    const K76: u64 = 0x7676_7676_7676_7676;
    while i + 8 <= b.len() {
        let w = u64::from_le_bytes(b[i..i + 8].try_into().expect("8-byte word"));
        // Lane != ASCII digit: after `x = w ^ 0x30…`, digits are 0..=9;
        // low7 + 0x76 overflows into the lane's top bit iff low7 > 9, and
        // `| x` catches lanes with the top bit already set. Per-lane exact
        // (sums stay below 0x100).
        let x = w ^ splat(0x30);
        let non_digit = (((x & K7F).wrapping_add(K76)) | x) & HI;
        if non_digit != 0 {
            return i + (non_digit.trailing_zeros() >> 3) as usize;
        }
        i += 8;
    }
    while i < b.len() && b[i].is_ascii_digit() {
        i += 1;
    }
    i
}

// ---------------------------------------------------------------------------
// x86_64 SSE2 / AVX2 kernels
// ---------------------------------------------------------------------------

/// All `core::arch` intrinsics live here; `unsafe` does not escape this
/// module.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::RawBlock;
    use core::arch::x86_64::*;

    /// Full-profile SSE2 classifier. SSE2 is unconditionally available on
    /// x86_64 (baseline feature), so this is a safe function.
    pub(super) fn classify_sse2_full(block: &[u8; 64]) -> RawBlock {
        classify_sse2::<true>(block)
    }

    /// Index-profile SSE2 classifier.
    pub(super) fn classify_sse2_index(block: &[u8; 64]) -> RawBlock {
        classify_sse2::<false>(block)
    }

    /// Run `scan` with the AVX2 full-profile classifier after verifying
    /// CPU support, so a forced `Kernel::Avx2` can never execute illegal
    /// instructions.
    pub(super) fn with_avx2<R>(scan: impl FnOnce(fn(&[u8; 64]) -> RawBlock) -> R) -> R {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "Kernel::Avx2 selected without AVX2 support"
        );
        scan(classify_avx2_full)
    }

    /// [`with_avx2`] for the index profile.
    pub(super) fn with_avx2_index<R>(scan: impl FnOnce(fn(&[u8; 64]) -> RawBlock) -> R) -> R {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "Kernel::Avx2 selected without AVX2 support"
        );
        scan(classify_avx2_index)
    }

    fn classify_avx2_full(block: &[u8; 64]) -> RawBlock {
        // SAFETY: only reachable through `with_avx2`, which asserts AVX2
        // support before handing this function to the scan driver.
        unsafe { classify_avx2::<true>(block) }
    }

    fn classify_avx2_index(block: &[u8; 64]) -> RawBlock {
        // SAFETY: as above, via `with_avx2_index`.
        unsafe { classify_avx2::<false>(block) }
    }

    /// Classify one block with four 16-byte SSE2 vectors.
    fn classify_sse2<const FULL: bool>(block: &[u8; 64]) -> RawBlock {
        let mut r = RawBlock::default();
        for i in 0..4 {
            // SAFETY: `block` is 64 bytes, so `block[i*16..i*16+16]` is in
            // bounds for i in 0..4; `_mm_loadu_si128` has no alignment
            // requirement. SSE2 is part of the x86_64 baseline.
            unsafe {
                let v = _mm_loadu_si128(block.as_ptr().add(i * 16) as *const __m128i);
                let shift = i * 16;
                let mm = |x| (_mm_movemask_epi8(x) as u32 as u64) << shift;
                let quote = _mm_cmpeq_epi8(v, _mm_set1_epi8(b'"' as i8));
                let backslash = _mm_cmpeq_epi8(v, _mm_set1_epi8(b'\\' as i8));
                // Unsigned `v <= 0x1F` via saturating subtract (a signed
                // compare would false-positive on bytes >= 0x80).
                let ctrl =
                    _mm_cmpeq_epi8(_mm_subs_epu8(v, _mm_set1_epi8(0x1F)), _mm_setzero_si128());
                if FULL {
                    let ws = _mm_or_si128(
                        _mm_or_si128(
                            _mm_cmpeq_epi8(v, _mm_set1_epi8(b' ' as i8)),
                            _mm_cmpeq_epi8(v, _mm_set1_epi8(b'\t' as i8)),
                        ),
                        _mm_or_si128(
                            _mm_cmpeq_epi8(v, _mm_set1_epi8(b'\n' as i8)),
                            _mm_cmpeq_epi8(v, _mm_set1_epi8(b'\r' as i8)),
                        ),
                    );
                    r.ws |= mm(ws);
                    r.backslash |= mm(backslash);
                    r.quote |= mm(quote);
                    // Same `| 0x20` bracket/ctrl-folding trick as the SWAR
                    // kernel; ctrl aliases removed below.
                    let folded = _mm_or_si128(v, _mm_set1_epi8(0x20));
                    let op = _mm_or_si128(
                        _mm_or_si128(
                            _mm_cmpeq_epi8(folded, _mm_set1_epi8(b'{' as i8)),
                            _mm_cmpeq_epi8(folded, _mm_set1_epi8(b'}' as i8)),
                        ),
                        _mm_or_si128(
                            _mm_cmpeq_epi8(folded, _mm_set1_epi8(b':' as i8)),
                            _mm_cmpeq_epi8(folded, _mm_set1_epi8(b',' as i8)),
                        ),
                    );
                    r.op |= mm(_mm_andnot_si128(ctrl, op));
                    r.ctrl |= mm(ctrl);
                    // movemask reads the sign bit directly: bytes >= 0x80.
                    r.nonascii |= mm(v);
                } else {
                    // quote|backslash|ctrl|nonascii in one extraction (the
                    // `v` term contributes the sign bits, i.e. non-ASCII).
                    let qbc = _mm_or_si128(_mm_or_si128(quote, backslash), ctrl);
                    r.interesting |= mm(_mm_or_si128(qbc, v));
                }
            }
        }
        r
    }

    /// Classify one block with two 32-byte AVX2 vectors.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn classify_avx2<const FULL: bool>(block: &[u8; 64]) -> RawBlock {
        let mut r = RawBlock::default();
        for i in 0..2 {
            // SAFETY (pointer): `block` is 64 bytes, so the two 32-byte
            // loads are in bounds; `_mm256_loadu_si256` is unaligned.
            let v = _mm256_loadu_si256(block.as_ptr().add(i * 32) as *const __m256i);
            let shift = i * 32;
            let mm = |x| (_mm256_movemask_epi8(x) as u32 as u64) << shift;
            let quote = _mm256_cmpeq_epi8(v, _mm256_set1_epi8(b'"' as i8));
            let backslash = _mm256_cmpeq_epi8(v, _mm256_set1_epi8(b'\\' as i8));
            let ctrl = _mm256_cmpeq_epi8(
                _mm256_subs_epu8(v, _mm256_set1_epi8(0x1F)),
                _mm256_setzero_si256(),
            );
            if FULL {
                let ws = _mm256_or_si256(
                    _mm256_or_si256(
                        _mm256_cmpeq_epi8(v, _mm256_set1_epi8(b' ' as i8)),
                        _mm256_cmpeq_epi8(v, _mm256_set1_epi8(b'\t' as i8)),
                    ),
                    _mm256_or_si256(
                        _mm256_cmpeq_epi8(v, _mm256_set1_epi8(b'\n' as i8)),
                        _mm256_cmpeq_epi8(v, _mm256_set1_epi8(b'\r' as i8)),
                    ),
                );
                r.ws |= mm(ws);
                r.backslash |= mm(backslash);
                r.quote |= mm(quote);
                let folded = _mm256_or_si256(v, _mm256_set1_epi8(0x20));
                let op = _mm256_or_si256(
                    _mm256_or_si256(
                        _mm256_cmpeq_epi8(folded, _mm256_set1_epi8(b'{' as i8)),
                        _mm256_cmpeq_epi8(folded, _mm256_set1_epi8(b'}' as i8)),
                    ),
                    _mm256_or_si256(
                        _mm256_cmpeq_epi8(folded, _mm256_set1_epi8(b':' as i8)),
                        _mm256_cmpeq_epi8(folded, _mm256_set1_epi8(b',' as i8)),
                    ),
                );
                r.op |= mm(_mm256_andnot_si256(ctrl, op));
                r.ctrl |= mm(ctrl);
                r.nonascii |= mm(v);
            } else {
                let qbc = _mm256_or_si256(_mm256_or_si256(quote, backslash), ctrl);
                r.interesting |= mm(_mm256_or_si256(qbc, v));
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_masks_eq(buf: &[u8], a: &Stage1Masks, b: &Stage1Masks, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length mismatch");
        assert_eq!(a.blocks().len(), b.blocks().len(), "{what}: block count");
        for (i, (x, y)) in a.blocks().iter().zip(b.blocks()).enumerate() {
            assert_eq!(
                x,
                y,
                "{what}: block {i} differs on input {:?}",
                String::from_utf8_lossy(buf)
            );
        }
    }

    /// Every kernel against the independent per-byte reference, plus the
    /// fused index profile against the full profile.
    fn check_all_kernels(buf: &[u8]) {
        let reference = reference_masks(buf);
        for k in available_kernels() {
            let got = Stage1Masks::scan(buf, k);
            assert_masks_eq(buf, &reference, &got, k.label());
            let mut idx = IndexMasks::default();
            idx.scan_into(buf, k);
            assert_eq!(idx.len(), got.len());
            // Pin the fused profile to its per-byte definition (note: the
            // full profile's quote mask is escape-filtered; `interesting`
            // wants raw quotes, so recompute from bytes).
            for (i, g) in idx.blocks().iter().enumerate() {
                let mut interesting = 0u64;
                for (j, &b) in buf[i * 64..].iter().take(64).enumerate() {
                    if matches!(b, b'"' | b'\\') || !(0x20..0x80).contains(&b) {
                        interesting |= 1u64 << j;
                    }
                }
                assert_eq!(
                    g.interesting,
                    interesting,
                    "{}: idx interesting {i}",
                    k.label()
                );
            }
        }
    }

    #[test]
    fn kernels_agree_on_edge_corpus() {
        let mut corpus: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            br#""ab""#.to_vec(),
            br#"{"a": [1, "x\n", true], "b\\": null}"#.to_vec(),
            br#""\\\\\\""#.to_vec(),
            br#""\"""#.to_vec(),
            vec![0x01, 0x02, b'"', 0x03, b'"'],
            vec![0xFF; 100],
            (0u8..=255).collect(),
        ];
        // Escapes, quotes and strings straddling the 64-byte boundary, and
        // lengths that are not multiples of 64.
        for pad in [60usize, 61, 62, 63, 64, 65] {
            let mut v = vec![b' '; pad];
            v.extend_from_slice(br#""abc\"def" : [1,2]"#);
            corpus.push(v);
            let mut v = vec![b'['; 1];
            v.extend(vec![b' '; pad]);
            v.extend_from_slice(b"\"x\\\\\"");
            v.push(b']');
            corpus.push(v);
            // A backslash run ending exactly at the block boundary.
            let mut v = vec![b' '; pad.saturating_sub(2)];
            v.push(b'"');
            v.extend(vec![b'\\'; 5]);
            v.push(b'"');
            v.push(b'"');
            corpus.push(v);
        }
        for doc in &corpus {
            check_all_kernels(doc);
        }
    }

    #[test]
    fn in_string_covers_open_and_interior() {
        let m = Stage1Masks::scan(br#""ab""#, Kernel::Swar);
        let b = &m.blocks()[0];
        assert_eq!(b.quote, 0b1001);
        assert_eq!(b.in_string, 0b0111);
    }

    #[test]
    fn escaped_quote_is_not_structural() {
        // "a\"b" — the inner quote is escaped.
        let m = Stage1Masks::scan(br#""a\"b""#, Kernel::Swar);
        let b = &m.blocks()[0];
        assert_eq!(b.quote, 0b100001, "only the outer quotes");
        assert_eq!(b.backslash, 0b000100);
    }

    #[test]
    fn op_mask_excludes_folded_control_bytes() {
        // 0x1A folds to ':' and 0x0C folds to ',' under `| 0x20`; both
        // must stay out of `op` (they are ctrl).
        let doc = [b'{', 0x1A, b':', 0x0C, b',', b'}'];
        for k in available_kernels() {
            let m = Stage1Masks::scan(&doc, k);
            let b = &m.blocks()[0];
            assert_eq!(b.op, 0b110101, "{}", k.label());
            assert_eq!(b.ctrl, 0b001010, "{}", k.label());
        }
    }

    #[test]
    fn escape_carry_crosses_block_boundary() {
        // 63 bytes, then a backslash as the last byte of block 0 escaping
        // the quote that opens block 1.
        let mut doc = vec![b' '; 62];
        doc.push(b'"');
        doc.push(b'\\'); // byte 63: last of block 0
        doc.push(b'"'); // byte 64: escaped — not a close
        doc.push(b'x');
        doc.push(b'"'); // byte 66: the real close
        check_all_kernels(&doc);
        let m = Stage1Masks::scan(&doc, Kernel::Swar);
        assert_eq!(m.blocks()[1].quote, 0b100, "escaped quote suppressed");
        assert_eq!(m.next_quote(63), Some(66));
    }

    #[test]
    fn tail_block_padding_is_zero() {
        let doc = vec![b'\0'; 70]; // NULs are ctrl — would leak into padding
        for k in available_kernels() {
            let m = Stage1Masks::scan(&doc, k);
            let valid = (1u64 << (70 - 64)) - 1;
            let last = m.blocks().last().unwrap();
            for mask in [
                last.backslash,
                last.quote,
                last.in_string,
                last.ws,
                last.op,
                last.ctrl,
                last.nonascii,
            ] {
                assert_eq!(mask & !valid, 0, "{}: padding bits set", k.label());
            }
        }
    }

    #[test]
    fn first_set_respects_bounds() {
        let doc = [vec![b' '; 64], b"x".to_vec()].concat();
        let m = Stage1Masks::scan(&doc, Kernel::Swar);
        assert_eq!(m.next_non_ws(0), Some(64));
        assert_eq!(m.next_non_ws(65), None);
        assert_eq!(m.first_set(0, 64, |b| !b.ws), None);
        assert_eq!(m.first_set(10, 10, |b| !b.ws), None);
    }

    #[test]
    fn first_interesting_drives_string_spans() {
        let doc = br#""clean" "di\rty" "unterminated"#;
        let mut m = IndexMasks::default();
        m.scan_into(doc, Kernel::Swar);
        // Clean string: first interesting byte after the open is the close.
        assert_eq!(m.first_interesting(1), Some(6));
        assert_eq!(doc[6], b'"');
        // Escaped string: the backslash shows up before any quote.
        assert_eq!(m.first_interesting(9), Some(11));
        assert_eq!(doc[11], b'\\');
        // Unterminated: nothing interesting to the end.
        assert_eq!(m.first_interesting(18), None);
        // Interesting bytes *after* a close don't affect earlier spans.
        let mut m = IndexMasks::default();
        m.scan_into(br#""ok"\"#, Kernel::Swar);
        assert_eq!(m.first_interesting(1), Some(3));
    }

    #[test]
    fn digit_run_end_matches_scalar() {
        let cases: &[&[u8]] = &[
            b"",
            b"123",
            b"12345678",
            b"123456789012345678901234567890",
            b"12a34",
            b"a123",
            b"1234567:",
            b"99999999x9",
            &[b'9', 0xFF, b'9'],
            &[0xB9, b'1'],
        ];
        for &c in cases {
            for start in 0..=c.len() {
                let mut scalar = start;
                while scalar < c.len() && c[scalar].is_ascii_digit() {
                    scalar += 1;
                }
                assert_eq!(
                    digit_run_end(c, start),
                    scalar,
                    "input {:?} from {start}",
                    String::from_utf8_lossy(c)
                );
            }
        }
    }

    #[test]
    fn mode_parsing_and_resolution() {
        assert_eq!(Stage1Mode::parse("swar"), Some(Stage1Mode::Swar));
        assert_eq!(Stage1Mode::parse(" SCALAR "), Some(Stage1Mode::Scalar));
        assert_eq!(Stage1Mode::parse("avx512"), None);
        assert_eq!(Stage1Mode::Scalar.resolve(), Kernel::Scalar);
        assert_eq!(Stage1Mode::Swar.resolve(), Kernel::Swar);
        // Forced vector modes must resolve to something runnable.
        for m in [
            Stage1Mode::Auto,
            Stage1Mode::Simd,
            Stage1Mode::Sse2,
            Stage1Mode::Avx2,
        ] {
            let k = m.resolve();
            assert_ne!(k, Kernel::Scalar, "{m:?} resolved to scalar");
            Stage1Masks::scan(br#"{"a":1}"#, k); // must not crash
        }
        assert!(available_kernels().contains(&Kernel::Swar));
    }
}
