//! Tree builder: [`Event`] stream → [`Item`].

use super::event::{Event, EventParser};
use crate::error::{JdmError, Result};
use crate::item::Item;

/// Parse one complete JSON value (the whole input) into an [`Item`].
pub fn parse_item(buf: &[u8]) -> Result<Item> {
    let mut p = EventParser::new(buf);
    let item = build_value(&mut p)?;
    p.finish()?;
    Ok(item)
}

/// Parse a stream of *concatenated or newline-delimited* JSON values
/// (NDJSON-style), as used for unwrapped document collections.
pub fn parse_many(buf: &[u8]) -> Result<Vec<Item>> {
    let mut out = Vec::new();
    let mut rest = buf;
    let mut consumed = 0usize;
    loop {
        // Skip inter-value whitespace manually.
        let mut i = 0;
        while i < rest.len() && matches!(rest[i], b' ' | b'\t' | b'\n' | b'\r') {
            i += 1;
        }
        rest = &rest[i..];
        consumed += i;
        if rest.is_empty() {
            return Ok(out);
        }
        let mut p = EventParser::new(rest);
        let item = build_value(&mut p).map_err(|e| shift_error(e, consumed))?;
        let used = p.offset();
        out.push(item);
        rest = &rest[used..];
        consumed += used;
    }
}

fn shift_error(e: JdmError, base: usize) -> JdmError {
    match e {
        JdmError::Parse { offset, msg } => JdmError::Parse {
            offset: offset + base,
            msg,
        },
        JdmError::UnexpectedEof { offset } => JdmError::UnexpectedEof {
            offset: offset + base,
        },
        JdmError::BadNumber { offset } => JdmError::BadNumber {
            offset: offset + base,
        },
        JdmError::BadUtf8 { offset } => JdmError::BadUtf8 {
            offset: offset + base,
        },
        other => other,
    }
}

/// Incremental tree construction driven from the event stream — used both
/// here and by the projecting parser when a matching subtree must be
/// materialized.
pub struct TreeBuilder;

impl TreeBuilder {
    /// Build the value whose first event has *not* yet been consumed.
    pub fn build(p: &mut EventParser<'_>) -> Result<Item> {
        build_value(p)
    }

    /// Build the remainder of a container whose opening event was already
    /// consumed (`start` is that event).
    pub fn build_from_start(p: &mut EventParser<'_>, start: &Event<'_>) -> Result<Item> {
        match start {
            Event::StartObject => build_object(p),
            Event::StartArray => build_array(p),
            Event::String(s) => Ok(Item::String(s.as_ref().into())),
            Event::Number(n) => Ok(Item::Number(*n)),
            Event::Bool(b) => Ok(Item::Boolean(*b)),
            Event::Null => Ok(Item::Null),
            Event::Key(_) | Event::EndObject | Event::EndArray => {
                Err(JdmError::parse(p.offset(), "not at the start of a value"))
            }
        }
    }
}

fn build_value(p: &mut EventParser<'_>) -> Result<Item> {
    let ev = p
        .next_event()?
        .ok_or(JdmError::UnexpectedEof { offset: p.offset() })?;
    TreeBuilder::build_from_start(p, &ev)
}

fn build_object(p: &mut EventParser<'_>) -> Result<Item> {
    let mut pairs = Vec::new();
    loop {
        match p.next_event()? {
            Some(Event::EndObject) => return Ok(Item::Object(pairs)),
            Some(Event::Key(k)) => {
                let v = build_value(p)?;
                pairs.push((k.as_ref().into(), v));
            }
            Some(other) => {
                return Err(JdmError::parse(
                    p.offset(),
                    format!("unexpected {other:?} in object"),
                ))
            }
            None => return Err(JdmError::UnexpectedEof { offset: p.offset() }),
        }
    }
}

fn build_array(p: &mut EventParser<'_>) -> Result<Item> {
    let mut items = Vec::new();
    loop {
        let ev = p
            .next_event()?
            .ok_or(JdmError::UnexpectedEof { offset: p.offset() })?;
        if matches!(ev, Event::EndArray) {
            return Ok(Item::Array(items));
        }
        items.push(TreeBuilder::build_from_start(p, &ev)?);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::number::Number;

    #[test]
    fn builds_nested_tree() {
        let item = parse_item(br#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        let a = item.get_key("a").unwrap();
        assert_eq!(a.get_index(0).unwrap(), &Item::int(1));
        assert_eq!(
            a.get_index(1).unwrap().get_key("b").unwrap(),
            &Item::str("x")
        );
        assert_eq!(item.get_key("c").unwrap(), &Item::Null);
    }

    #[test]
    fn builds_top_level_scalars() {
        assert_eq!(
            parse_item(b"3.5").unwrap(),
            Item::Number(Number::Double(3.5))
        );
        assert_eq!(parse_item(b"\"s\"").unwrap(), Item::str("s"));
        assert_eq!(parse_item(b"false").unwrap(), Item::Boolean(false));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_item(b"{} x").is_err());
        assert!(parse_item(b"1 2").is_err());
    }

    #[test]
    fn parse_many_reads_concatenated_values() {
        let items = parse_many(b"{\"a\":1}\n{\"a\":2}\n  {\"a\":3}").unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].get_key("a").unwrap(), &Item::int(3));
    }

    #[test]
    fn parse_many_empty_input() {
        assert_eq!(parse_many(b"  \n ").unwrap(), Vec::<Item>::new());
    }

    #[test]
    fn parse_many_propagates_errors() {
        assert!(parse_many(b"{\"a\":1} {bad}").is_err());
    }

    #[test]
    fn deep_nesting_round_trip() {
        let mut src = String::new();
        for _ in 0..200 {
            src.push('[');
        }
        src.push('1');
        for _ in 0..200 {
            src.push(']');
        }
        let mut item = parse_item(src.as_bytes()).unwrap();
        for _ in 0..200 {
            item = match item {
                Item::Array(mut v) => v.pop().unwrap(),
                other => panic!("expected array, got {other:?}"),
            };
        }
        assert_eq!(item, Item::int(1));
    }
}
