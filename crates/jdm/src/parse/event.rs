//! Event-based (SAX-style) JSON parser.
//!
//! Written from scratch — the paper's system integrates a streaming parser
//! (Jackson) whose events feed the dataflow operators, and the CPU-bound
//! nature of parsing drives the single-node speed-up experiment (Fig. 17),
//! so the parser is part of the reproduction surface.
//!
//! Design points:
//! * operates on a byte slice; strings are borrowed (`Cow::Borrowed`) unless
//!   they contain escapes;
//! * a [`EventParser::skip_value`] fast path skips a whole value without
//!   unescaping strings or parsing numbers — this is what makes projection
//!   cheap;
//! * strict: trailing garbage, bad escapes, bad numbers, and unbalanced
//!   structure are errors with byte offsets.

use crate::error::{JdmError, Result};
use crate::number::Number;
use std::borrow::Cow;

/// Maximum container nesting depth accepted by the parsers. Both the event
/// parser and the structural-index builder enforce the same limit so the
/// two stages agree on which documents are well-formed, and so the
/// recursive tree builder cannot blow the thread stack on adversarial
/// input.
pub const MAX_DEPTH: usize = 512;

/// One JSON structural event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<'a> {
    /// `{`
    StartObject,
    /// `}`
    EndObject,
    /// `[`
    StartArray,
    /// `]`
    EndArray,
    /// An object key (always followed by the value's events).
    Key(Cow<'a, str>),
    /// A string value.
    String(Cow<'a, str>),
    /// A numeric value.
    Number(Number),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Frame {
    /// Inside an object; `expect_key` toggles between key and value position.
    Object { expect_key: bool },
    /// Inside an array.
    Array,
}

/// Pull parser producing [`Event`]s from a byte slice.
pub struct EventParser<'a> {
    buf: &'a [u8],
    pos: usize,
    stack: Vec<Frame>,
    /// True immediately after a value at the current nesting level (so the
    /// next token must be `,` or a closer).
    have_value: bool,
    done: bool,
}

impl<'a> EventParser<'a> {
    /// Create a parser over `buf` (one complete JSON value expected).
    pub fn new(buf: &'a [u8]) -> Self {
        EventParser {
            buf,
            pos: 0,
            stack: Vec::new(),
            have_value: false,
            done: false,
        }
    }

    /// Byte offset of the next unread byte (for error reporting and for
    /// slicing raw value text).
    #[inline]
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Current nesting depth.
    #[inline]
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Produce the next event, or `Ok(None)` at the end of a complete value.
    pub fn next_event(&mut self) -> Result<Option<Event<'a>>> {
        if self.done {
            return Ok(None);
        }
        self.skip_ws();
        if self.pos >= self.buf.len() {
            if self.stack.is_empty() && self.have_value {
                self.done = true;
                return Ok(None);
            }
            return Err(JdmError::UnexpectedEof { offset: self.pos });
        }

        // Handle separators / closers relative to the containment stack.
        match self.stack.last().copied() {
            Some(Frame::Object { expect_key: true }) => {
                let c = self.buf[self.pos];
                if c == b'}' {
                    self.pos += 1;
                    self.stack.pop();
                    self.note_value();
                    return Ok(Some(Event::EndObject));
                }
                if self.have_value {
                    if c != b',' {
                        return Err(JdmError::parse(self.pos, "expected ',' or '}'"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                }
                // Parse a key.
                if self.pos >= self.buf.len() {
                    return Err(JdmError::UnexpectedEof { offset: self.pos });
                }
                if self.buf[self.pos] != b'"' {
                    return Err(JdmError::parse(self.pos, "expected object key"));
                }
                let key = self.parse_string()?;
                self.skip_ws();
                if self.pos >= self.buf.len() || self.buf[self.pos] != b':' {
                    return Err(JdmError::parse(self.pos, "expected ':' after key"));
                }
                self.pos += 1;
                if let Some(Frame::Object { expect_key }) = self.stack.last_mut() {
                    *expect_key = false;
                }
                self.have_value = false;
                return Ok(Some(Event::Key(key)));
            }
            Some(Frame::Object { expect_key: false }) => {
                // Value position inside an object; fall through to value.
            }
            Some(Frame::Array) => {
                let c = self.buf[self.pos];
                if c == b']' {
                    self.pos += 1;
                    self.stack.pop();
                    self.note_value();
                    return Ok(Some(Event::EndArray));
                }
                if self.have_value {
                    if c != b',' {
                        return Err(JdmError::parse(self.pos, "expected ',' or ']'"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    if self.pos < self.buf.len() && self.buf[self.pos] == b']' {
                        return Err(JdmError::parse(self.pos, "trailing comma in array"));
                    }
                }
            }
            None => {
                if self.have_value {
                    return Err(JdmError::parse(self.pos, "trailing characters after value"));
                }
            }
        }

        self.parse_value().map(Some)
    }

    /// After the *start* of a value has been consumed (`StartObject` /
    /// `StartArray` event already returned), skip to the matching end
    /// without materializing anything. When called right before a value,
    /// skips the whole value. `depth_at_entry` should be `self.depth()`
    /// captured before the value's opening event; here we provide the
    /// common form: skip one complete value from value position.
    pub fn skip_value(&mut self) -> Result<()> {
        // We must be positioned at the start of a value (value position).
        self.skip_ws();
        let start_depth = self.stack.len();
        // Consume the first event of the value.
        let ev = self
            .next_event()?
            .ok_or(JdmError::UnexpectedEof { offset: self.pos })?;
        match ev {
            Event::StartObject | Event::StartArray => {
                // Fast byte-level scan to the matching close bracket.
                self.raw_skip_to_depth(start_depth)
            }
            _ => Ok(()), // atomic: already consumed
        }
    }

    /// Skip bytes until nesting depth returns to `target_depth`, honouring
    /// strings and escapes but not validating contents (fast path).
    fn raw_skip_to_depth(&mut self, target_depth: usize) -> Result<()> {
        let mut depth = self.stack.len();
        debug_assert!(depth > target_depth);
        while self.pos < self.buf.len() {
            match self.buf[self.pos] {
                b'"' => {
                    self.raw_skip_string()?;
                    continue;
                }
                b'{' | b'[' => depth += 1,
                b'}' | b']' => {
                    depth -= 1;
                    if depth == target_depth {
                        // Reconcile parser state: pop frames we skipped.
                        self.stack.truncate(target_depth);
                        self.pos += 1;
                        self.note_value();
                        return Ok(());
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(JdmError::UnexpectedEof { offset: self.pos })
    }

    fn raw_skip_string(&mut self) -> Result<()> {
        debug_assert_eq!(self.buf[self.pos], b'"');
        self.pos += 1;
        while self.pos < self.buf.len() {
            match self.buf[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => self.pos += 1,
            }
        }
        Err(JdmError::UnexpectedEof { offset: self.pos })
    }

    /// Mark that a complete value just finished at the current level.
    fn note_value(&mut self) {
        self.have_value = true;
        if let Some(Frame::Object { expect_key }) = self.stack.last_mut() {
            *expect_key = true;
        }
        if self.stack.is_empty() {
            self.done = true;
        }
    }

    fn parse_value(&mut self) -> Result<Event<'a>> {
        // Reached from value position after separators were consumed, so
        // the buffer may have run out since next_event's entry check.
        if self.pos >= self.buf.len() {
            return Err(JdmError::UnexpectedEof { offset: self.pos });
        }
        let c = self.buf[self.pos];
        match c {
            b'{' => {
                self.check_depth()?;
                self.pos += 1;
                self.stack.push(Frame::Object { expect_key: true });
                self.have_value = false;
                Ok(Event::StartObject)
            }
            b'[' => {
                self.check_depth()?;
                self.pos += 1;
                self.stack.push(Frame::Array);
                self.have_value = false;
                Ok(Event::StartArray)
            }
            b'"' => {
                let s = self.parse_string()?;
                self.note_value();
                Ok(Event::String(s))
            }
            b't' => {
                self.expect_word(b"true")?;
                self.note_value();
                Ok(Event::Bool(true))
            }
            b'f' => {
                self.expect_word(b"false")?;
                self.note_value();
                Ok(Event::Bool(false))
            }
            b'n' => {
                self.expect_word(b"null")?;
                self.note_value();
                Ok(Event::Null)
            }
            b'-' | b'0'..=b'9' => {
                let n = self.parse_number()?;
                self.note_value();
                Ok(Event::Number(n))
            }
            _ => Err(JdmError::parse(
                self.pos,
                format!("unexpected byte {:?}", c as char),
            )),
        }
    }

    fn expect_word(&mut self, w: &[u8]) -> Result<()> {
        if self.buf.len() - self.pos >= w.len() && &self.buf[self.pos..self.pos + w.len()] == w {
            self.pos += w.len();
            Ok(())
        } else {
            Err(JdmError::parse(self.pos, "invalid literal"))
        }
    }

    #[inline]
    fn check_depth(&self) -> Result<()> {
        if self.stack.len() >= MAX_DEPTH {
            return Err(JdmError::parse(
                self.pos,
                format!("nesting depth exceeds {MAX_DEPTH}"),
            ));
        }
        Ok(())
    }

    fn parse_number(&mut self) -> Result<Number> {
        let (n, end) = number_at(self.buf, self.pos)?;
        self.pos = end;
        Ok(n)
    }

    /// Parse a string literal (cursor on the opening quote). Borrows when no
    /// escapes are present.
    fn parse_string(&mut self) -> Result<Cow<'a, str>> {
        let (s, end) = parse_string_at(self.buf, self.pos)?;
        self.pos = end;
        Ok(s)
    }

    #[inline]
    fn skip_ws(&mut self) {
        while self.pos < self.buf.len()
            && matches!(self.buf[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    /// Verify that only whitespace remains after the top-level value.
    pub fn finish(mut self) -> Result<()> {
        self.skip_ws();
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(JdmError::parse(self.pos, "trailing characters after value"))
        }
    }
}

/// Scan a number token's grammar starting at `start`; returns the end
/// offset and whether the literal has a fraction or exponent. Shared by
/// the event parser and the structural-index builder so both accept
/// exactly the same number grammar. Digit runs advance eight bytes at a
/// time via the SWAR helper in [`crate::stage1`] — positions only, so
/// the grammar is unchanged by construction.
pub(crate) fn scan_number_at(b: &[u8], start: usize) -> Result<(usize, bool)> {
    let mut i = start;
    if i < b.len() && b[i] == b'-' {
        i += 1;
    }
    let int_start = i;
    i = crate::stage1::digit_run_end(b, i);
    if i == int_start {
        return Err(JdmError::BadNumber { offset: start });
    }
    // Leading zero rule: "0" alone or "0." is ok, "01" is not.
    if b[int_start] == b'0' && i - int_start > 1 {
        return Err(JdmError::BadNumber { offset: start });
    }
    let mut is_double = false;
    if i < b.len() && b[i] == b'.' {
        is_double = true;
        i += 1;
        let frac_start = i;
        i = crate::stage1::digit_run_end(b, i);
        if i == frac_start {
            return Err(JdmError::BadNumber { offset: start });
        }
    }
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        is_double = true;
        i += 1;
        if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
            i += 1;
        }
        let exp_start = i;
        i = crate::stage1::digit_run_end(b, i);
        if i == exp_start {
            return Err(JdmError::BadNumber { offset: start });
        }
    }
    Ok((i, is_double))
}

/// Parse and convert a number token; returns the value and the end offset.
pub(crate) fn number_at(b: &[u8], start: usize) -> Result<(Number, usize)> {
    let (end, is_double) = scan_number_at(b, start)?;
    // SAFETY of from_utf8: the scanned range contains only ASCII.
    let text = std::str::from_utf8(&b[start..end]).expect("ASCII number text");
    if !is_double {
        if let Ok(v) = text.parse::<i64>() {
            return Ok((Number::Int(v), end));
        }
        // Integer overflow: fall through to double.
    }
    text.parse::<f64>()
        .map(|v| (Number::Double(v), end))
        .map_err(|_| JdmError::BadNumber { offset: start })
}

/// Parse (and fully validate) a string literal whose opening quote is at
/// `start_quote`; returns the decoded string and the offset just past the
/// closing quote. Borrows when no escapes are present. Shared by the
/// event parser and the structural-index builder so string validation —
/// escapes, surrogate pairing, control characters, UTF-8 — is identical
/// in both stages.
pub(crate) fn parse_string_at(b: &[u8], start_quote: usize) -> Result<(Cow<'_, str>, usize)> {
    debug_assert_eq!(b[start_quote], b'"');
    let start = start_quote + 1;
    let mut i = start;
    // Fast scan for a clean (escape-free) string.
    while i < b.len() {
        match b[i] {
            b'"' => {
                let s = std::str::from_utf8(&b[start..i])
                    .map_err(|_| JdmError::BadUtf8 { offset: start })?;
                return Ok((Cow::Borrowed(s), i + 1));
            }
            b'\\' => break,
            0x00..=0x1F => return Err(JdmError::parse(i, "unescaped control character in string")),
            _ => i += 1,
        }
    }
    if i >= b.len() {
        return Err(JdmError::UnexpectedEof { offset: i });
    }
    // Slow path with unescaping.
    let mut out = String::with_capacity(i - start + 16);
    out.push_str(
        std::str::from_utf8(&b[start..i]).map_err(|_| JdmError::BadUtf8 { offset: start })?,
    );
    while i < b.len() {
        match b[i] {
            b'"' => {
                return Ok((Cow::Owned(out), i + 1));
            }
            b'\\' => {
                i += 1;
                if i >= b.len() {
                    return Err(JdmError::UnexpectedEof { offset: i });
                }
                match b[i] {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let cp = parse_hex4(b, i + 1)?;
                        i += 4;
                        if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: require a following \uXXXX low half.
                            if i + 6 < b.len() && b[i + 1] == b'\\' && b[i + 2] == b'u' {
                                let lo = parse_hex4(b, i + 3)?;
                                i += 6;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(JdmError::parse(i, "bad low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| JdmError::parse(i, "bad surrogate pair"))?,
                                );
                            } else {
                                return Err(JdmError::parse(i, "lone high surrogate"));
                            }
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(JdmError::parse(i, "lone low surrogate"));
                        } else {
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| JdmError::parse(i, "bad \\u escape"))?,
                            );
                        }
                    }
                    other => {
                        return Err(JdmError::parse(
                            i,
                            format!("bad escape '\\{}'", other as char),
                        ))
                    }
                }
                i += 1;
            }
            0x00..=0x1F => return Err(JdmError::parse(i, "unescaped control character in string")),
            _ => {
                // Copy a run of plain bytes (handles multi-byte UTF-8).
                let run_start = i;
                while i < b.len() && !matches!(b[i], b'"' | b'\\' | 0x00..=0x1F) {
                    i += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[run_start..i])
                        .map_err(|_| JdmError::BadUtf8 { offset: run_start })?,
                );
            }
        }
    }
    Err(JdmError::UnexpectedEof { offset: i })
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32> {
    if at + 4 > b.len() {
        return Err(JdmError::UnexpectedEof { offset: at });
    }
    let mut v = 0u32;
    for j in 0..4 {
        let d = (b[at + j] as char)
            .to_digit(16)
            .ok_or_else(|| JdmError::parse(at + j, "bad hex digit in \\u escape"))?;
        v = v * 16 + d;
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Vec<Event<'_>> {
        let mut p = EventParser::new(src.as_bytes());
        let mut out = Vec::new();
        while let Some(ev) = p.next_event().unwrap() {
            out.push(ev);
        }
        out
    }

    fn expect_err(src: &str) -> JdmError {
        let mut p = EventParser::new(src.as_bytes());
        loop {
            match p.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => match EventParser::new(src.as_bytes()).finish() {
                    Err(e) => return e,
                    Ok(()) => panic!("expected error for {src:?}"),
                },
                Err(e) => return e,
            }
        }
    }

    #[test]
    fn scalar_events() {
        assert_eq!(events("42"), vec![Event::Number(Number::Int(42))]);
        assert_eq!(
            events("-1.5e2"),
            vec![Event::Number(Number::Double(-150.0))]
        );
        assert_eq!(events("true"), vec![Event::Bool(true)]);
        assert_eq!(events("null"), vec![Event::Null]);
        assert_eq!(events(r#""hi""#), vec![Event::String("hi".into())]);
    }

    #[test]
    fn object_event_stream() {
        let evs = events(r#"{"a": 1, "b": [true, null]}"#);
        assert_eq!(
            evs,
            vec![
                Event::StartObject,
                Event::Key("a".into()),
                Event::Number(Number::Int(1)),
                Event::Key("b".into()),
                Event::StartArray,
                Event::Bool(true),
                Event::Null,
                Event::EndArray,
                Event::EndObject,
            ]
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(events("{}"), vec![Event::StartObject, Event::EndObject]);
        assert_eq!(events("[]"), vec![Event::StartArray, Event::EndArray]);
        assert_eq!(
            events("[[],{}]"),
            vec![
                Event::StartArray,
                Event::StartArray,
                Event::EndArray,
                Event::StartObject,
                Event::EndObject,
                Event::EndArray
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            events(r#""a\nb\t\"c\" \\ A 😀""#),
            vec![Event::String("a\nb\t\"c\" \\ A 😀".into())]
        );
    }

    #[test]
    fn borrowed_vs_owned_strings() {
        let src = r#"["plain", "esc\n"]"#;
        let mut p = EventParser::new(src.as_bytes());
        p.next_event().unwrap(); // [
        match p.next_event().unwrap().unwrap() {
            Event::String(Cow::Borrowed(_)) => {}
            other => panic!("expected borrowed, got {other:?}"),
        }
        match p.next_event().unwrap().unwrap() {
            Event::String(Cow::Owned(_)) => {}
            other => panic!("expected owned, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(expect_err("{"), JdmError::UnexpectedEof { .. }));
        assert!(matches!(expect_err(r#"{"a" 1}"#), JdmError::Parse { .. }));
        assert!(matches!(expect_err("[1,]"), JdmError::Parse { .. }));
        assert!(matches!(expect_err("01"), JdmError::BadNumber { .. }));
        assert!(matches!(expect_err("1 2"), JdmError::Parse { .. }));
        assert!(matches!(expect_err("tru"), JdmError::Parse { .. }));
        assert!(matches!(expect_err(r#""\q""#), JdmError::Parse { .. }));
        assert!(matches!(expect_err(r#""\uD800""#), JdmError::Parse { .. }));
    }

    #[test]
    fn skip_value_skips_nested_structure() {
        let src = r#"{"skip": {"deep": [1, {"x": "}]"}]}, "keep": 7}"#;
        let mut p = EventParser::new(src.as_bytes());
        assert_eq!(p.next_event().unwrap(), Some(Event::StartObject));
        assert_eq!(p.next_event().unwrap(), Some(Event::Key("skip".into())));
        p.skip_value().unwrap();
        assert_eq!(p.next_event().unwrap(), Some(Event::Key("keep".into())));
        assert_eq!(p.next_event().unwrap(), Some(Event::Number(Number::Int(7))));
        assert_eq!(p.next_event().unwrap(), Some(Event::EndObject));
        assert_eq!(p.next_event().unwrap(), None);
    }

    #[test]
    fn skip_value_on_atomics() {
        let src = r#"[1, "two", true, null, 5]"#;
        let mut p = EventParser::new(src.as_bytes());
        p.next_event().unwrap(); // [
        for _ in 0..4 {
            p.skip_value().unwrap();
        }
        assert_eq!(p.next_event().unwrap(), Some(Event::Number(Number::Int(5))));
        assert_eq!(p.next_event().unwrap(), Some(Event::EndArray));
    }

    #[test]
    fn integer_overflow_becomes_double() {
        let evs = events("123456789012345678901234567890");
        match &evs[0] {
            Event::Number(Number::Double(d)) => assert!(*d > 1e29),
            other => panic!("expected double, got {other:?}"),
        }
    }

    #[test]
    fn eof_after_separator_is_an_error_not_a_panic() {
        // Regression (found by the differential fuzzer): a buffer ending
        // right after a comma fell through to value parsing without an
        // EOF check and indexed past the end.
        for src in ["[1,", "[1, ", r#"{"a":1,"b":"#, "[", r#"{"a":"#] {
            let mut p = EventParser::new(src.as_bytes());
            let err = loop {
                match p.next_event() {
                    Ok(Some(_)) => continue,
                    Ok(None) => panic!("{src:?} must not parse"),
                    Err(e) => break e,
                }
            };
            assert!(
                matches!(err, JdmError::UnexpectedEof { .. }),
                "{src:?}: {err:?}"
            );
        }
    }

    #[test]
    fn nesting_deeper_than_max_depth_is_rejected() {
        let src = "[".repeat(MAX_DEPTH + 1);
        let mut p = EventParser::new(src.as_bytes());
        let err = loop {
            match p.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("expected depth error"),
                Err(e) => break e,
            }
        };
        match err {
            JdmError::Parse { msg, .. } => assert!(msg.contains("depth"), "{msg}"),
            other => panic!("expected depth error, got {other:?}"),
        }
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(
            events(r#""héllo ✓""#),
            vec![Event::String("héllo ✓".into())]
        );
    }
}
