//! From-scratch JSON parsing: an event (SAX-style) layer and a tree builder.
//!
//! The event layer is the workhorse: both the tree builder and the
//! path-projecting parser ([`crate::project`]) consume events, so the
//! skip-heavy projection path never pays for building unneeded values.

mod event;
mod tree;

pub use event::{Event, EventParser, MAX_DEPTH};
pub use tree::{parse_item, parse_many, TreeBuilder};

pub(crate) use event::{number_at, parse_string_at, scan_number_at};
