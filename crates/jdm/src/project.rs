//! The path-projecting streaming parser.
//!
//! [`project_stream`] walks raw JSON bytes once, following a
//! [`ProjectionPath`], and hands each matching sub-item to a callback the
//! moment its closing brace is seen — *nothing else is materialized*. This
//! is the runtime realization of the paper's extended DATASCAN operator
//! (pipelining rules, §4.2): with path
//! `("root")()("results")()` over a GHCN sensor file, the callback sees one
//! measurement object at a time, while `metadata`, sibling keys, and all
//! non-matching structure are skipped at byte-scanning speed.

use crate::error::{JdmError, Result};
use crate::item::Item;
use crate::parse::{Event, EventParser, TreeBuilder};
use crate::path::{PathStep, ProjectionPath};

/// Statistics from one projection pass, used by tests and the memory model.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProjectStats {
    /// Items handed to the callback.
    pub emitted: usize,
    /// Values skipped without materialization (per navigation level).
    pub skipped: usize,
}

/// Stream every item reachable via `path` from the JSON value in `buf` into
/// `sink`. Returns statistics. The sink may return `false` to stop early
/// (used by LIMIT-style consumers and by tests).
pub fn project_stream(
    buf: &[u8],
    path: &ProjectionPath,
    mut sink: impl FnMut(Item) -> bool,
) -> Result<ProjectStats> {
    let mut p = EventParser::new(buf);
    let mut stats = ProjectStats::default();
    walk(&mut p, path.steps(), &mut sink, &mut stats)?;
    Ok(stats)
}

/// Convenience wrapper collecting all projected items.
pub fn project_all(buf: &[u8], path: &ProjectionPath) -> Result<Vec<Item>> {
    let mut out = Vec::new();
    project_stream(buf, path, |it| {
        out.push(it);
        true
    })?;
    Ok(out)
}

/// Recursive step: the cursor is at value position; `steps` is the residual
/// path. Returns `Ok(false)` when the sink asked to stop.
fn walk(
    p: &mut EventParser<'_>,
    steps: &[PathStep],
    sink: &mut impl FnMut(Item) -> bool,
    stats: &mut ProjectStats,
) -> Result<bool> {
    let Some((first, rest)) = steps.split_first() else {
        // End of path: materialize this value and emit it.
        let item = TreeBuilder::build(p)?;
        stats.emitted += 1;
        return Ok(sink(item));
    };

    let start = p
        .next_event()?
        .ok_or(JdmError::UnexpectedEof { offset: p.offset() })?;

    match first {
        PathStep::Key(wanted) => {
            if !matches!(start, Event::StartObject) {
                // `value` on a non-object yields the empty sequence: skip.
                skip_started(p, &start, stats)?;
                return Ok(true);
            }
            let mut matched = false;
            loop {
                match p.next_event()? {
                    Some(Event::EndObject) => return Ok(true),
                    Some(Event::Key(k)) => {
                        if !matched && k.as_ref() == &**wanted {
                            matched = true; // first occurrence wins
                            if !walk(p, rest, sink, stats)? {
                                return Ok(false);
                            }
                        } else {
                            stats.skipped += 1;
                            p.skip_value()?;
                        }
                    }
                    Some(other) => {
                        return Err(JdmError::parse(
                            p.offset(),
                            format!("unexpected {other:?} in object"),
                        ))
                    }
                    None => return Err(JdmError::UnexpectedEof { offset: p.offset() }),
                }
            }
        }
        PathStep::Index(wanted) => {
            if !matches!(start, Event::StartArray) {
                skip_started(p, &start, stats)?;
                return Ok(true);
            }
            let mut pos: i64 = 0;
            loop {
                pos += 1;
                if pos == *wanted {
                    // Peek: if the array ended, index is out of range.
                    if at_array_end(p)? {
                        return Ok(true);
                    }
                    if !walk(p, rest, sink, stats)? {
                        return Ok(false);
                    }
                } else {
                    if at_array_end(p)? {
                        return Ok(true);
                    }
                    stats.skipped += 1;
                    p.skip_value()?;
                }
            }
        }
        PathStep::AllMembers => {
            if !matches!(start, Event::StartArray) {
                // keys-or-members pushed down only over arrays; objects or
                // atomics contribute nothing here.
                skip_started(p, &start, stats)?;
                return Ok(true);
            }
            loop {
                if at_array_end(p)? {
                    return Ok(true);
                }
                if !walk(p, rest, sink, stats)? {
                    return Ok(false);
                }
            }
        }
    }
}

/// After a non-container start event, nothing to skip; after a container
/// start we must consume to its end.
fn skip_started(
    p: &mut EventParser<'_>,
    start: &Event<'_>,
    stats: &mut ProjectStats,
) -> Result<()> {
    stats.skipped += 1;
    match start {
        Event::StartObject | Event::StartArray => {
            let target = p.depth() - 1;
            // Consume events until the container closes. skip_value works
            // from value position, so do it manually here.
            loop {
                if p.depth() == target {
                    return Ok(());
                }
                match p.next_event()? {
                    Some(_) => continue,
                    None => return Err(JdmError::UnexpectedEof { offset: p.offset() }),
                }
            }
        }
        _ => Ok(()),
    }
}

/// True (and consumes the event) if the next event closes the current array.
fn at_array_end(p: &mut EventParser<'_>) -> Result<bool> {
    // EventParser has no peek; emulate via a lightweight probe: remember
    // position by cloning is not possible (stack state), so use a tiny
    // lookahead on the raw buffer instead: from value/closer position the
    // next non-ws byte decides.
    Ok(p.peek_is_array_close())
}

impl<'a> EventParser<'a> {
    /// Lookahead used by the projector: true if (after optional whitespace
    /// and a pending comma having *not* been consumed) the next structural
    /// token closes the current array. Consumes the `]` via the normal
    /// event path when true.
    fn peek_is_array_close(&mut self) -> bool {
        // Cheap textual lookahead: scan ws (and at most one comma handled by
        // next_event), then check for ']'. We only need to answer "is the
        // very next event EndArray?", which next_event can tell us if we
        // could un-consume. Instead inspect raw bytes: at this point the
        // cursor sits right after the previous value (or right after '[').
        let b = self.raw_buf();
        let mut i = self.raw_pos();
        while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
            i += 1;
        }
        if i < b.len() && b[i] == b']' {
            // Let the event machinery consume it to keep state consistent.
            match self.next_event() {
                Ok(Some(Event::EndArray)) => true,
                _ => true, // malformed input surfaces on the next real call
            }
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_item;

    const SENSOR: &str = r#"{
      "root": [
        {
          "metadata": {"count": 2},
          "results": [
            {"date": "20131225T00:00", "dataType": "TMIN", "station": "S1", "value": 4},
            {"date": "20131226T00:00", "dataType": "TMAX", "station": "S1", "value": 10}
          ]
        },
        {
          "metadata": {"count": 1},
          "results": [
            {"date": "20140101T00:00", "dataType": "WIND", "station": "S2", "value": 30}
          ]
        }
      ]
    }"#;

    fn path(spec: &[&str]) -> ProjectionPath {
        spec.iter()
            .map(|s| match *s {
                "()" => PathStep::AllMembers,
                k if k.starts_with('#') => PathStep::Index(k[1..].parse().unwrap()),
                k => PathStep::Key(k.into()),
            })
            .collect()
    }

    #[test]
    fn projects_measurements() {
        let p = path(&["root", "()", "results", "()"]);
        let items = project_all(SENSOR.as_bytes(), &p).unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].get_key("station").unwrap().as_str(), Some("S2"));
    }

    #[test]
    fn projection_skips_metadata() {
        let p = path(&["root", "()", "results", "()"]);
        let stats = project_stream(SENSOR.as_bytes(), &p, |_| true).unwrap();
        assert_eq!(stats.emitted, 3);
        // Two "metadata" values skipped.
        assert_eq!(stats.skipped, 2);
    }

    #[test]
    fn matches_full_parse_then_navigate() {
        let p = path(&["root", "()", "results", "()"]);
        let streamed = project_all(SENSOR.as_bytes(), &p).unwrap();
        // Reference: full parse and manual navigation.
        let tree = parse_item(SENSOR.as_bytes()).unwrap();
        let mut reference = Vec::new();
        for rec in tree.get_key("root").unwrap().keys_or_members() {
            for m in rec.get_key("results").unwrap().keys_or_members() {
                reference.push(m);
            }
        }
        assert_eq!(streamed, reference);
    }

    #[test]
    fn key_path_extracts_single_field() {
        let p = path(&["root", "()", "results", "()", "date"]);
        let items = project_all(SENSOR.as_bytes(), &p).unwrap();
        assert_eq!(
            items,
            vec![
                Item::str("20131225T00:00"),
                Item::str("20131226T00:00"),
                Item::str("20140101T00:00"),
            ]
        );
    }

    #[test]
    fn index_step_selects_one_member() {
        let p = path(&["root", "#1", "results", "#2", "value"]);
        let items = project_all(SENSOR.as_bytes(), &p).unwrap();
        assert_eq!(items, vec![Item::int(10)]);
    }

    #[test]
    fn out_of_range_index_yields_nothing() {
        let p = path(&["root", "#9"]);
        assert_eq!(
            project_all(SENSOR.as_bytes(), &p).unwrap(),
            Vec::<Item>::new()
        );
    }

    #[test]
    fn missing_key_yields_nothing() {
        let p = path(&["nope", "()"]);
        assert_eq!(
            project_all(SENSOR.as_bytes(), &p).unwrap(),
            Vec::<Item>::new()
        );
    }

    #[test]
    fn mismatched_types_yield_nothing() {
        // value step on an array / members step on an object.
        let p = path(&["root", "x"]); // "root" is an array, key step misses
        assert_eq!(
            project_all(SENSOR.as_bytes(), &p).unwrap(),
            Vec::<Item>::new()
        );
        let p2 = path(&["root", "()", "metadata", "()"]); // () on object => nothing (array form only)
        assert_eq!(
            project_all(SENSOR.as_bytes(), &p2).unwrap(),
            Vec::<Item>::new()
        );
    }

    #[test]
    fn early_stop() {
        let p = path(&["root", "()", "results", "()"]);
        let mut n = 0;
        project_stream(SENSOR.as_bytes(), &p, |_| {
            n += 1;
            n < 2
        })
        .unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn root_path_emits_whole_document() {
        let items = project_all(SENSOR.as_bytes(), &ProjectionPath::root()).unwrap();
        assert_eq!(items.len(), 1);
        assert!(items[0].get_key("root").is_some());
    }

    #[test]
    fn duplicate_keys_project_first() {
        let src = br#"{"a": 1, "a": 2}"#;
        let p = path(&["a"]);
        assert_eq!(project_all(src, &p).unwrap(), vec![Item::int(1)]);
    }
}
