//! The path-projecting parser, driven by the structural index.
//!
//! [`project_stream`] builds the [`StructuralIndex`] over raw JSON bytes
//! (one validating pass), then navigates the tape following a
//! [`ProjectionPath`]: non-matching subtrees are skipped in O(1) via the
//! tape's pair pointers instead of being re-scanned byte by byte. Only
//! matching sub-items are materialized. This is the runtime realization
//! of the paper's extended DATASCAN operator (pipelining rules, §4.2):
//! with path `("root")()("results")()` over a GHCN sensor file, the sink
//! sees one measurement object at a time, while `metadata`, sibling keys,
//! and all non-matching structure cost a single tape jump.
//!
//! Because the index pass validates the *whole* document (same grammar as
//! [`crate::parse::parse_item`], shared code), projection now errors on
//! malformed bytes even inside skipped subtrees — exactly like a full
//! tree parse would, which is what the differential test suite pins.
//!
//! [`RecordTable`] exposes the document's record boundaries along the
//! path prefix up to the first `()` step, letting the scan layer project
//! disjoint record ranges of one file from different partitions
//! ([`RecordTable::project_range`]); the union over all ranges equals one
//! whole-file projection.

use crate::error::Result;
use crate::index::{StructuralIndex, TapeKind};
use crate::item::Item;
use crate::path::{PathStep, ProjectionPath};
use std::ops::Range;

/// Statistics from one projection pass, used by tests and the memory model.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProjectStats {
    /// Items handed to the callback.
    pub emitted: usize,
    /// Values skipped without materialization (per navigation level).
    pub skipped: usize,
}

/// Stream every item reachable via `path` from the JSON value in `buf` into
/// `sink`. Returns statistics. The sink may return `false` to stop early
/// (used by LIMIT-style consumers and by tests).
pub fn project_stream(
    buf: &[u8],
    path: &ProjectionPath,
    sink: impl FnMut(Item) -> bool,
) -> Result<ProjectStats> {
    let index = StructuralIndex::build(buf)?;
    project_indexed(buf, &index, path, sink)
}

/// [`project_stream`] over an already-built index (lets callers amortize
/// the index across multiple projections or record ranges).
pub fn project_indexed(
    buf: &[u8],
    index: &StructuralIndex,
    path: &ProjectionPath,
    mut sink: impl FnMut(Item) -> bool,
) -> Result<ProjectStats> {
    let mut stats = ProjectStats::default();
    walk_tape(
        buf,
        index,
        index.root(),
        path.steps(),
        &mut sink,
        &mut stats,
    )?;
    Ok(stats)
}

/// Convenience wrapper collecting all projected items.
pub fn project_all(buf: &[u8], path: &ProjectionPath) -> Result<Vec<Item>> {
    let mut out = Vec::new();
    project_stream(buf, path, |it| {
        out.push(it);
        true
    })?;
    Ok(out)
}

/// Recursive step over the tape: `node` is at value position; `steps` is
/// the residual path. Returns `Ok(false)` when the sink asked to stop.
fn walk_tape(
    buf: &[u8],
    idx: &StructuralIndex,
    node: usize,
    steps: &[PathStep],
    sink: &mut impl FnMut(Item) -> bool,
    stats: &mut ProjectStats,
) -> Result<bool> {
    let Some((first, rest)) = steps.split_first() else {
        // End of path: materialize this value and emit it.
        let item = idx.item_at(buf, node)?;
        stats.emitted += 1;
        return Ok(sink(item));
    };

    let e = &idx.tape()[node];
    match first {
        PathStep::Key(wanted) => {
            if e.kind != TapeKind::ObjectOpen {
                // `value` on a non-object yields the empty sequence: skip.
                stats.skipped += 1;
                return Ok(true);
            }
            let close = e.pair as usize;
            let mut matched = false;
            let mut i = node + 1;
            while i < close {
                let value = i + 1; // the key's value entry follows it
                if !matched && idx.key_equals(buf, i, wanted)? {
                    matched = true; // first occurrence wins
                    if !walk_tape(buf, idx, value, rest, sink, stats)? {
                        return Ok(false);
                    }
                } else {
                    stats.skipped += 1;
                }
                i = idx.skip(value);
            }
            Ok(true)
        }
        PathStep::Index(wanted) => {
            if e.kind != TapeKind::ArrayOpen {
                stats.skipped += 1;
                return Ok(true);
            }
            let close = e.pair as usize;
            let mut pos: i64 = 0;
            let mut i = node + 1;
            while i < close {
                pos += 1;
                if pos == *wanted {
                    if !walk_tape(buf, idx, i, rest, sink, stats)? {
                        return Ok(false);
                    }
                } else {
                    stats.skipped += 1;
                }
                i = idx.skip(i);
            }
            Ok(true)
        }
        PathStep::AllMembers => {
            if e.kind != TapeKind::ArrayOpen {
                // keys-or-members pushed down only over arrays; objects or
                // atomics contribute nothing here.
                stats.skipped += 1;
                return Ok(true);
            }
            let close = e.pair as usize;
            let mut i = node + 1;
            while i < close {
                if !walk_tape(buf, idx, i, rest, sink, stats)? {
                    return Ok(false);
                }
                i = idx.skip(i);
            }
            Ok(true)
        }
    }
}

/// One record of a splittable document: a member of the array reached by
/// the projection path's prefix up to (and including) its first `()` step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordSpan {
    /// Tape index of the record's value.
    pub node: usize,
    /// Byte span of the record in the document.
    pub start: usize,
    pub end: usize,
}

/// The record boundaries of one document along a projection path —
/// what makes a file splittable into record-aligned ranges.
#[derive(Debug, Clone)]
pub struct RecordTable {
    /// The records, in document order.
    pub records: Vec<RecordSpan>,
    /// Number of leading path steps consumed reaching the records (the
    /// prefix through the first `()`); the rest apply per record.
    residual: usize,
}

impl RecordTable {
    /// Build the record table for `path` over an indexed document.
    ///
    /// Returns `None` when the path contains no `()` step — such a
    /// projection yields at most one item, so the document has no record
    /// granularity to split on. When the prefix misses (absent key,
    /// out-of-range index, type mismatch) the table is `Some` but empty:
    /// every range projects nothing, matching the whole-file projection.
    pub fn build(
        buf: &[u8],
        index: &StructuralIndex,
        path: &ProjectionPath,
    ) -> Result<Option<RecordTable>> {
        let steps = path.steps();
        let Some(k) = steps.iter().position(|s| matches!(s, PathStep::AllMembers)) else {
            return Ok(None);
        };
        let residual = k + 1;
        let empty = RecordTable {
            records: Vec::new(),
            residual,
        };
        let mut node = index.root();
        for step in &steps[..k] {
            let e = &index.tape()[node];
            match step {
                PathStep::Key(wanted) => {
                    if e.kind != TapeKind::ObjectOpen {
                        return Ok(Some(empty));
                    }
                    let close = e.pair as usize;
                    let mut i = node + 1;
                    let mut found = None;
                    while i < close {
                        if index.key_equals(buf, i, wanted)? {
                            found = Some(i + 1); // first occurrence wins
                            break;
                        }
                        i = index.skip(i + 1);
                    }
                    match found {
                        Some(v) => node = v,
                        None => return Ok(Some(empty)),
                    }
                }
                PathStep::Index(wanted) => {
                    if e.kind != TapeKind::ArrayOpen {
                        return Ok(Some(empty));
                    }
                    let close = e.pair as usize;
                    let mut pos: i64 = 0;
                    let mut i = node + 1;
                    let mut found = None;
                    while i < close {
                        pos += 1;
                        if pos == *wanted {
                            found = Some(i);
                            break;
                        }
                        i = index.skip(i);
                    }
                    match found {
                        Some(v) => node = v,
                        None => return Ok(Some(empty)),
                    }
                }
                PathStep::AllMembers => unreachable!("k is the first AllMembers"),
            }
        }
        if index.tape()[node].kind != TapeKind::ArrayOpen {
            return Ok(Some(empty));
        }
        let records = index
            .members_iter(node)
            .map(|m| {
                let (start, end) = index.span(m);
                RecordSpan {
                    node: m,
                    start,
                    end,
                }
            })
            .collect();
        Ok(Some(RecordTable { records, residual }))
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Project the records in `range` (indices into [`RecordTable::records`])
    /// through the residual path steps. Projecting disjoint ranges covering
    /// `0..len()` — in any order, from any number of tasks sharing the
    /// index — emits exactly the items of one whole-document projection.
    pub fn project_range(
        &self,
        buf: &[u8],
        index: &StructuralIndex,
        path: &ProjectionPath,
        range: Range<usize>,
        mut sink: impl FnMut(Item) -> bool,
    ) -> Result<ProjectStats> {
        let steps = &path.steps()[self.residual..];
        let mut stats = ProjectStats::default();
        for rec in &self.records[range] {
            if !walk_tape(buf, index, rec.node, steps, &mut sink, &mut stats)? {
                break;
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_item;

    const SENSOR: &str = r#"{
      "root": [
        {
          "metadata": {"count": 2},
          "results": [
            {"date": "20131225T00:00", "dataType": "TMIN", "station": "S1", "value": 4},
            {"date": "20131226T00:00", "dataType": "TMAX", "station": "S1", "value": 10}
          ]
        },
        {
          "metadata": {"count": 1},
          "results": [
            {"date": "20140101T00:00", "dataType": "WIND", "station": "S2", "value": 30}
          ]
        }
      ]
    }"#;

    fn path(spec: &[&str]) -> ProjectionPath {
        spec.iter()
            .map(|s| match *s {
                "()" => PathStep::AllMembers,
                k if k.starts_with('#') => PathStep::Index(k[1..].parse().unwrap()),
                k => PathStep::Key(k.into()),
            })
            .collect()
    }

    #[test]
    fn projects_measurements() {
        let p = path(&["root", "()", "results", "()"]);
        let items = project_all(SENSOR.as_bytes(), &p).unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].get_key("station").unwrap().as_str(), Some("S2"));
    }

    #[test]
    fn projection_skips_metadata() {
        let p = path(&["root", "()", "results", "()"]);
        let stats = project_stream(SENSOR.as_bytes(), &p, |_| true).unwrap();
        assert_eq!(stats.emitted, 3);
        // Two "metadata" values skipped.
        assert_eq!(stats.skipped, 2);
    }

    #[test]
    fn matches_full_parse_then_navigate() {
        let p = path(&["root", "()", "results", "()"]);
        let streamed = project_all(SENSOR.as_bytes(), &p).unwrap();
        // Reference: full parse and manual navigation.
        let tree = parse_item(SENSOR.as_bytes()).unwrap();
        let mut reference = Vec::new();
        for rec in tree.get_key("root").unwrap().keys_or_members() {
            for m in rec.get_key("results").unwrap().keys_or_members() {
                reference.push(m);
            }
        }
        assert_eq!(streamed, reference);
    }

    #[test]
    fn key_path_extracts_single_field() {
        let p = path(&["root", "()", "results", "()", "date"]);
        let items = project_all(SENSOR.as_bytes(), &p).unwrap();
        assert_eq!(
            items,
            vec![
                Item::str("20131225T00:00"),
                Item::str("20131226T00:00"),
                Item::str("20140101T00:00"),
            ]
        );
    }

    #[test]
    fn index_step_selects_one_member() {
        let p = path(&["root", "#1", "results", "#2", "value"]);
        let items = project_all(SENSOR.as_bytes(), &p).unwrap();
        assert_eq!(items, vec![Item::int(10)]);
    }

    #[test]
    fn out_of_range_index_yields_nothing() {
        let p = path(&["root", "#9"]);
        assert_eq!(
            project_all(SENSOR.as_bytes(), &p).unwrap(),
            Vec::<Item>::new()
        );
    }

    #[test]
    fn missing_key_yields_nothing() {
        let p = path(&["nope", "()"]);
        assert_eq!(
            project_all(SENSOR.as_bytes(), &p).unwrap(),
            Vec::<Item>::new()
        );
    }

    #[test]
    fn mismatched_types_yield_nothing() {
        // value step on an array / members step on an object.
        let p = path(&["root", "x"]); // "root" is an array, key step misses
        assert_eq!(
            project_all(SENSOR.as_bytes(), &p).unwrap(),
            Vec::<Item>::new()
        );
        let p2 = path(&["root", "()", "metadata", "()"]); // () on object => nothing (array form only)
        assert_eq!(
            project_all(SENSOR.as_bytes(), &p2).unwrap(),
            Vec::<Item>::new()
        );
    }

    #[test]
    fn early_stop() {
        let p = path(&["root", "()", "results", "()"]);
        let mut n = 0;
        project_stream(SENSOR.as_bytes(), &p, |_| {
            n += 1;
            n < 2
        })
        .unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn root_path_emits_whole_document() {
        let items = project_all(SENSOR.as_bytes(), &ProjectionPath::root()).unwrap();
        assert_eq!(items.len(), 1);
        assert!(items[0].get_key("root").is_some());
    }

    #[test]
    fn duplicate_keys_project_first() {
        let src = br#"{"a": 1, "a": 2}"#;
        let p = path(&["a"]);
        assert_eq!(project_all(src, &p).unwrap(), vec![Item::int(1)]);
    }

    #[test]
    fn malformed_skipped_subtree_is_an_error() {
        // The old byte-skipping walk tolerated garbage inside skipped
        // values; index-guided projection validates everything, exactly
        // like a full tree parse.
        let src = br#"{"skip": [01], "keep": 1}"#;
        let p = path(&["keep"]);
        assert!(project_stream(src, &p, |_| true).is_err());
        assert!(parse_item(src).is_err());
    }

    #[test]
    fn record_table_finds_top_level_records() {
        let p = path(&["root", "()", "results", "()"]);
        let idx = StructuralIndex::build(SENSOR.as_bytes()).unwrap();
        let table = RecordTable::build(SENSOR.as_bytes(), &idx, &p)
            .unwrap()
            .expect("path has a () step");
        assert_eq!(table.len(), 2, "two top-level sensor records");
        for r in &table.records {
            assert!(SENSOR.as_bytes()[r.start] == b'{');
            assert!(SENSOR.as_bytes()[r.end - 1] == b'}');
        }
    }

    #[test]
    fn record_ranges_union_to_whole_projection() {
        let p = path(&["root", "()", "results", "()"]);
        let buf = SENSOR.as_bytes();
        let idx = StructuralIndex::build(buf).unwrap();
        let table = RecordTable::build(buf, &idx, &p).unwrap().unwrap();
        let whole = project_all(buf, &p).unwrap();
        for mid in 0..=table.len() {
            let mut got = Vec::new();
            for range in [0..mid, mid..table.len()] {
                table
                    .project_range(buf, &idx, &p, range, |it| {
                        got.push(it);
                        true
                    })
                    .unwrap();
            }
            assert_eq!(got, whole, "split at {mid}");
        }
    }

    #[test]
    fn record_table_without_all_members_is_none() {
        let p = path(&["root", "#1"]);
        let idx = StructuralIndex::build(SENSOR.as_bytes()).unwrap();
        assert!(RecordTable::build(SENSOR.as_bytes(), &idx, &p)
            .unwrap()
            .is_none());
    }

    #[test]
    fn record_table_missing_prefix_is_empty() {
        let p = path(&["nope", "()"]);
        let idx = StructuralIndex::build(SENSOR.as_bytes()).unwrap();
        let table = RecordTable::build(SENSOR.as_bytes(), &idx, &p)
            .unwrap()
            .unwrap();
        assert!(table.is_empty());
    }
}
