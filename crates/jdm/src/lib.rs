//! # jdm — JSON Data Model
//!
//! The data-model substrate of the VXQuery-RS reproduction of
//! *"A Parallel and Scalable Processor for JSON Data"* (EDBT 2018).
//!
//! This crate plays the role that Jackson + VXQuery's in-memory JSON item
//! representation play in the paper: it owns everything about JSON *values*,
//! independent of query processing:
//!
//! * [`Item`] — the tree model of a JSONiq item (JSON values plus the
//!   `dateTime` atomic from the XQuery type system and the XQuery
//!   *sequence*, which JSONiq layers on top of JSON).
//! * [`parse`] — a from-scratch, event-based (SAX-style) JSON parser with
//!   zero-copy string handling, plus a tree builder on top of it.
//! * [`index`] — the **structural index**: a validating one-pass scan that
//!   records every structural token (string spans, container open/close
//!   pairs) into a flat tape, so navigation skips subtrees in O(1)
//!   without re-scanning bytes, and arrays expose record boundaries for
//!   split-parallel scans.
//! * [`stage1`] — the **vectorized stage-1 scanner** feeding the index
//!   builder: 64-byte blocks in, per-block bitmasks out (quotes, escapes,
//!   in-string state, whitespace, structural characters), with portable
//!   SWAR and runtime-detected SSE2/AVX2 kernels selectable via
//!   `VXQ_STAGE1`.
//! * [`project`] — the **path-projecting parser**: given a projection path
//!   (e.g. `("root")()("results")()`), it streams each matching sub-item to
//!   a callback *without materializing anything else*. This is the runtime
//!   mechanism behind the paper's DATASCAN second argument (the pipelining
//!   rules, §4.2).
//! * [`binary`] — a tagged binary serialization with constant-time array
//!   indexing and zero-copy [`binary::ItemRef`] navigation, used to move
//!   items through dataflow frames (the Hyracks "pointable" analog).
//! * [`datetime`] — the `xs:dateTime` subset needed by the paper's queries
//!   (`dateTime()`, `year-/month-/day-from-dateTime`).
//!
//! ## Quick example
//!
//! ```
//! use jdm::parse::parse_item;
//!
//! let item = parse_item(br#"{"bookstore": {"book": [{"title": "Everyday Italian"}]}}"#).unwrap();
//! let title = item
//!     .get_key("bookstore").unwrap()
//!     .get_key("book").unwrap()
//!     .get_index(0).unwrap()
//!     .get_key("title").unwrap();
//! assert_eq!(title.as_str(), Some("Everyday Italian"));
//! ```

pub mod binary;
pub mod datetime;
pub mod error;
pub mod index;
pub mod item;
pub mod number;
pub mod parse;
pub mod path;
pub mod project;
pub mod stage1;
pub mod text;

pub use datetime::DateTime;
pub use error::{JdmError, Result};
pub use item::Item;
pub use number::Number;
pub use path::{PathStep, ProjectionPath};
