//! Structural index: a one-pass "tape" over raw JSON bytes.
//!
//! This is the two-stage parse used by fast JSON processors (simdjson and
//! its descendants): stage 1 scans the bytes once, *validating* the
//! document and recording every structural token — container open/close
//! positions (with matching-pair pointers), key and string spans, number
//! and literal spans — into a flat tape. Stage 2 (projection, tree
//! building) then navigates the tape with O(1) subtree skips instead of
//! re-scanning bytes.
//!
//! Two properties matter for the engine:
//!
//! * **Validation parity.** The builder accepts exactly the documents the
//!   event parser ([`crate::parse::EventParser`]) accepts — same number
//!   grammar, same string escape/surrogate/UTF-8 rules (the code is
//!   shared), same literal spelling, same nesting-depth limit, same
//!   "single value, no trailing bytes" contract. The differential test
//!   suite relies on this: index-guided projection must error exactly
//!   when a full tree parse errors, even for malformed bytes inside
//!   subtrees the projection would skip.
//! * **Record boundaries.** [`StructuralIndex::members`] exposes the
//!   member spans of any array on the tape, which is what lets the scan
//!   layer assign record-aligned byte ranges of one file to different
//!   partitions (see `vxq-core`'s split scan).
//!
//! The tape is a plain `Vec` that can be recycled across documents via
//! [`StructuralIndex::build_reusing`] / [`StructuralIndex::into_tape`]
//! (the scan layer pools tapes to avoid per-file allocation).

use crate::error::{JdmError, Result};
use crate::item::Item;
use crate::number::Number;
use crate::parse::{number_at, parse_string_at, scan_number_at};
use crate::parse::{Event, EventParser, TreeBuilder, MAX_DEPTH};
use std::borrow::Cow;

/// Kind of one tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapeKind {
    /// `{` — `pair` points at the matching [`TapeKind::ObjectClose`].
    ObjectOpen,
    /// `}` — `pair` points back at the open entry.
    ObjectClose,
    /// `[` — `pair` points at the matching [`TapeKind::ArrayClose`].
    ArrayOpen,
    /// `]` — `pair` points back at the open entry.
    ArrayClose,
    /// An object key (quoted span; always immediately followed by its
    /// value's entries).
    Key,
    /// A string value (quoted span).
    String,
    /// A number value.
    Number,
    /// `true` / `false` (first byte disambiguates).
    Bool,
    /// `null`.
    Null,
}

/// One tape node. `start..end` is the byte span of the token — for
/// container opens the span covers the *whole value* through its closing
/// bracket, so slicing `buf[start..end]` of any non-close entry yields
/// that value's exact text.
#[derive(Debug, Clone, Copy)]
pub struct TapeEntry {
    pub kind: TapeKind,
    pub start: u32,
    pub end: u32,
    /// Matching open/close tape index for containers; 0 otherwise.
    pub pair: u32,
}

/// The structural index of one JSON document.
#[derive(Debug, Clone)]
pub struct StructuralIndex {
    tape: Vec<TapeEntry>,
}

impl StructuralIndex {
    /// Build the index over one complete JSON value (trailing bytes after
    /// the value are an error, matching [`crate::parse::parse_item`]).
    pub fn build(buf: &[u8]) -> Result<Self> {
        Self::build_reusing(buf, Vec::new())
    }

    /// Like [`StructuralIndex::build`], but reuses a previously allocated
    /// tape (cleared first). Recover it with [`StructuralIndex::into_tape`].
    pub fn build_reusing(buf: &[u8], mut tape: Vec<TapeEntry>) -> Result<Self> {
        tape.clear();
        if buf.len() > u32::MAX as usize {
            return Err(JdmError::parse(0, "document exceeds the 4 GiB index limit"));
        }
        let mut b = Builder {
            buf,
            pos: 0,
            tape,
            stack: Vec::new(),
        };
        b.run()?;
        Ok(StructuralIndex { tape: b.tape })
    }

    /// The raw tape.
    #[inline]
    pub fn tape(&self) -> &[TapeEntry] {
        &self.tape
    }

    /// Number of tape entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.tape.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tape.is_empty()
    }

    /// Tape index of the document's root value (the tape is never empty
    /// for a successfully built index).
    #[inline]
    pub fn root(&self) -> usize {
        0
    }

    /// Give the tape back for pooling.
    pub fn into_tape(self) -> Vec<TapeEntry> {
        self.tape
    }

    /// Tape index one past the subtree rooted at `node` — the next sibling
    /// position. O(1): containers jump via their pair pointer.
    #[inline]
    pub fn skip(&self, node: usize) -> usize {
        let e = &self.tape[node];
        match e.kind {
            TapeKind::ObjectOpen | TapeKind::ArrayOpen => e.pair as usize + 1,
            _ => node + 1,
        }
    }

    /// Byte span `[start, end)` of the value at `node`.
    #[inline]
    pub fn span(&self, node: usize) -> (usize, usize) {
        let e = &self.tape[node];
        (e.start as usize, e.end as usize)
    }

    /// Tape indices of the members of the array at `node` (empty when the
    /// node is not an array open).
    pub fn members(&self, node: usize) -> Vec<usize> {
        let e = &self.tape[node];
        let mut out = Vec::new();
        if e.kind != TapeKind::ArrayOpen {
            return out;
        }
        let close = e.pair as usize;
        let mut i = node + 1;
        while i < close {
            out.push(i);
            i = self.skip(i);
        }
        out
    }

    /// Materialize the value at `node` into an [`Item`]. The span was
    /// already validated at build time, so this cannot fail structurally.
    pub fn item_at(&self, buf: &[u8], node: usize) -> Result<Item> {
        let (s, e) = self.span(node);
        let mut p = EventParser::new(&buf[s..e]);
        TreeBuilder::build(&mut p)
    }

    /// Decode the string of a [`TapeKind::Key`] or [`TapeKind::String`]
    /// entry.
    pub fn str_at<'a>(&self, buf: &'a [u8], node: usize) -> Result<Cow<'a, str>> {
        Ok(parse_string_at(buf, self.tape[node].start as usize)?.0)
    }

    /// Whether the key at `node` equals `wanted`, comparing raw bytes when
    /// the key has no escapes.
    pub fn key_equals(&self, buf: &[u8], node: usize, wanted: &str) -> Result<bool> {
        let e = &self.tape[node];
        let raw = &buf[e.start as usize + 1..e.end as usize - 1];
        if !raw.contains(&b'\\') {
            return Ok(raw == wanted.as_bytes());
        }
        Ok(parse_string_at(buf, e.start as usize)?.0 == wanted)
    }

    /// Replay the tape as the [`Event`] stream the event parser would
    /// produce for the same bytes (tape-driven consumers; differential
    /// tests pin this equivalence).
    pub fn events<'a>(&self, buf: &'a [u8]) -> Result<Vec<Event<'a>>> {
        let mut out = Vec::with_capacity(self.tape.len());
        for e in &self.tape {
            out.push(match e.kind {
                TapeKind::ObjectOpen => Event::StartObject,
                TapeKind::ObjectClose => Event::EndObject,
                TapeKind::ArrayOpen => Event::StartArray,
                TapeKind::ArrayClose => Event::EndArray,
                TapeKind::Key => Event::Key(parse_string_at(buf, e.start as usize)?.0),
                TapeKind::String => Event::String(parse_string_at(buf, e.start as usize)?.0),
                TapeKind::Number => Event::Number(number_at(buf, e.start as usize)?.0),
                TapeKind::Bool => Event::Bool(buf[e.start as usize] == b't'),
                TapeKind::Null => Event::Null,
            });
        }
        Ok(out)
    }

    /// The number value at a [`TapeKind::Number`] entry.
    pub fn number_at(&self, buf: &[u8], node: usize) -> Result<Number> {
        Ok(number_at(buf, self.tape[node].start as usize)?.0)
    }
}

/// Iterative (non-recursive) validating scanner.
struct Builder<'a> {
    buf: &'a [u8],
    pos: usize,
    tape: Vec<TapeEntry>,
    /// Tape indices of currently open containers.
    stack: Vec<u32>,
}

impl Builder<'_> {
    fn run(&mut self) -> Result<()> {
        self.skip_ws();
        self.value()?;
        self.skip_ws();
        if self.pos != self.buf.len() {
            return Err(JdmError::parse(self.pos, "trailing characters after value"));
        }
        Ok(())
    }

    /// Parse one complete value (with all nesting), iteratively.
    fn value(&mut self) -> Result<()> {
        let base = self.stack.len();
        loop {
            // At value position.
            self.skip_ws();
            match self.peek()? {
                b'{' => {
                    self.open(TapeKind::ObjectOpen)?;
                    self.skip_ws();
                    match self.peek()? {
                        b'}' => {
                            self.close_container();
                            if self.after_value(base)? {
                                return Ok(());
                            }
                        }
                        b'"' => self.key()?,
                        _ => return Err(JdmError::parse(self.pos, "expected object key")),
                    }
                }
                b'[' => {
                    self.open(TapeKind::ArrayOpen)?;
                    self.skip_ws();
                    if self.peek()? == b']' {
                        self.close_container();
                        if self.after_value(base)? {
                            return Ok(());
                        }
                    }
                }
                c => {
                    self.atom(c)?;
                    if self.after_value(base)? {
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Handle separators and closes after a completed value. Returns true
    /// when the stack has returned to `base` (the outermost value is
    /// complete); false when the cursor now sits at a new value position.
    fn after_value(&mut self, base: usize) -> Result<bool> {
        loop {
            if self.stack.len() == base {
                return Ok(true);
            }
            self.skip_ws();
            let top = *self.stack.last().expect("container open") as usize;
            let in_object = self.tape[top].kind == TapeKind::ObjectOpen;
            match self.peek()? {
                b',' => {
                    self.pos += 1;
                    self.skip_ws();
                    if in_object {
                        if self.peek()? != b'"' {
                            return Err(JdmError::parse(self.pos, "expected object key"));
                        }
                        self.key()?;
                    } else if self.peek()? == b']' {
                        return Err(JdmError::parse(self.pos, "trailing comma in array"));
                    }
                    return Ok(false);
                }
                b'}' if in_object => self.close_container(),
                b']' if !in_object => self.close_container(),
                _ => {
                    let expected = if in_object {
                        "',' or '}'"
                    } else {
                        "',' or ']'"
                    };
                    return Err(JdmError::parse(self.pos, format!("expected {expected}")));
                }
            }
        }
    }

    /// Record a key entry and consume through the `:` (cursor lands at the
    /// value position, whitespace skipped).
    fn key(&mut self) -> Result<()> {
        let start = self.pos;
        let (_, end) = parse_string_at(self.buf, self.pos)?;
        self.tape.push(TapeEntry {
            kind: TapeKind::Key,
            start: start as u32,
            end: end as u32,
            pair: 0,
        });
        self.pos = end;
        self.skip_ws();
        if self.peek()? != b':' {
            return Err(JdmError::parse(self.pos, "expected ':' after key"));
        }
        self.pos += 1;
        Ok(())
    }

    fn open(&mut self, kind: TapeKind) -> Result<()> {
        if self.stack.len() >= MAX_DEPTH {
            return Err(JdmError::parse(
                self.pos,
                format!("nesting depth exceeds {MAX_DEPTH}"),
            ));
        }
        let idx = self.tape.len() as u32;
        self.tape.push(TapeEntry {
            kind,
            start: self.pos as u32,
            end: self.pos as u32 + 1,
            pair: 0,
        });
        self.stack.push(idx);
        self.pos += 1;
        Ok(())
    }

    fn close_container(&mut self) {
        let open = self.stack.pop().expect("container open") as usize;
        let close = self.tape.len() as u32;
        let kind = match self.tape[open].kind {
            TapeKind::ObjectOpen => TapeKind::ObjectClose,
            _ => TapeKind::ArrayClose,
        };
        self.tape.push(TapeEntry {
            kind,
            start: self.pos as u32,
            end: self.pos as u32 + 1,
            pair: open as u32,
        });
        self.tape[open].pair = close;
        self.tape[open].end = self.pos as u32 + 1;
        self.pos += 1;
    }

    fn atom(&mut self, c: u8) -> Result<()> {
        let start = self.pos;
        let (kind, end) = match c {
            b'"' => {
                let (_, end) = parse_string_at(self.buf, self.pos)?;
                (TapeKind::String, end)
            }
            b'-' | b'0'..=b'9' => {
                let (end, _) = scan_number_at(self.buf, self.pos)?;
                (TapeKind::Number, end)
            }
            b't' => (TapeKind::Bool, self.word(b"true")?),
            b'f' => (TapeKind::Bool, self.word(b"false")?),
            b'n' => (TapeKind::Null, self.word(b"null")?),
            _ => {
                return Err(JdmError::parse(
                    self.pos,
                    format!("unexpected byte {:?}", c as char),
                ))
            }
        };
        self.tape.push(TapeEntry {
            kind,
            start: start as u32,
            end: end as u32,
            pair: 0,
        });
        self.pos = end;
        Ok(())
    }

    fn word(&self, w: &[u8]) -> Result<usize> {
        if self.buf.len() - self.pos >= w.len() && &self.buf[self.pos..self.pos + w.len()] == w {
            Ok(self.pos + w.len())
        } else {
            Err(JdmError::parse(self.pos, "invalid literal"))
        }
    }

    #[inline]
    fn peek(&self) -> Result<u8> {
        if self.pos >= self.buf.len() {
            return Err(JdmError::UnexpectedEof { offset: self.pos });
        }
        Ok(self.buf[self.pos])
    }

    #[inline]
    fn skip_ws(&mut self) {
        while self.pos < self.buf.len()
            && matches!(self.buf[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_item;

    fn idx(src: &str) -> StructuralIndex {
        StructuralIndex::build(src.as_bytes()).unwrap()
    }

    #[test]
    fn tape_records_structure_and_pairs() {
        let src = r#"{"a": [1, "x"], "b": null}"#;
        let t = idx(src);
        let kinds: Vec<TapeKind> = t.tape().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TapeKind::ObjectOpen,
                TapeKind::Key,
                TapeKind::ArrayOpen,
                TapeKind::Number,
                TapeKind::String,
                TapeKind::ArrayClose,
                TapeKind::Key,
                TapeKind::Null,
                TapeKind::ObjectClose,
            ]
        );
        // Pair pointers round-trip.
        assert_eq!(t.tape()[0].pair, 8);
        assert_eq!(t.tape()[8].pair, 0);
        assert_eq!(t.tape()[2].pair, 5);
        // Container spans cover the full value text.
        let (s, e) = t.span(2);
        assert_eq!(&src[s..e], r#"[1, "x"]"#);
        assert_eq!(t.span(0), (0, src.len()));
    }

    #[test]
    fn skip_jumps_whole_subtrees() {
        let t = idx(r#"[{"deep": [[1], 2]}, true]"#);
        let members = t.members(t.root());
        assert_eq!(members.len(), 2);
        assert_eq!(t.tape()[members[1]].kind, TapeKind::Bool);
    }

    #[test]
    fn item_at_materializes_subtrees() {
        let src = r#"{"a": [1, {"b": "x"}]}"#;
        let t = idx(src);
        let whole = t.item_at(src.as_bytes(), t.root()).unwrap();
        assert_eq!(whole, parse_item(src.as_bytes()).unwrap());
        let arr_node = 2; // after ObjectOpen, Key
        let arr = t.item_at(src.as_bytes(), arr_node).unwrap();
        assert_eq!(arr.get_index(0), Some(&Item::int(1)));
    }

    #[test]
    fn events_match_event_parser() {
        let src = r#"{"k\n": [1.5, "sé", true, null, -0], "z": {}}"#;
        let t = idx(src);
        let mut p = EventParser::new(src.as_bytes());
        let mut reference = Vec::new();
        while let Some(ev) = p.next_event().unwrap() {
            reference.push(ev);
        }
        assert_eq!(t.events(src.as_bytes()).unwrap(), reference);
    }

    #[test]
    fn rejects_what_the_event_parser_rejects() {
        for src in [
            "",
            "{",
            "[1,]",
            "01",
            "1 2",
            "tru",
            r#"{"a" 1}"#,
            r#""\q""#,
            r#""\uD800""#,
            "{\"a\":1,}",
            "[1 2]",
            "nul",
            "\"a\x01b\"",
        ] {
            assert!(
                StructuralIndex::build(src.as_bytes()).is_err(),
                "index accepted {src:?}"
            );
            assert!(
                parse_item(src.as_bytes()).is_err(),
                "parser accepted {src:?}"
            );
        }
    }

    #[test]
    fn depth_guard_matches_parser() {
        let deep = "[".repeat(MAX_DEPTH + 1);
        assert!(StructuralIndex::build(deep.as_bytes()).is_err());
        let ok = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(StructuralIndex::build(ok.as_bytes()).is_ok());
    }

    #[test]
    fn tape_reuse_keeps_capacity() {
        let t = idx(r#"[1, 2, 3, 4, 5, 6, 7, 8]"#);
        let tape = t.into_tape();
        let cap = tape.capacity();
        let t2 = StructuralIndex::build_reusing(b"[true]", tape).unwrap();
        assert_eq!(t2.len(), 3);
        assert!(t2.into_tape().capacity() >= cap);
    }
}
