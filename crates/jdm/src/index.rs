//! Structural index: a one-pass "tape" over raw JSON bytes.
//!
//! This is the two-stage parse used by fast JSON processors (simdjson and
//! its descendants): stage 1 scans the bytes once, *validating* the
//! document and recording every structural token — container open/close
//! positions (with matching-pair pointers), key and string spans, number
//! and literal spans — into a flat tape. Stage 2 (projection, tree
//! building) then navigates the tape with O(1) subtree skips instead of
//! re-scanning bytes.
//!
//! Two properties matter for the engine:
//!
//! * **Validation parity.** The builder accepts exactly the documents the
//!   event parser ([`crate::parse::EventParser`]) accepts — same number
//!   grammar, same string escape/surrogate/UTF-8 rules (the code is
//!   shared), same literal spelling, same nesting-depth limit, same
//!   "single value, no trailing bytes" contract. The differential test
//!   suite relies on this: index-guided projection must error exactly
//!   when a full tree parse errors, even for malformed bytes inside
//!   subtrees the projection would skip.
//! * **Record boundaries.** [`StructuralIndex::members`] exposes the
//!   member spans of any array on the tape, which is what lets the scan
//!   layer assign record-aligned byte ranges of one file to different
//!   partitions (see `vxq-core`'s split scan).
//!
//! The tape is a plain `Vec` that can be recycled across documents via
//! [`StructuralIndex::build_reusing`] / [`StructuralIndex::into_tape`]
//! (the scan layer pools tapes to avoid per-file allocation).

use crate::error::{JdmError, Result};
use crate::item::Item;
use crate::number::Number;
use crate::parse::{number_at, parse_string_at, scan_number_at};
use crate::parse::{Event, EventParser, TreeBuilder, MAX_DEPTH};
use crate::stage1::{IndexBlock, IndexScanner, Kernel, Stage1Mode};
use std::borrow::Cow;
use std::cell::RefCell;

thread_local! {
    /// Per-thread stage-1 scratch: block-mask storage reused across
    /// documents so steady-state index builds allocate nothing.
    static STAGE1_SCRATCH: RefCell<Vec<IndexBlock>> = const { RefCell::new(Vec::new()) };
}

/// Kind of one tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapeKind {
    /// `{` — `pair` points at the matching [`TapeKind::ObjectClose`].
    ObjectOpen,
    /// `}` — `pair` points back at the open entry.
    ObjectClose,
    /// `[` — `pair` points at the matching [`TapeKind::ArrayClose`].
    ArrayOpen,
    /// `]` — `pair` points back at the open entry.
    ArrayClose,
    /// An object key (quoted span; always immediately followed by its
    /// value's entries).
    Key,
    /// A string value (quoted span).
    String,
    /// A number value.
    Number,
    /// `true` / `false` (first byte disambiguates).
    Bool,
    /// `null`.
    Null,
}

/// One tape node. `start..end` is the byte span of the token — for
/// container opens the span covers the *whole value* through its closing
/// bracket, so slicing `buf[start..end]` of any non-close entry yields
/// that value's exact text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapeEntry {
    pub kind: TapeKind,
    pub start: u32,
    pub end: u32,
    /// Matching open/close tape index for containers; 0 otherwise.
    pub pair: u32,
}

/// The structural index of one JSON document.
#[derive(Debug, Clone)]
pub struct StructuralIndex {
    tape: Vec<TapeEntry>,
    kernel: Kernel,
}

impl StructuralIndex {
    /// Build the index over one complete JSON value (trailing bytes after
    /// the value are an error, matching [`crate::parse::parse_item`]).
    /// Stage-1 kernel selection follows the process-wide `VXQ_STAGE1`
    /// setting; use [`StructuralIndex::build_with`] to pin it.
    pub fn build(buf: &[u8]) -> Result<Self> {
        Self::build_reusing(buf, Vec::new())
    }

    /// [`StructuralIndex::build`] with an explicit stage-1 mode.
    pub fn build_with(buf: &[u8], mode: Stage1Mode) -> Result<Self> {
        Self::build_reusing_with(buf, Vec::new(), mode)
    }

    /// Like [`StructuralIndex::build`], but reuses a previously allocated
    /// tape (cleared first). Recover it with [`StructuralIndex::into_tape`].
    pub fn build_reusing(buf: &[u8], tape: Vec<TapeEntry>) -> Result<Self> {
        Self::build_reusing_with(buf, tape, Stage1Mode::from_env())
    }

    /// [`StructuralIndex::build_reusing`] with an explicit stage-1 mode.
    ///
    /// In any mode other than [`Stage1Mode::Scalar`] the document is first
    /// run through the vectorized stage-1 scanner ([`crate::stage1`]) and
    /// the builder consumes bitmasks — whitespace skipping, string-close
    /// discovery and clean-string validation become mask iteration. Every
    /// non-clean case (escapes, control bytes, invalid UTF-8, unterminated
    /// strings) is delegated to the shared scalar routines, so accepted
    /// documents, errors and error offsets are identical across modes.
    pub fn build_reusing_with(
        buf: &[u8],
        mut tape: Vec<TapeEntry>,
        mode: Stage1Mode,
    ) -> Result<Self> {
        tape.clear();
        if buf.len() > u32::MAX as usize {
            return Err(JdmError::parse(0, "document exceeds the 4 GiB index limit"));
        }
        let kernel = mode.resolve();
        if kernel == Kernel::Scalar {
            let mut b = Builder {
                buf,
                pos: 0,
                tape,
                stack: Vec::new(),
                scanner: None,
                mask_blk: usize::MAX,
                mask_word: 0,
            };
            b.run()?;
            return Ok(StructuralIndex {
                tape: b.tape,
                kernel,
            });
        }
        STAGE1_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let mut b = Builder {
                buf,
                pos: 0,
                tape,
                stack: Vec::new(),
                scanner: Some(IndexScanner::new(buf, kernel, &mut scratch)),
                mask_blk: usize::MAX,
                mask_word: 0,
            };
            b.run()?;
            Ok(StructuralIndex {
                tape: b.tape,
                kernel,
            })
        })
    }

    /// The stage-1 kernel that built this index.
    #[inline]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The raw tape.
    #[inline]
    pub fn tape(&self) -> &[TapeEntry] {
        &self.tape
    }

    /// Number of tape entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.tape.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tape.is_empty()
    }

    /// Tape index of the document's root value (the tape is never empty
    /// for a successfully built index).
    #[inline]
    pub fn root(&self) -> usize {
        0
    }

    /// Give the tape back for pooling.
    pub fn into_tape(self) -> Vec<TapeEntry> {
        self.tape
    }

    /// Tape index one past the subtree rooted at `node` — the next sibling
    /// position. O(1): containers jump via their pair pointer.
    #[inline]
    pub fn skip(&self, node: usize) -> usize {
        let e = &self.tape[node];
        match e.kind {
            TapeKind::ObjectOpen | TapeKind::ArrayOpen => e.pair as usize + 1,
            _ => node + 1,
        }
    }

    /// Byte span `[start, end)` of the value at `node`.
    #[inline]
    pub fn span(&self, node: usize) -> (usize, usize) {
        let e = &self.tape[node];
        (e.start as usize, e.end as usize)
    }

    /// Tape indices of the members of the array at `node` (empty when the
    /// node is not an array open). Allocates; hot paths should use
    /// [`StructuralIndex::members_iter`].
    pub fn members(&self, node: usize) -> Vec<usize> {
        self.members_iter(node).collect()
    }

    /// Iterator over the member tape indices of the array at `node`
    /// (empty when the node is not an array open). Zero-alloc equivalent
    /// of [`StructuralIndex::members`].
    pub fn members_iter(&self, node: usize) -> Members<'_> {
        let e = &self.tape[node];
        let (next, close) = if e.kind == TapeKind::ArrayOpen {
            (node + 1, e.pair as usize)
        } else {
            (0, 0)
        };
        Members {
            index: self,
            next,
            close,
        }
    }

    /// Materialize the value at `node` into an [`Item`]. The span was
    /// already validated at build time, so this cannot fail structurally.
    pub fn item_at(&self, buf: &[u8], node: usize) -> Result<Item> {
        let (s, e) = self.span(node);
        let mut p = EventParser::new(&buf[s..e]);
        TreeBuilder::build(&mut p)
    }

    /// Decode the string of a [`TapeKind::Key`] or [`TapeKind::String`]
    /// entry.
    pub fn str_at<'a>(&self, buf: &'a [u8], node: usize) -> Result<Cow<'a, str>> {
        Ok(parse_string_at(buf, self.tape[node].start as usize)?.0)
    }

    /// Whether the key at `node` equals `wanted`, comparing raw bytes when
    /// the key has no escapes.
    pub fn key_equals(&self, buf: &[u8], node: usize, wanted: &str) -> Result<bool> {
        let e = &self.tape[node];
        let raw = &buf[e.start as usize + 1..e.end as usize - 1];
        if !raw.contains(&b'\\') {
            return Ok(raw == wanted.as_bytes());
        }
        Ok(parse_string_at(buf, e.start as usize)?.0 == wanted)
    }

    /// Replay the tape as the [`Event`] stream the event parser would
    /// produce for the same bytes (tape-driven consumers; differential
    /// tests pin this equivalence).
    pub fn events<'a>(&self, buf: &'a [u8]) -> Result<Vec<Event<'a>>> {
        let mut out = Vec::with_capacity(self.tape.len());
        for e in &self.tape {
            out.push(match e.kind {
                TapeKind::ObjectOpen => Event::StartObject,
                TapeKind::ObjectClose => Event::EndObject,
                TapeKind::ArrayOpen => Event::StartArray,
                TapeKind::ArrayClose => Event::EndArray,
                TapeKind::Key => Event::Key(parse_string_at(buf, e.start as usize)?.0),
                TapeKind::String => Event::String(parse_string_at(buf, e.start as usize)?.0),
                TapeKind::Number => Event::Number(number_at(buf, e.start as usize)?.0),
                TapeKind::Bool => Event::Bool(buf[e.start as usize] == b't'),
                TapeKind::Null => Event::Null,
            });
        }
        Ok(out)
    }

    /// The number value at a [`TapeKind::Number`] entry.
    pub fn number_at(&self, buf: &[u8], node: usize) -> Result<Number> {
        Ok(number_at(buf, self.tape[node].start as usize)?.0)
    }
}

/// Zero-alloc iterator over an array's member tape indices; see
/// [`StructuralIndex::members_iter`].
pub struct Members<'a> {
    index: &'a StructuralIndex,
    next: usize,
    close: usize,
}

impl Iterator for Members<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.next >= self.close {
            return None;
        }
        let cur = self.next;
        self.next = self.index.skip(cur);
        Some(cur)
    }
}

/// Iterative (non-recursive) validating scanner.
struct Builder<'a> {
    buf: &'a [u8],
    pos: usize,
    tape: Vec<TapeEntry>,
    /// Currently open containers, encoded `tape_index << 1 | is_object`
    /// so the separator loop never has to load the open entry's kind.
    stack: Vec<u64>,
    /// Streaming stage-1 classifier (fused index profile) when a vector
    /// kernel is active; `None` in scalar mode (the original per-byte
    /// scan). Classification runs in cache-sized chunks just ahead of
    /// this builder's byte cursor, so the document is read once.
    scanner: Option<IndexScanner<'a>>,
    /// Running stage-1 cursor: the block index and remaining `interesting`
    /// bits last consulted by [`Builder::string_end`]. The builder's
    /// cursor only moves forward, so lookups in the same 64-byte block
    /// reuse this word instead of re-deriving it from the scanner.
    mask_blk: usize,
    mask_word: u64,
}

impl Builder<'_> {
    fn run(&mut self) -> Result<()> {
        self.value()?;
        self.skip_ws();
        if self.pos != self.buf.len() {
            return Err(JdmError::parse(self.pos, "trailing characters after value"));
        }
        Ok(())
    }

    /// Parse one complete value (with all nesting), iteratively.
    fn value(&mut self) -> Result<()> {
        let base = self.stack.len();
        loop {
            // At value position.
            match self.next_token()? {
                b'{' => {
                    self.open(TapeKind::ObjectOpen)?;
                    match self.next_token()? {
                        b'}' => {
                            self.close_container();
                            if self.after_value(base)? {
                                return Ok(());
                            }
                        }
                        b'"' => self.key()?,
                        _ => return Err(JdmError::parse(self.pos, "expected object key")),
                    }
                }
                b'[' => {
                    self.open(TapeKind::ArrayOpen)?;
                    if self.next_token()? == b']' {
                        self.close_container();
                        if self.after_value(base)? {
                            return Ok(());
                        }
                    }
                }
                c => {
                    self.atom(c)?;
                    if self.after_value(base)? {
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Handle separators and closes after a completed value. Returns true
    /// when the stack has returned to `base` (the outermost value is
    /// complete); false when the cursor now sits at a new value position.
    fn after_value(&mut self, base: usize) -> Result<bool> {
        loop {
            if self.stack.len() == base {
                return Ok(true);
            }
            let in_object = *self.stack.last().expect("container open") & 1 == 1;
            match self.next_token()? {
                b',' => {
                    self.pos += 1;
                    if in_object {
                        if self.next_token()? != b'"' {
                            return Err(JdmError::parse(self.pos, "expected object key"));
                        }
                        self.key()?;
                    } else if self.next_token()? == b']' {
                        return Err(JdmError::parse(self.pos, "trailing comma in array"));
                    }
                    // Scalar member values complete right here without
                    // bouncing through `value()` — the dominant shape in
                    // record-like data is long runs of scalar members.
                    let c = self.next_token()?;
                    if !matches!(c, b'{' | b'[') {
                        self.atom(c)?;
                        continue;
                    }
                    return Ok(false);
                }
                b'}' if in_object => self.close_container(),
                b']' if !in_object => self.close_container(),
                _ => {
                    let expected = if in_object {
                        "',' or '}'"
                    } else {
                        "',' or ']'"
                    };
                    return Err(JdmError::parse(self.pos, format!("expected {expected}")));
                }
            }
        }
    }

    /// Scan the string whose opening quote is at `self.pos`; returns the
    /// offset just past the closing quote. Mask-driven when stage-1 masks
    /// are present: the closing quote comes straight from the
    /// `interesting` bitmask, and a clean span (no escapes, no control
    /// bytes, pure ASCII) is accepted without per-byte scanning. Every
    /// non-clean case delegates to [`parse_string_at`], so validation
    /// behavior and error offsets are identical to the scalar scan by
    /// construction.
    fn string_end(&mut self) -> Result<usize> {
        if self.scanner.is_none() {
            return Ok(parse_string_at(self.buf, self.pos)?.1);
        }
        // The cursor (`mask_blk`/`mask_word`) only moves forward, matching
        // the builder's byte cursor, so consecutive strings in the same
        // 64-byte block skip the block lookup entirely.
        let from = self.pos + 1;
        let blk = from >> 6;
        if blk == self.mask_blk {
            self.mask_word &= !0u64 << (from & 63);
        } else {
            self.mask_blk = blk;
            self.mask_word = match self.interesting_word(blk) {
                Some(w) => w & (!0u64 << (from & 63)),
                None => 0,
            };
        }
        loop {
            if self.mask_word != 0 {
                let p = (self.mask_blk << 6) | self.mask_word.trailing_zeros() as usize;
                // Clean span: the first interesting byte of the body is a
                // quote, which is unescaped by construction (an escaping
                // backslash would have been interesting first) — nothing
                // in between needs validation.
                if self.buf[p] == b'"' {
                    return Ok(p + 1);
                }
                break;
            }
            match self.interesting_word(self.mask_blk + 1) {
                Some(w) => {
                    self.mask_blk += 1;
                    self.mask_word = w;
                }
                None => break,
            }
        }
        // Escapes / control bytes / non-ASCII, or no closing quote at all
        // (unterminated, or an error before EOF): the shared scalar scan
        // validates and reports exact offsets.
        Ok(parse_string_at(self.buf, self.pos)?.1)
    }

    /// Stage-1 `interesting` word for block `blk`, advancing the
    /// streaming classifier as needed. Masked mode only.
    #[inline(always)]
    fn interesting_word(&mut self, blk: usize) -> Option<u64> {
        self.scanner.as_mut().expect("masked mode").word(blk)
    }

    /// Record a key entry and consume through the `:` (cursor lands at the
    /// value position, whitespace skipped).
    fn key(&mut self) -> Result<()> {
        let start = self.pos;
        let end = self.string_end()?;
        self.tape.push(TapeEntry {
            kind: TapeKind::Key,
            start: start as u32,
            end: end as u32,
            pair: 0,
        });
        // Compact JSON puts the ':' right after the key.
        if self.buf.get(end) == Some(&b':') {
            self.pos = end + 1;
            return Ok(());
        }
        self.pos = end;
        self.skip_ws();
        if self.peek()? != b':' {
            return Err(JdmError::parse(self.pos, "expected ':' after key"));
        }
        self.pos += 1;
        Ok(())
    }

    fn open(&mut self, kind: TapeKind) -> Result<()> {
        if self.stack.len() >= MAX_DEPTH {
            return Err(JdmError::parse(
                self.pos,
                format!("nesting depth exceeds {MAX_DEPTH}"),
            ));
        }
        let idx = self.tape.len() as u64;
        let is_object = (kind == TapeKind::ObjectOpen) as u64;
        self.tape.push(TapeEntry {
            kind,
            start: self.pos as u32,
            end: self.pos as u32 + 1,
            pair: 0,
        });
        self.stack.push(idx << 1 | is_object);
        self.pos += 1;
        Ok(())
    }

    fn close_container(&mut self) {
        let enc = self.stack.pop().expect("container open");
        let open = (enc >> 1) as usize;
        let close = self.tape.len() as u32;
        let kind = if enc & 1 == 1 {
            TapeKind::ObjectClose
        } else {
            TapeKind::ArrayClose
        };
        self.tape.push(TapeEntry {
            kind,
            start: self.pos as u32,
            end: self.pos as u32 + 1,
            pair: open as u32,
        });
        self.tape[open].pair = close;
        self.tape[open].end = self.pos as u32 + 1;
        self.pos += 1;
    }

    fn atom(&mut self, c: u8) -> Result<()> {
        let start = self.pos;
        let (kind, end) = match c {
            b'"' => (TapeKind::String, self.string_end()?),
            b'-' | b'0'..=b'9' => {
                let (end, _) = scan_number_at(self.buf, self.pos)?;
                (TapeKind::Number, end)
            }
            b't' => (TapeKind::Bool, self.word(b"true")?),
            b'f' => (TapeKind::Bool, self.word(b"false")?),
            b'n' => (TapeKind::Null, self.word(b"null")?),
            _ => {
                return Err(JdmError::parse(
                    self.pos,
                    format!("unexpected byte {:?}", c as char),
                ))
            }
        };
        self.tape.push(TapeEntry {
            kind,
            start: start as u32,
            end: end as u32,
            pair: 0,
        });
        self.pos = end;
        Ok(())
    }

    fn word(&self, w: &[u8]) -> Result<usize> {
        if self.buf.len() - self.pos >= w.len() && &self.buf[self.pos..self.pos + w.len()] == w {
            Ok(self.pos + w.len())
        } else {
            Err(JdmError::parse(self.pos, "invalid literal"))
        }
    }

    #[inline]
    fn peek(&self) -> Result<u8> {
        if self.pos >= self.buf.len() {
            return Err(JdmError::UnexpectedEof { offset: self.pos });
        }
        Ok(self.buf[self.pos])
    }

    /// Skip whitespace and return the byte now under the cursor — the
    /// first byte of the next token — or `UnexpectedEof` at the
    /// post-whitespace offset. Single load + test in the common compact
    /// case (cursor already on a non-whitespace byte).
    #[inline]
    fn next_token(&mut self) -> Result<u8> {
        match self.buf.get(self.pos) {
            Some(&b) if !matches!(b, b' ' | b'\t' | b'\n' | b'\r') => Ok(b),
            Some(_) => {
                self.skip_ws();
                self.peek()
            }
            None => Err(JdmError::UnexpectedEof { offset: self.pos }),
        }
    }

    #[inline]
    fn skip_ws(&mut self) {
        // Common case first (compact JSON): the cursor is already on a
        // non-whitespace byte.
        // Whitespace runs in JSON are overwhelmingly 0-1 bytes (compact) or a
        // handful (pretty-printed indentation); a plain byte loop beats a
        // masked lookup here, so both scalar and masked builds share it.
        while self.pos < self.buf.len()
            && matches!(self.buf[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_item;

    fn idx(src: &str) -> StructuralIndex {
        StructuralIndex::build(src.as_bytes()).unwrap()
    }

    #[test]
    fn tape_records_structure_and_pairs() {
        let src = r#"{"a": [1, "x"], "b": null}"#;
        let t = idx(src);
        let kinds: Vec<TapeKind> = t.tape().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TapeKind::ObjectOpen,
                TapeKind::Key,
                TapeKind::ArrayOpen,
                TapeKind::Number,
                TapeKind::String,
                TapeKind::ArrayClose,
                TapeKind::Key,
                TapeKind::Null,
                TapeKind::ObjectClose,
            ]
        );
        // Pair pointers round-trip.
        assert_eq!(t.tape()[0].pair, 8);
        assert_eq!(t.tape()[8].pair, 0);
        assert_eq!(t.tape()[2].pair, 5);
        // Container spans cover the full value text.
        let (s, e) = t.span(2);
        assert_eq!(&src[s..e], r#"[1, "x"]"#);
        assert_eq!(t.span(0), (0, src.len()));
    }

    #[test]
    fn skip_jumps_whole_subtrees() {
        let t = idx(r#"[{"deep": [[1], 2]}, true]"#);
        let members = t.members(t.root());
        assert_eq!(members.len(), 2);
        assert_eq!(t.tape()[members[1]].kind, TapeKind::Bool);
    }

    #[test]
    fn item_at_materializes_subtrees() {
        let src = r#"{"a": [1, {"b": "x"}]}"#;
        let t = idx(src);
        let whole = t.item_at(src.as_bytes(), t.root()).unwrap();
        assert_eq!(whole, parse_item(src.as_bytes()).unwrap());
        let arr_node = 2; // after ObjectOpen, Key
        let arr = t.item_at(src.as_bytes(), arr_node).unwrap();
        assert_eq!(arr.get_index(0), Some(&Item::int(1)));
    }

    #[test]
    fn events_match_event_parser() {
        let src = r#"{"k\n": [1.5, "sé", true, null, -0], "z": {}}"#;
        let t = idx(src);
        let mut p = EventParser::new(src.as_bytes());
        let mut reference = Vec::new();
        while let Some(ev) = p.next_event().unwrap() {
            reference.push(ev);
        }
        assert_eq!(t.events(src.as_bytes()).unwrap(), reference);
    }

    #[test]
    fn rejects_what_the_event_parser_rejects() {
        for src in [
            "",
            "{",
            "[1,]",
            "01",
            "1 2",
            "tru",
            r#"{"a" 1}"#,
            r#""\q""#,
            r#""\uD800""#,
            "{\"a\":1,}",
            "[1 2]",
            "nul",
            "\"a\x01b\"",
        ] {
            assert!(
                StructuralIndex::build(src.as_bytes()).is_err(),
                "index accepted {src:?}"
            );
            assert!(
                parse_item(src.as_bytes()).is_err(),
                "parser accepted {src:?}"
            );
        }
    }

    #[test]
    fn depth_guard_matches_parser() {
        let deep = "[".repeat(MAX_DEPTH + 1);
        assert!(StructuralIndex::build(deep.as_bytes()).is_err());
        let ok = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(StructuralIndex::build(ok.as_bytes()).is_ok());
    }

    #[test]
    fn kernels_build_identical_tapes_or_identical_errors() {
        use crate::stage1::Stage1Mode;
        let docs: &[&str] = &[
            r#"{"a": [1, "x"], "b": null}"#,
            r#"{"k\n": [1.5, "sé", true, null, -0], "z": {}}"#,
            "  [ 1 ,\t2 ,\n3 ]  ",
            r#""just a string with a longer tail padding it past sixty-four bytes……""#,
            "",
            "{",
            "[1,]",
            "01",
            "1 2",
            "tru",
            r#"{"a" 1}"#,
            r#""\q""#,
            r#""\uD800""#,
            "\"a\x01b\"",
            "\"unterminated",
            "\"bad \\",
        ];
        for doc in docs {
            let scalar = StructuralIndex::build_with(doc.as_bytes(), Stage1Mode::Scalar);
            for mode in [
                Stage1Mode::Swar,
                Stage1Mode::Sse2,
                Stage1Mode::Avx2,
                Stage1Mode::Auto,
            ] {
                let got = StructuralIndex::build_with(doc.as_bytes(), mode);
                match (&scalar, &got) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.tape(), b.tape(), "{mode:?} tape differs on {doc:?}")
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b, "{mode:?} error differs on {doc:?}"),
                    _ => {
                        panic!("{mode:?} accept/reject mismatch on {doc:?}: {scalar:?} vs {got:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn members_iter_matches_members() {
        let t = idx(r#"[{"deep": [[1], 2]}, true, "s", 4.5, null]"#);
        assert_eq!(t.members_iter(t.root()).collect::<Vec<_>>(), t.members(0));
        assert_eq!(t.members(0).len(), 5);
        // Non-array nodes yield nothing.
        let obj = idx(r#"{"a": 1}"#);
        assert_eq!(obj.members_iter(0).count(), 0);
        assert_eq!(t.members_iter(1).count(), 0); // the object member
    }

    #[test]
    fn tape_reuse_keeps_capacity() {
        let t = idx(r#"[1, 2, 3, 4, 5, 6, 7, 8]"#);
        let tape = t.into_tape();
        let cap = tape.capacity();
        let t2 = StructuralIndex::build_reusing(b"[true]", tape).unwrap();
        assert_eq!(t2.len(), 3);
        assert!(t2.into_tape().capacity() >= cap);
    }
}
