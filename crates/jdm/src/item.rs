//! The JSONiq item tree model.
//!
//! A *json-item* is an object or array (paper §4, Fig. 2); atomics are
//! strings, numbers, booleans, null, plus the `xs:dateTime` atomic that the
//! JSONiq extension inherits from XQuery. A [`Item::Sequence`] is an XQuery
//! sequence of items — not a JSON value, but the unit that flows between
//! logical operators before the paper's rewrite rules break sequences up
//! into per-item tuples.

use crate::datetime::DateTime;
use crate::number::Number;
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// A JSONiq item (or sequence of items).
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Boolean(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(Box<str>),
    /// JSON array: ordered list of members.
    Array(Vec<Item>),
    /// JSON object: ordered list of key/value pairs. Duplicate keys are not
    /// rejected at parse time (JSON permits them); navigation returns the
    /// first match, like Jackson's default.
    Object(Vec<(Box<str>, Item)>),
    /// XQuery `xs:dateTime` atomic (JSONiq extension to the JSON types).
    DateTime(DateTime),
    /// An XQuery sequence. Sequences never nest (XQuery flattens them);
    /// constructors in this crate maintain that invariant.
    Sequence(Vec<Item>),
}

impl Item {
    /// Shorthand string constructor.
    pub fn str(s: impl Into<Box<str>>) -> Item {
        Item::String(s.into())
    }

    /// Shorthand integer constructor.
    pub fn int(i: i64) -> Item {
        Item::Number(Number::Int(i))
    }

    /// Shorthand double constructor.
    pub fn double(d: f64) -> Item {
        Item::Number(Number::Double(d))
    }

    /// Build a sequence, flattening any nested sequences (XQuery semantics).
    pub fn seq(items: impl IntoIterator<Item = Item>) -> Item {
        let mut out = Vec::new();
        for it in items {
            match it {
                Item::Sequence(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        Item::Sequence(out)
    }

    /// The empty sequence.
    pub fn empty() -> Item {
        Item::Sequence(Vec::new())
    }

    /// JSONiq `value` step on an object: `$o("key")`. Returns `None` (empty
    /// sequence) when the key is absent or the item is not an object.
    pub fn get_key(&self, key: &str) -> Option<&Item> {
        match self {
            Item::Object(pairs) => pairs.iter().find(|(k, _)| &**k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// JSONiq `value` step on an array: `$a(i)`, **1-based** per JSONiq.
    /// Index 0 or out-of-range yields `None`.
    pub fn get_position(&self, pos: i64) -> Option<&Item> {
        match self {
            Item::Array(items) if pos >= 1 => items.get((pos - 1) as usize),
            _ => None,
        }
    }

    /// 0-based array access, for Rust-side convenience (examples, tests).
    pub fn get_index(&self, idx: usize) -> Option<&Item> {
        match self {
            Item::Array(items) => items.get(idx),
            _ => None,
        }
    }

    /// JSONiq `keys-or-members` step `$x()`: all members of an array, or
    /// all keys of an object (as strings). Atomics yield an empty iterator.
    pub fn keys_or_members(&self) -> KeysOrMembers<'_> {
        match self {
            Item::Array(items) => KeysOrMembers::Members(items.iter()),
            Item::Object(pairs) => KeysOrMembers::Keys(pairs.iter()),
            _ => KeysOrMembers::Empty,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Item::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_number(&self) -> Option<Number> {
        match self {
            Item::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Item::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// DateTime payload, if this is a dateTime.
    pub fn as_datetime(&self) -> Option<DateTime> {
        match self {
            Item::DateTime(d) => Some(*d),
            _ => None,
        }
    }

    /// True for objects and arrays (the paper's *json-item*s).
    pub fn is_json_item(&self) -> bool {
        matches!(self, Item::Object(_) | Item::Array(_))
    }

    /// True for the empty sequence.
    pub fn is_empty_sequence(&self) -> bool {
        matches!(self, Item::Sequence(v) if v.is_empty())
    }

    /// Number of items when viewed as a sequence (a non-sequence item is a
    /// singleton sequence — XQuery semantics).
    pub fn sequence_len(&self) -> usize {
        match self {
            Item::Sequence(v) => v.len(),
            _ => 1,
        }
    }

    /// Iterate the item as a sequence (singleton for non-sequences).
    pub fn iter_sequence(&self) -> SequenceIter<'_> {
        match self {
            Item::Sequence(v) => SequenceIter::Many(v.iter()),
            other => SequenceIter::One(Some(other)),
        }
    }

    /// Consume the item as a sequence.
    pub fn into_sequence(self) -> Vec<Item> {
        match self {
            Item::Sequence(v) => v,
            other => vec![other],
        }
    }

    /// A rough measure of the heap footprint of this item tree, used by the
    /// runtime memory tracker (paper Table 3).
    pub fn heap_size(&self) -> usize {
        const NODE: usize = std::mem::size_of::<Item>();
        match self {
            Item::Null | Item::Boolean(_) | Item::Number(_) | Item::DateTime(_) => NODE,
            Item::String(s) => NODE + s.len(),
            Item::Array(v) | Item::Sequence(v) => {
                NODE + v.iter().map(Item::heap_size).sum::<usize>()
            }
            Item::Object(pairs) => {
                NODE + pairs
                    .iter()
                    .map(|(k, v)| k.len() + v.heap_size())
                    .sum::<usize>()
            }
        }
    }

    /// Deep structural equality that treats `Int(1)` and `Double(1.0)` as
    /// equal (follows [`Number`]'s equality) — this *is* `PartialEq`, named
    /// for readability at call sites in tests.
    pub fn deep_eq(&self, other: &Item) -> bool {
        self == other
    }

    /// Total order across all items, used for deterministic test output and
    /// order-insensitive result comparison. Type-ranked: null < boolean <
    /// number < string < dateTime < array < object < sequence.
    pub fn total_cmp(&self, other: &Item) -> Ordering {
        fn rank(i: &Item) -> u8 {
            match i {
                Item::Null => 0,
                Item::Boolean(_) => 1,
                Item::Number(_) => 2,
                Item::String(_) => 3,
                Item::DateTime(_) => 4,
                Item::Array(_) => 5,
                Item::Object(_) => 6,
                Item::Sequence(_) => 7,
            }
        }
        match (self, other) {
            (Item::Null, Item::Null) => Ordering::Equal,
            (Item::Boolean(a), Item::Boolean(b)) => a.cmp(b),
            (Item::Number(a), Item::Number(b)) => a.cmp(b),
            (Item::String(a), Item::String(b)) => a.cmp(b),
            (Item::DateTime(a), Item::DateTime(b)) => a.cmp(b),
            (Item::Array(a), Item::Array(b)) | (Item::Sequence(a), Item::Sequence(b)) => {
                cmp_slices(a, b)
            }
            (Item::Object(a), Item::Object(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    match ka.cmp(kb).then_with(|| va.total_cmp(vb)) {
                        Ordering::Equal => continue,
                        other => return other,
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

fn cmp_slices(a: &[Item], b: &[Item]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.total_cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

impl Eq for Item {}

impl Hash for Item {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Item::Null => state.write_u8(0),
            Item::Boolean(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Item::Number(n) => {
                state.write_u8(2);
                n.hash(state);
            }
            Item::String(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Item::DateTime(d) => {
                state.write_u8(4);
                d.hash(state);
            }
            Item::Array(v) => {
                state.write_u8(5);
                for i in v {
                    i.hash(state);
                }
            }
            Item::Object(pairs) => {
                state.write_u8(6);
                for (k, v) in pairs {
                    k.hash(state);
                    v.hash(state);
                }
            }
            Item::Sequence(v) => {
                state.write_u8(7);
                for i in v {
                    i.hash(state);
                }
            }
        }
    }
}

/// Iterator returned by [`Item::keys_or_members`].
pub enum KeysOrMembers<'a> {
    /// Members of an array.
    Members(std::slice::Iter<'a, Item>),
    /// Keys of an object (yielded as borrowed strings wrapped on the fly).
    Keys(std::slice::Iter<'a, (Box<str>, Item)>),
    /// Atomic: nothing.
    Empty,
}

impl<'a> Iterator for KeysOrMembers<'a> {
    type Item = Item;

    fn next(&mut self) -> Option<Item> {
        match self {
            KeysOrMembers::Members(it) => it.next().cloned(),
            KeysOrMembers::Keys(it) => it.next().map(|(k, _)| Item::String(k.clone())),
            KeysOrMembers::Empty => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            KeysOrMembers::Members(it) => it.size_hint(),
            KeysOrMembers::Keys(it) => it.size_hint(),
            KeysOrMembers::Empty => (0, Some(0)),
        }
    }
}

/// Iterator returned by [`Item::iter_sequence`].
pub enum SequenceIter<'a> {
    /// Singleton (non-sequence item).
    One(Option<&'a Item>),
    /// Proper sequence.
    Many(std::slice::Iter<'a, Item>),
}

impl<'a> Iterator for SequenceIter<'a> {
    type Item = &'a Item;

    fn next(&mut self) -> Option<&'a Item> {
        match self {
            SequenceIter::One(v) => v.take(),
            SequenceIter::Many(it) => it.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bookstore() -> Item {
        Item::Object(vec![(
            "bookstore".into(),
            Item::Object(vec![(
                "book".into(),
                Item::Array(vec![
                    Item::Object(vec![
                        ("title".into(), Item::str("Everyday Italian")),
                        ("price".into(), Item::double(30.0)),
                    ]),
                    Item::Object(vec![("title".into(), Item::str("Learning XML"))]),
                ]),
            )]),
        )])
    }

    #[test]
    fn value_step_on_objects() {
        let b = bookstore();
        let books = b.get_key("bookstore").unwrap().get_key("book").unwrap();
        assert!(matches!(books, Item::Array(v) if v.len() == 2));
        assert!(b.get_key("missing").is_none());
        assert!(Item::int(1).get_key("x").is_none());
    }

    #[test]
    fn value_step_on_arrays_is_one_based() {
        let b = bookstore();
        let books = b.get_key("bookstore").unwrap().get_key("book").unwrap();
        let first = books.get_position(1).unwrap();
        assert_eq!(
            first.get_key("title").unwrap().as_str(),
            Some("Everyday Italian")
        );
        assert!(books.get_position(0).is_none());
        assert!(books.get_position(3).is_none());
    }

    #[test]
    fn keys_or_members_on_array_yields_members() {
        let b = bookstore();
        let books = b.get_key("bookstore").unwrap().get_key("book").unwrap();
        let members: Vec<Item> = books.keys_or_members().collect();
        assert_eq!(members.len(), 2);
        assert!(members[0].get_key("title").is_some());
    }

    #[test]
    fn keys_or_members_on_object_yields_keys() {
        let b = bookstore();
        let keys: Vec<Item> = b.keys_or_members().collect();
        assert_eq!(keys, vec![Item::str("bookstore")]);
    }

    #[test]
    fn keys_or_members_on_atomic_is_empty() {
        assert_eq!(Item::str("x").keys_or_members().count(), 0);
        assert_eq!(Item::Null.keys_or_members().count(), 0);
    }

    #[test]
    fn sequences_flatten() {
        let s = Item::seq([
            Item::int(1),
            Item::seq([Item::int(2), Item::int(3)]),
            Item::int(4),
        ]);
        assert_eq!(s.sequence_len(), 4);
    }

    #[test]
    fn singleton_sequence_view() {
        let one = Item::int(42);
        assert_eq!(one.sequence_len(), 1);
        assert_eq!(one.iter_sequence().count(), 1);
    }

    #[test]
    fn duplicate_keys_first_wins() {
        let o = Item::Object(vec![("k".into(), Item::int(1)), ("k".into(), Item::int(2))]);
        assert_eq!(o.get_key("k").unwrap(), &Item::int(1));
    }

    #[test]
    fn heap_size_grows_with_content() {
        let small = Item::str("x");
        let big = bookstore();
        assert!(big.heap_size() > small.heap_size());
    }

    #[test]
    fn total_cmp_is_consistent() {
        let mut v = [Item::str("b"), Item::Null, Item::int(3), Item::str("a")];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v[0], Item::Null);
        assert_eq!(v[1], Item::int(3));
        assert_eq!(v[2], Item::str("a"));
    }
}
