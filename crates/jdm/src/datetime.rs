//! The `xs:dateTime` subset used by the paper's queries.
//!
//! The paper's queries call `dateTime(data($r("date")))` and then
//! `year-from-dateTime`, `month-from-dateTime`, `day-from-dateTime`
//! (Listings 7–10). GHCN web-service dates in the paper's sample file look
//! like `"20132512T00:00"`. We accept three formats:
//!
//! * `YYYYMMDDTHH:MM` — compact ISO-like (what our data generator emits),
//! * `YYYY-MM-DDTHH:MM[:SS]` — standard ISO-8601 (no time zone),
//! * `YYYYDDMMTHH:MM` — the paper's sample ordering, accepted only when the
//!   middle pair cannot be a month (i.e. > 12), so that valid ISO compact
//!   dates are never mis-read.
//!
//! Time zones are out of scope: the evaluation data has none.

use crate::error::{JdmError, Result};
use std::fmt;

/// A timezone-less Gregorian date-time with minute precision (seconds kept
/// when present).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DateTime {
    /// Gregorian year (proleptic; negative = BCE).
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
    /// Day of month, 1–31 (validated against the month).
    pub day: u8,
    /// Hour, 0–23.
    pub hour: u8,
    /// Minute, 0–59.
    pub minute: u8,
    /// Second, 0–59 (no leap seconds).
    pub second: u8,
}

impl DateTime {
    /// Construct, validating field ranges (month 1–12, day 1–31 checked
    /// against the month length, hour < 24, minute/second < 60).
    pub fn new(year: i32, month: u8, day: u8, hour: u8, minute: u8, second: u8) -> Result<Self> {
        let dt = DateTime {
            year,
            month,
            day,
            hour,
            minute,
            second,
        };
        if !(1..=12).contains(&month) {
            return Err(JdmError::BadDateTime(format!("month {month} out of range")));
        }
        if day < 1 || day > days_in_month(year, month) {
            return Err(JdmError::BadDateTime(format!("day {day} out of range")));
        }
        if hour > 23 || minute > 59 || second > 59 {
            return Err(JdmError::BadDateTime(format!(
                "time {hour}:{minute}:{second} out of range"
            )));
        }
        Ok(dt)
    }

    /// Parse any of the accepted formats (see module docs).
    pub fn parse(s: &str) -> Result<Self> {
        let bad = || JdmError::BadDateTime(s.to_string());
        let b = s.as_bytes();
        // Split date / time on 'T'.
        let t = s.find('T').ok_or_else(bad)?;
        let (date, time) = (&s[..t], &s[t + 1..]);
        let (hour, minute, second) = parse_time(time).ok_or_else(bad)?;
        if date.len() == 10 && b[4] == b'-' && b[7] == b'-' {
            // YYYY-MM-DD
            let year: i32 = date[..4].parse().map_err(|_| bad())?;
            let month: u8 = date[5..7].parse().map_err(|_| bad())?;
            let day: u8 = date[8..10].parse().map_err(|_| bad())?;
            return DateTime::new(year, month, day, hour, minute, second);
        }
        if date.len() == 8 && date.bytes().all(|c| c.is_ascii_digit()) {
            let year: i32 = date[..4].parse().map_err(|_| bad())?;
            let mid: u8 = date[4..6].parse().map_err(|_| bad())?;
            let last: u8 = date[6..8].parse().map_err(|_| bad())?;
            // Prefer YYYYMMDD; fall back to the paper's YYYYDDMM ordering
            // when the middle pair cannot be a month.
            if (1..=12).contains(&mid) {
                return DateTime::new(year, mid, last, hour, minute, second);
            }
            if (1..=12).contains(&last) {
                return DateTime::new(year, last, mid, hour, minute, second);
            }
            return Err(bad());
        }
        Err(bad())
    }

    /// Days since 0001-01-01 (proleptic Gregorian), for date arithmetic and
    /// a compact sortable encoding.
    pub fn days_from_epoch(&self) -> i64 {
        let y = self.year as i64 - 1;
        let mut days = y * 365 + y.div_euclid(4) - y.div_euclid(100) + y.div_euclid(400);
        days += CUMULATIVE_DAYS[(self.month - 1) as usize] as i64;
        if self.month > 2 && is_leap(self.year) {
            days += 1;
        }
        days + self.day as i64 - 1
    }

    /// Minutes since 0001-01-01T00:00, used as a compact binary encoding.
    pub fn minutes_from_epoch(&self) -> i64 {
        self.days_from_epoch() * 1440 + self.hour as i64 * 60 + self.minute as i64
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}",
            self.year, self.month, self.day, self.hour, self.minute, self.second
        )
    }
}

const CUMULATIVE_DAYS: [u16; 12] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334];

/// Gregorian leap-year test.
pub fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `month` of `year`.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

fn parse_time(t: &str) -> Option<(u8, u8, u8)> {
    let b = t.as_bytes();
    match b.len() {
        5 if b[2] == b':' => Some((t[..2].parse().ok()?, t[3..5].parse().ok()?, 0)),
        8 if b[2] == b':' && b[5] == b':' => Some((
            t[..2].parse().ok()?,
            t[3..5].parse().ok()?,
            t[6..8].parse().ok()?,
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_compact_iso() {
        let d = DateTime::parse("20131225T00:00").unwrap();
        assert_eq!((d.year, d.month, d.day), (2013, 12, 25));
    }

    #[test]
    fn parses_dashed_iso_with_seconds() {
        let d = DateTime::parse("2014-01-31T23:59:58").unwrap();
        assert_eq!(
            (d.year, d.month, d.day, d.hour, d.minute, d.second),
            (2014, 1, 31, 23, 59, 58)
        );
    }

    #[test]
    fn parses_paper_sample_ordering() {
        // "20132512T00:00" from Listing 6: day 25, month 12.
        let d = DateTime::parse("20132512T00:00").unwrap();
        assert_eq!((d.year, d.month, d.day), (2013, 12, 25));
    }

    #[test]
    fn rejects_garbage() {
        assert!(DateTime::parse("not a date").is_err());
        assert!(DateTime::parse("20133535T00:00").is_err()); // no month reading works
        assert!(DateTime::parse("20130230T00:00").is_err()); // Feb 30
        assert!(DateTime::parse("20131225T25:00").is_err()); // hour 25
                                                             // "month 13" is readable under the paper's DDMM ordering: Jan 13.
        let d = DateTime::parse("20131301T00:00").unwrap();
        assert_eq!((d.month, d.day), (1, 13));
    }

    #[test]
    fn leap_years() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(2004));
        assert!(!is_leap(2013));
        assert_eq!(days_in_month(2004, 2), 29);
        assert_eq!(days_in_month(2013, 2), 28);
    }

    #[test]
    fn epoch_days_are_monotone() {
        let a = DateTime::parse("20131225T00:00").unwrap();
        let b = DateTime::parse("20131226T00:00").unwrap();
        let c = DateTime::parse("20140101T00:00").unwrap();
        assert_eq!(b.days_from_epoch() - a.days_from_epoch(), 1);
        assert_eq!(c.days_from_epoch() - b.days_from_epoch(), 6);
    }

    #[test]
    fn ordering_matches_chronology() {
        let a = DateTime::parse("2013-12-25T00:00").unwrap();
        let b = DateTime::parse("2013-12-25T00:01").unwrap();
        assert!(a < b);
    }
}
