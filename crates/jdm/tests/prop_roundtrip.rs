//! Property tests for the jdm invariants listed in DESIGN.md §7:
//! text round-trip, binary round-trip, ItemRef/tree agreement, and
//! projection ≡ full-parse-then-navigate.

use jdm::binary::{to_bytes, ItemRef};
use jdm::parse::parse_item;
use jdm::path::{PathStep, ProjectionPath};
use jdm::project::project_all;
use jdm::text::to_string;
use jdm::{Item, Number};
use proptest::prelude::*;

/// Generator for arbitrary JSON items (no dateTime/sequence: those never
/// come from JSON text).
fn arb_json(depth: u32) -> impl Strategy<Value = Item> {
    let leaf = prop_oneof![
        Just(Item::Null),
        any::<bool>().prop_map(Item::Boolean),
        any::<i64>().prop_map(|i| Item::Number(Number::Int(i))),
        // Finite doubles only: JSON cannot express NaN/Inf.
        prop::num::f64::NORMAL.prop_map(|d| Item::Number(Number::Double(d))),
        "[ -~]{0,12}".prop_map(Item::str), // printable ASCII
        "\\PC{0,8}".prop_map(Item::str),   // arbitrary unicode
    ];
    leaf.prop_recursive(depth, 64, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Item::Array),
            prop::collection::vec(("[a-z]{1,6}", inner), 0..6).prop_map(|pairs| {
                Item::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn text_round_trip(item in arb_json(4)) {
        let text = to_string(&item);
        let back = parse_item(text.as_bytes()).unwrap();
        prop_assert_eq!(&back, &item);
    }

    #[test]
    fn binary_round_trip(item in arb_json(4)) {
        let bytes = to_bytes(&item);
        let back = ItemRef::new(&bytes).unwrap().to_item().unwrap();
        prop_assert_eq!(&back, &item);
    }

    #[test]
    fn binary_length_matches(item in arb_json(4)) {
        let bytes = to_bytes(&item);
        prop_assert_eq!(jdm::binary::item_len(&bytes).unwrap(), bytes.len());
    }

    #[test]
    fn itemref_navigation_agrees_with_tree(
        pairs in prop::collection::vec(("[a-z]{1,4}", arb_json(2)), 1..5)
    ) {
        let obj = Item::Object(pairs.iter().map(|(k, v)| (k.clone().into(), v.clone())).collect());
        let bytes = to_bytes(&obj);
        let r = ItemRef::new(&bytes).unwrap();
        for (k, _) in &pairs {
            let via_ref = r.get_key(k).map(|v| v.to_item().unwrap());
            let via_tree = obj.get_key(k).cloned();
            prop_assert_eq!(via_ref, via_tree);
        }
        prop_assert!(r.get_key("KEY_NOT_PRESENT").is_none());
    }

    #[test]
    fn projection_equals_navigate(
        records in prop::collection::vec(
            prop::collection::vec(arb_json(1), 0..4), 0..5
        )
    ) {
        // Build the sensor-file shape: {"root": [{"results": [...]} ...]}
        let root = Item::Array(
            records
                .iter()
                .map(|rs| {
                    Item::Object(vec![
                        ("metadata".into(), Item::Object(vec![("count".into(), Item::int(rs.len() as i64))])),
                        ("results".into(), Item::Array(rs.clone())),
                    ])
                })
                .collect(),
        );
        let doc = Item::Object(vec![("root".into(), root)]);
        let text = to_string(&doc);

        let path: ProjectionPath = [
            PathStep::Key("root".into()),
            PathStep::AllMembers,
            PathStep::Key("results".into()),
            PathStep::AllMembers,
        ]
        .into_iter()
        .collect();

        let streamed = project_all(text.as_bytes(), &path).unwrap();
        let expected: Vec<Item> = records.into_iter().flatten().collect();
        prop_assert_eq!(streamed, expected);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse_item(&bytes); // must return Ok or Err, never panic
    }

    #[test]
    fn parser_never_panics_on_ascii_soup(s in "[ -~]{0,128}") {
        let _ = parse_item(s.as_bytes());
    }

    #[test]
    fn itemref_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        if let Ok(r) = ItemRef::new(&bytes) {
            let _ = r.to_item(); // corrupt payloads must error, not panic
        }
    }
}
