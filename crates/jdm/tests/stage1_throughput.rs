//! Ignored-by-default throughput smoke test for the stage-1 kernels.
//! Run with: cargo test --release -p jdm --test stage1_throughput -- --ignored --nocapture

use jdm::index::StructuralIndex;
use jdm::stage1::{available_kernels, Kernel, Stage1Mode};

fn ghcn_like(target_bytes: usize) -> Vec<u8> {
    let mut out = String::with_capacity(target_bytes + 4096);
    out.push_str(r#"{"root":[{"metadata":{"totalCount":1000,"pageSize":100},"results":["#);
    let mut i = 0u64;
    while out.len() < target_bytes {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            r#"{{"date":"2018-01-{:02}T00:00:00.000","dataType":"TMAX","station":"GHCND:USW{:08}","attributes":",,W,2400","value":{}.{}}}"#,
            (i % 28) + 1,
            i % 99_999_999,
            (i % 500) as i64 - 250,
            i % 10
        ));
        i += 1;
    }
    out.push_str("]}]}");
    out.into_bytes()
}

#[test]
#[ignore]
fn kernel_throughput() {
    let buf = ghcn_like(8 * 1024 * 1024);
    let mut results = Vec::new();
    for kernel in available_kernels() {
        let mode = match kernel {
            Kernel::Scalar => Stage1Mode::Scalar,
            Kernel::Swar => Stage1Mode::Swar,
            Kernel::Sse2 => Stage1Mode::Sse2,
            Kernel::Avx2 => Stage1Mode::Avx2,
        };
        // Warm-up + best-of-5.
        let mut tape = StructuralIndex::build_with(&buf, mode).unwrap().into_tape();
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t = std::time::Instant::now();
            let idx = StructuralIndex::build_reusing_with(&buf, tape, mode).unwrap();
            let dt = t.elapsed().as_secs_f64();
            assert_eq!(idx.kernel(), kernel);
            tape = idx.into_tape();
            best = best.min(dt);
        }
        let gbps = buf.len() as f64 / best / 1e9;
        println!("{:>8}: {:.3} GB/s", kernel.label(), gbps);
        results.push((kernel, gbps));
    }
    let scalar = results
        .iter()
        .find(|(k, _)| *k == Kernel::Scalar)
        .unwrap()
        .1;
    for (k, g) in &results {
        println!("{:>8}: {:.2}x vs scalar", k.label(), g / scalar);
    }
}
