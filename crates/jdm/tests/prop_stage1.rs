//! Kernel-differential property tests for vectorized stage 1: every
//! stage-1 kernel (scalar, SWAR, SSE2, AVX2 where available) must build a
//! byte-identical tape on valid input and report an *identical* error —
//! same variant, same offset, same message — on invalid input. Validation
//! parity is the contract that lets the engine pick kernels freely (see
//! DESIGN.md §11); these tests are the enforcement.

use jdm::index::{StructuralIndex, TapeEntry};
use jdm::stage1::{available_kernels, Kernel, Stage1Masks, Stage1Mode};
use jdm::text::to_string;
use jdm::{Item, Number};
use proptest::prelude::*;

fn mode_for(kernel: Kernel) -> Stage1Mode {
    match kernel {
        Kernel::Scalar => Stage1Mode::Scalar,
        Kernel::Swar => Stage1Mode::Swar,
        Kernel::Sse2 => Stage1Mode::Sse2,
        Kernel::Avx2 => Stage1Mode::Avx2,
    }
}

/// Outcome of one index build, normalized for comparison: the tape on
/// success, the debug rendering of the error (variant + offset + message)
/// on failure.
fn outcome(buf: &[u8], kernel: Kernel) -> Result<Vec<TapeEntry>, String> {
    StructuralIndex::build_with(buf, mode_for(kernel))
        .map(|ix| ix.tape().to_vec())
        .map_err(|e| format!("{e:?}"))
}

/// Every available kernel must agree with the scalar build, bit for bit.
fn assert_kernels_agree(buf: &[u8]) {
    let reference = outcome(buf, Kernel::Scalar);
    for kernel in available_kernels() {
        let got = outcome(buf, kernel);
        assert_eq!(
            got,
            reference,
            "kernel {} diverged from scalar on {:?}",
            kernel.label(),
            String::from_utf8_lossy(buf)
        );
    }
}

/// JSON value generator (same shape as prop_roundtrip's).
fn arb_json(depth: u32) -> impl Strategy<Value = Item> {
    let leaf = prop_oneof![
        Just(Item::Null),
        any::<bool>().prop_map(Item::Boolean),
        any::<i64>().prop_map(|i| Item::Number(Number::Int(i))),
        prop::num::f64::NORMAL.prop_map(|d| Item::Number(Number::Double(d))),
        "[ -~]{0,24}".prop_map(Item::str), // printable ASCII incl. " and \
        "\\PC{0,12}".prop_map(Item::str),  // arbitrary unicode
    ];
    leaf.prop_recursive(depth, 64, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Item::Array),
            prop::collection::vec(("[a-z]{1,8}", inner), 0..6).prop_map(|pairs| {
                Item::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
            }),
        ]
    })
}

/// Documents engineered to straddle the 64-byte block boundary: `pad`
/// walks the opening quote across a two-block window and `body` walks
/// the closing quote across the next boundary, with a tail that is
/// clean, escaped, control-polluted, non-ASCII, or unterminated.
fn arb_boundary_doc() -> impl Strategy<Value = Vec<u8>> {
    (0usize..130, 0usize..130, 0u8..5).prop_map(|(pad, body, tail)| {
        let mut s = String::from("[");
        for _ in 0..pad {
            s.push(' ');
        }
        s.push('"');
        for _ in 0..body {
            s.push('a');
        }
        match tail {
            0 => s.push_str("\"]"),      // clean close
            1 => s.push_str("\\\"x\"]"), // escaped quote inside the body
            2 => s.push_str("\u{7}\"]"), // raw control byte: invalid
            3 => s.push_str("é\"]"),     // non-ASCII (valid UTF-8)
            _ => {}                      // unterminated string: invalid
        }
        s.into_bytes()
    })
}

/// On x86_64 the auto mode must resolve to a vector kernel (SSE2 is part
/// of the architecture baseline), never silently fall back to scalar —
/// CI runs this to prove the fleet actually executes vectorized stage 1.
#[cfg(target_arch = "x86_64")]
#[test]
fn auto_selects_vector_kernel() {
    for mode in [Stage1Mode::Auto, Stage1Mode::Simd] {
        let k = mode.resolve();
        assert!(
            matches!(k, Kernel::Sse2 | Kernel::Avx2),
            "{mode:?} resolved to {}",
            k.label()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Valid JSON: identical tapes across kernels.
    #[test]
    fn kernels_agree_on_valid_json(item in arb_json(4)) {
        assert_kernels_agree(to_string(&item).as_bytes());
    }

    /// Arbitrary byte soup (overwhelmingly invalid): identical error,
    /// including the offset, across kernels — and no panics.
    #[test]
    fn kernels_agree_on_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        assert_kernels_agree(&bytes);
    }

    /// ASCII soup hits the structural fast paths far more often than raw
    /// bytes do; errors must still match exactly.
    #[test]
    fn kernels_agree_on_ascii_soup(s in "[ -~]{0,192}") {
        assert_kernels_agree(s.as_bytes());
    }

    /// Strings straddling 64-byte block boundaries, valid and invalid:
    /// the mask cursor's block-advance logic must agree with the scalar
    /// scan at every alignment.
    #[test]
    fn kernels_agree_at_block_boundaries(doc in arb_boundary_doc()) {
        assert_kernels_agree(&doc);
    }

    /// The raw stage-1 classifications themselves are bit-identical
    /// across kernels (full profile: all seven masks).
    #[test]
    fn stage1_masks_bit_identical(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let reference = Stage1Masks::scan(&bytes, Kernel::Scalar);
        for kernel in available_kernels() {
            let got = Stage1Masks::scan(&bytes, kernel);
            assert_eq!(got.blocks(), reference.blocks(), "kernel {}", kernel.label());
        }
    }
}
