//! Vendored, dependency-free subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate implements
//! exactly the surface the workspace's property tests use: the `proptest!`
//! macro, `Strategy` with `prop_map`/`prop_recursive`/`boxed`, `Just`,
//! `any`, `prop_oneof!`, `prop::collection::vec`, `prop::num::f64::NORMAL`,
//! simple regex-class string strategies (`"[a-z]{1,6}"`, `"\\PC{0,8}"`),
//! integer range strategies, tuple strategies, and
//! `ProptestConfig::with_cases`.
//!
//! Semantics: each test runs `cases` iterations with values drawn from a
//! deterministic per-test RNG (seeded from the test name), so failures are
//! reproducible run-to-run. Unlike real proptest there is no shrinking —
//! on failure the offending inputs are printed verbatim.

use std::ops::Range;
use std::rc::Rc;

/// Deterministic generator: SplitMix64.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name so every test has its own reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift rejection-free mapping is fine for test data.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of values of one type.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        U: 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy::new(move |rng| f(self.new_value(rng)))
    }

    /// Depth-bounded recursion: at each level pick either the leaf (`self`)
    /// or one level of `recurse` applied to the previous strategy.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth.max(1) {
            let leaf = self.clone().boxed();
            let deeper = recurse(strat).boxed();
            strat = BoxedStrategy::new(move |rng| {
                // Bias toward containers so recursion is exercised, but keep
                // bare leaves reachable at every level.
                if rng.below(4) == 0 {
                    leaf.new_value(rng)
                } else {
                    deeper.new_value(rng)
                }
            });
        }
        strat
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::new(move |rng| self.new_value(rng))
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: self.gen.clone(),
        }
    }
}

impl<T: 'static> BoxedStrategy<T> {
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Uniform pick among boxed alternatives (backs `prop_oneof!`).
pub fn union<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy::new(move |rng| {
        let i = rng.below(options.len() as u64) as usize;
        options[i].new_value(rng)
    })
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` for the primitive types the tests draw.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(std::marker::PhantomData)
    }
}

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}
impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}
impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// String strategies from a small regex subset: `[class]{m,n}` where the
/// class holds literal chars and ranges (`a-z`, ` -~`), plus `\PC{m,n}`
/// for arbitrary non-control unicode.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_pattern(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            out.push(match &chars {
                CharClass::Set(set) => set[rng.below(set.len() as u64) as usize],
                CharClass::AnyNonControl => loop {
                    if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                        if !c.is_control() {
                            break c;
                        }
                    }
                },
            });
        }
        out
    }
}

enum CharClass {
    Set(Vec<char>),
    AnyNonControl,
}

fn bad_pattern(pat: &str) -> ! {
    panic!(
        "unsupported pattern {pat:?} (vendored proptest supports [class]{{m,n}} and \\PC{{m,n}})"
    )
}

fn parse_pattern(pat: &str) -> (CharClass, usize, usize) {
    let (class, rest) = if let Some(rest) = pat.strip_prefix("\\PC") {
        (CharClass::AnyNonControl, rest)
    } else if let Some(stripped) = pat.strip_prefix('[') {
        let end = stripped.find(']').unwrap_or_else(|| bad_pattern(pat));
        let body: Vec<char> = stripped[..end].chars().collect();
        let mut set = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                assert!(lo <= hi, "bad class range in {pat:?}");
                for c in lo..=hi {
                    set.push(char::from_u32(c).unwrap());
                }
                i += 3;
            } else {
                set.push(body[i]);
                i += 1;
            }
        }
        assert!(!set.is_empty(), "empty class in {pat:?}");
        (CharClass::Set(set), &stripped[end + 1..])
    } else {
        bad_pattern(pat)
    };
    let counts = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| bad_pattern(pat));
    let (m, n) = counts.split_once(',').unwrap_or((counts, counts));
    let min: usize = m.trim().parse().unwrap_or_else(|_| bad_pattern(pat));
    let max: usize = n.trim().parse().unwrap_or_else(|_| bad_pattern(pat));
    assert!(min <= max, "bad repetition in {pat:?}");
    (class, min, max)
}

macro_rules! tuple_strategy {
    ($(($($s:ident $i:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A 0, B 1), (A 0, B 1, C 2), (A 0, B 1, C 2, D 3));

/// `prop::collection` / `prop::num` namespaces.
pub mod collection {
    use super::{BoxedStrategy, Strategy};
    use std::ops::Range;

    /// Vector of values with length drawn from `size`.
    pub fn vec<S>(element: S, size: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        BoxedStrategy::new(move |rng| {
            let len = size.start + rng.below((size.end - size.start) as u64) as usize;
            (0..len).map(|_| element.new_value(rng)).collect()
        })
    }
}

pub mod num {
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Strategy for normal (finite, non-subnormal) doubles.
        #[derive(Clone, Copy)]
        pub struct Normal;

        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f64;
            fn new_value(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

pub mod test_runner {
    /// Run configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Just, Strategy};

    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with ($config) $($rest)* }
    };
    (@with ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strategy), &mut rng);)+
                // Render inputs up front: the body may move them.
                let mut inputs = String::new();
                $(inputs.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest: case {case} of {} failed with inputs:\n{inputs}",
                        stringify!($name)
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @with ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (-5i64..7).new_value(&mut rng);
            assert!((-5..7).contains(&v));
            let u = (1usize..3).new_value(&mut rng);
            assert!((1..3).contains(&u));
        }
    }

    #[test]
    fn regex_classes_match() {
        let mut rng = crate::TestRng::for_test("regex");
        for _ in 0..200 {
            let s = "[a-z]{1,6}".new_value(&mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[ -~]{0,12}".new_value(&mut rng);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
            let u = "\\PC{0,8}".new_value(&mut rng);
            assert!(u.chars().all(|c| !c.is_control()));
            assert!(u.chars().count() <= 8);
        }
    }

    #[test]
    fn oneof_union_draws_all_arms() {
        let mut rng = crate::TestRng::for_test("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn normal_doubles_are_normal() {
        let mut rng = crate::TestRng::for_test("normal");
        for _ in 0..200 {
            assert!(prop::num::f64::NORMAL.new_value(&mut rng).is_normal());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_runnable_tests(
            v in prop::collection::vec(any::<u8>(), 0..10),
            s in "[a-d]{1,2}",
        ) {
            prop_assert!(v.len() < 10);
            prop_assert!(!s.is_empty() && s.len() <= 2);
        }
    }
}
