//! Criterion benches for the rewrite-rule ablations (Figs. 13–16).
//!
//! One Criterion group per figure; each group benchmarks every query
//! under the figure's *before* and *after* rule configurations on a
//! small cached dataset (statistical companion to
//! `cargo run -p bench --release -- fig13 ...`).

use algebra::rules::RuleConfig;
use bench::{Harness, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use dataflow::ClusterSpec;
use vxq_core::queries::SENSOR_QUERIES;

fn harness() -> Harness {
    Harness {
        scale: Scale::Tiny,
        repeat: 1,
        ..Default::default()
    }
}

fn bench_ablation(c: &mut Criterion, group: &str, before: RuleConfig, after: RuleConfig) {
    let h = harness();
    let spec = h.sensor_spec(256 * 1024, 1, 30);
    let root = h.dataset("crit-rules", &spec);
    let cluster = ClusterSpec::single_node(1);
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (name, q) in SENSOR_QUERIES {
        let eb = h.engine(&root, cluster.clone(), before);
        g.bench_function(format!("{name}/before"), |b| {
            b.iter(|| eb.execute(q).expect("query"))
        });
        let ea = h.engine(&root, cluster.clone(), after);
        g.bench_function(format!("{name}/after"), |b| {
            b.iter(|| ea.execute(q).expect("query"))
        });
    }
    g.finish();
}

fn fig13(c: &mut Criterion) {
    bench_ablation(
        c,
        "fig13_path_rules",
        RuleConfig::none(),
        RuleConfig::path_only(),
    );
}

fn fig14(c: &mut Criterion) {
    bench_ablation(
        c,
        "fig14_pipelining_rules",
        RuleConfig::path_only(),
        RuleConfig::path_and_pipelining(),
    );
}

fn fig15(c: &mut Criterion) {
    bench_ablation(
        c,
        "fig15_group_by_rules",
        RuleConfig::path_and_pipelining(),
        RuleConfig::all(),
    );
}

fn fig16(c: &mut Criterion) {
    let h = harness();
    let cluster = ClusterSpec::single_node(1);
    let mut g = c.benchmark_group("fig16_q1_data_sizes");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for mult in [1usize, 2, 4] {
        let spec = h.sensor_spec(128 * 1024 * mult, 1, 30);
        let root = h.dataset(&format!("crit-fig16-{mult}"), &spec);
        let eb = h.engine(&root, cluster.clone(), RuleConfig::none());
        g.bench_function(format!("{mult}x/before"), |b| {
            b.iter(|| eb.execute(vxq_core::queries::Q1).expect("q1"))
        });
        let ea = h.engine(&root, cluster.clone(), RuleConfig::all());
        g.bench_function(format!("{mult}x/after"), |b| {
            b.iter(|| ea.execute(vxq_core::queries::Q1).expect("q1"))
        });
    }
    g.finish();
}

criterion_group!(benches, fig13, fig14, fig15, fig16);
criterion_main!(benches);
