//! Micro-benchmarks of the hot substrate paths: JSON event parsing, the
//! path-projecting parser vs full parse+navigate (the pipelining rules'
//! runtime mechanism), binary item encode/decode, frame append/read, and
//! logical-plan optimization cost (the paper notes rewriting adds "just a
//! few msec" — ours is microseconds).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datagen::SensorSpec;
use jdm::binary::{to_bytes, ItemRef};
use jdm::parse::{parse_item, EventParser};
use jdm::path::{PathStep, ProjectionPath};
use jdm::project::project_all;

fn tune<M: criterion::measurement::Measurement>(g: &mut criterion::BenchmarkGroup<'_, M>) {
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
}

fn sensor_json(records: usize, mpa: usize) -> String {
    let spec = SensorSpec {
        records_per_file: records,
        measurements_per_array: mpa,
        ..Default::default()
    };
    jdm::text::to_string(&spec.file_item(0))
}

fn parser(c: &mut Criterion) {
    let json = sensor_json(64, 30);
    let mut g = c.benchmark_group("micro_parser");
    tune(&mut g);
    g.throughput(Throughput::Bytes(json.len() as u64));
    g.bench_function("event_stream", |b| {
        b.iter(|| {
            let mut p = EventParser::new(json.as_bytes());
            let mut n = 0usize;
            while p.next_event().expect("valid json").is_some() {
                n += 1;
            }
            n
        })
    });
    g.bench_function("tree_build", |b| {
        b.iter(|| parse_item(json.as_bytes()).expect("parse"))
    });
    g.finish();
}

fn projection(c: &mut Criterion) {
    let json = sensor_json(64, 30);
    let path: ProjectionPath = [
        PathStep::Key("root".into()),
        PathStep::AllMembers,
        PathStep::Key("results".into()),
        PathStep::AllMembers,
        PathStep::Key("date".into()),
    ]
    .into_iter()
    .collect();
    let mut g = c.benchmark_group("micro_projection");
    tune(&mut g);
    g.throughput(Throughput::Bytes(json.len() as u64));
    g.bench_function("projecting_parser", |b| {
        b.iter(|| project_all(json.as_bytes(), &path).expect("project"))
    });
    g.bench_function("full_parse_then_navigate", |b| {
        b.iter(|| {
            let item = parse_item(json.as_bytes()).expect("parse");
            let mut out = Vec::new();
            for rec in item.get_key("root").expect("root").keys_or_members() {
                for m in rec.get_key("results").expect("results").keys_or_members() {
                    if let Some(d) = m.get_key("date") {
                        out.push(d.clone());
                    }
                }
            }
            out
        })
    });
    g.finish();
}

fn binary(c: &mut Criterion) {
    let item = parse_item(sensor_json(16, 30).as_bytes()).expect("parse");
    let bytes = to_bytes(&item);
    let mut g = c.benchmark_group("micro_binary");
    tune(&mut g);
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode", |b| b.iter(|| to_bytes(&item)));
    g.bench_function("decode", |b| {
        b.iter(|| ItemRef::new(&bytes).expect("ref").to_item().expect("item"))
    });
    g.bench_function("navigate_zero_copy", |b| {
        b.iter(|| {
            let r = ItemRef::new(&bytes).expect("ref");
            let root = r.get_key("root").expect("root");
            let mut n = 0usize;
            for rec in root.members() {
                let results = rec.get_key("results").expect("results");
                n += results.count().unwrap_or(0);
            }
            n
        })
    });
    g.finish();
}

fn frames(c: &mut Criterion) {
    let item = parse_item(
        br#"{"date":"20131225T00:00","dataType":"TMIN","station":"GSW000001","value":4}"#,
    )
    .expect("parse");
    let field = to_bytes(&item);
    let mut g = c.benchmark_group("micro_frames");
    tune(&mut g);
    g.bench_function("append_1000_tuples", |b| {
        b.iter(|| {
            let mut app = dataflow::FrameAppender::new(32 * 1024);
            let mut frames = 0usize;
            for _ in 0..1000 {
                while !app.append(&[&field]).expect("append") {
                    app.take_frame();
                    frames += 1;
                }
            }
            frames
        })
    });
    g.finish();
}

fn optimizer(c: &mut Criterion) {
    use algebra::rules::{RuleConfig, RuleSet};
    let rules = RuleSet::for_config(RuleConfig::all());
    let mut g = c.benchmark_group("micro_optimizer");
    tune(&mut g);
    g.bench_function("compile_and_optimize_q1", |b| {
        b.iter(|| {
            let mut plan = jsoniq::compile(vxq_core::queries::Q1).expect("compile");
            rules.optimize(&mut plan);
            plan
        })
    });
    g.bench_function("compile_and_optimize_q2", |b| {
        b.iter(|| {
            let mut plan = jsoniq::compile(vxq_core::queries::Q2).expect("compile");
            rules.optimize(&mut plan);
            plan
        })
    });
    g.finish();
}

criterion_group!(benches, parser, projection, binary, frames, optimizer);
criterion_main!(benches);
