//! Criterion benches for the system comparisons: Fig. 18 / Table 1
//! (MongoDB & AsterixDB, document-size sweep), Fig. 19 / Tables 2–3
//! (SparkSQL), Figs. 22–25 (cluster comparisons) and Table 4 (MongoDB
//! load).

use baselines::asterix::{AsterixMode, AsterixSim};
use baselines::{BenchQuery, DocStore, QuerySystem, SparkSim};
use bench::{Harness, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use dataflow::ClusterSpec;

fn harness() -> Harness {
    Harness {
        scale: Scale::Tiny,
        repeat: 1,
        ..Default::default()
    }
}

/// Fig. 18a (+ Table 1 load path): Q0b per system at 30 vs 1
/// measurements/array.
fn fig18_and_table1(c: &mut Criterion) {
    let h = harness();
    let mut g = c.benchmark_group("fig18_document_sizes");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for mpa in [30usize, 1] {
        let spec = h.sensor_spec(512 * 1024, 1, mpa);
        let root = h.dataset(&format!("crit-fig18-{mpa}"), &spec);
        let sensors = root.join("sensors");

        let mut vx = h.vxquery(&root, ClusterSpec::single_node(2));
        g.bench_function(format!("vxquery/mpa{mpa}"), |b| {
            b.iter(|| vx.run(BenchQuery::Q0b).expect("q0b"))
        });

        let mut mongo = DocStore::new(1);
        mongo.load(&sensors).expect("mongo load");
        g.bench_function(format!("mongodb/mpa{mpa}"), |b| {
            b.iter(|| mongo.run(BenchQuery::Q0b).expect("q0b"))
        });

        // Table 1's measurement: the load itself.
        g.bench_function(format!("mongodb-load/mpa{mpa}"), |b| {
            b.iter(|| {
                let mut m = DocStore::new(1);
                m.load(&sensors).expect("mongo load")
            })
        });

        let mut asterix = AsterixSim::new(
            AsterixMode::External,
            ClusterSpec::single_node(2),
            &root,
            root.join("asterix-storage"),
        );
        asterix.load(&sensors).expect("asterix setup");
        g.bench_function(format!("asterixdb/mpa{mpa}"), |b| {
            b.iter(|| asterix.run(BenchQuery::Q0b).expect("q0b"))
        });
    }
    g.finish();
}

/// Fig. 19 + Tables 2–3: Spark query vs VXQuery total, plus Spark load.
fn fig19_and_tables23(c: &mut Criterion) {
    let h = harness();
    let spec = h.sensor_spec(512 * 1024, 1, 30);
    let root = h.dataset("crit-fig19", &spec);
    let sensors = root.join("sensors");
    let mut g = c.benchmark_group("fig19_spark_vs_vxquery");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));

    let engine = h.engine(
        &root,
        ClusterSpec::single_node(1),
        algebra::rules::RuleConfig::all(),
    );
    g.bench_function("vxquery-total/Q1", |b| {
        b.iter(|| engine.execute(vxq_core::queries::Q1).expect("q1"))
    });

    let mut spark = SparkSim::new(0);
    spark.load(&sensors).expect("spark load");
    g.bench_function("spark-query-only/Q1", |b| {
        b.iter(|| spark.run(BenchQuery::Q1).expect("q1"))
    });

    // Table 2's measurement: the load itself.
    g.bench_function("spark-load", |b| {
        b.iter(|| {
            let mut s = SparkSim::new(0);
            s.load(&sensors).expect("spark load")
        })
    });
    g.finish();
}

/// Figs. 22–25 (+ Table 4's load): the cluster comparison on Q0b and Q2,
/// 1 vs 3 nodes, against both rivals.
fn cluster_comparisons(c: &mut Criterion) {
    let h = harness();
    let spec = h.sensor_spec(1024 * 1024, 3, 30);
    let root = h.dataset("crit-cluster", &spec);
    let sensors = root.join("sensors");
    let mut g = c.benchmark_group("fig22_25_cluster_comparisons");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for nodes in [1usize, 3] {
        let cluster = ClusterSpec {
            nodes,
            partitions_per_node: 2,
            ..Default::default()
        };
        for q in [BenchQuery::Q0b, BenchQuery::Q2] {
            let mut vx = h.vxquery(&root, cluster.clone());
            g.bench_function(format!("vxquery/{}/{}nodes", q.name(), nodes), |b| {
                b.iter(|| vx.run(q).expect("vx"))
            });
            let mut asterix = AsterixSim::new(
                AsterixMode::External,
                cluster.clone(),
                &root,
                root.join("asterix-storage"),
            );
            asterix.load(&sensors).expect("asterix setup");
            g.bench_function(format!("asterixdb/{}/{}nodes", q.name(), nodes), |b| {
                b.iter(|| asterix.run(q).expect("asterix"))
            });
            let mut mongo = DocStore::new(nodes);
            mongo.load(&sensors).expect("mongo load");
            g.bench_function(format!("mongodb/{}/{}nodes", q.name(), nodes), |b| {
                b.iter(|| mongo.run(q).expect("mongo"))
            });
        }
    }
    // Table 4: MongoDB load time at the cluster dataset size.
    g.bench_function("mongodb-load/table4", |b| {
        b.iter(|| {
            let mut m = DocStore::new(3);
            m.load(&sensors).expect("mongo load")
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig18_and_table1,
    fig19_and_tables23,
    cluster_comparisons
);
criterion_main!(benches);
