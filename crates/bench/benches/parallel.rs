//! Criterion benches for the parallelism experiments: Fig. 17
//! (single-node speed-up), Fig. 20 (cluster speed-up) and Fig. 21
//! (cluster scale-up).

use algebra::rules::RuleConfig;
use bench::{Harness, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use dataflow::ClusterSpec;

fn harness() -> Harness {
    Harness {
        scale: Scale::Tiny,
        repeat: 1,
        ..Default::default()
    }
}

/// Fig. 17: Q1 across 1/2/4/8 partitions on a 4-core node.
fn fig17(c: &mut Criterion) {
    let h = harness();
    let spec = h.sensor_spec(1024 * 1024, 1, 30);
    let root = h.dataset("crit-fig17", &spec);
    let mut g = c.benchmark_group("fig17_single_node_speedup");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for parts in [1usize, 2, 4, 8] {
        let cluster = ClusterSpec {
            nodes: 1,
            partitions_per_node: parts,
            cores_per_node: 4,
            ..Default::default()
        };
        let e = h.engine(&root, cluster, RuleConfig::all());
        g.bench_function(format!("Q1/{parts}parts"), |b| {
            b.iter(|| e.execute(vxq_core::queries::Q1).expect("q1"))
        });
    }
    g.finish();
}

/// Fig. 20: Q0b and Q2 across 1/3/9 nodes, fixed total data.
fn fig20(c: &mut Criterion) {
    let h = harness();
    let spec = h.sensor_spec(1024 * 1024, 9, 30);
    let root = h.dataset("crit-fig20", &spec);
    let mut g = c.benchmark_group("fig20_cluster_speedup");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for nodes in [1usize, 3, 9] {
        let cluster = ClusterSpec {
            nodes,
            partitions_per_node: 2,
            ..Default::default()
        };
        let e = h.engine(&root, cluster, RuleConfig::all());
        g.bench_function(format!("Q0b/{nodes}nodes"), |b| {
            b.iter(|| e.execute(vxq_core::queries::Q0B).expect("q0b"))
        });
        let e2 = h.engine(
            &root,
            ClusterSpec {
                nodes,
                partitions_per_node: 2,
                ..Default::default()
            },
            RuleConfig::all(),
        );
        g.bench_function(format!("Q2/{nodes}nodes"), |b| {
            b.iter(|| e2.execute(vxq_core::queries::Q2).expect("q2"))
        });
    }
    g.finish();
}

/// Fig. 21: Q1 with data growing proportionally to nodes (flat = ideal).
fn fig21(c: &mut Criterion) {
    let h = harness();
    let mut g = c.benchmark_group("fig21_cluster_scaleup");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for nodes in [1usize, 3, 9] {
        let spec = h.sensor_spec(256 * 1024 * nodes, nodes, 30);
        let root = h.dataset(&format!("crit-fig21-{nodes}"), &spec);
        let cluster = ClusterSpec {
            nodes,
            partitions_per_node: 2,
            ..Default::default()
        };
        let e = h.engine(&root, cluster, RuleConfig::all());
        g.bench_function(format!("Q1/{nodes}nodes"), |b| {
            b.iter(|| e.execute(vxq_core::queries::Q1).expect("q1"))
        });
    }
    g.finish();
}

criterion_group!(benches, fig17, fig20, fig21);
criterion_main!(benches);
