//! Metrics snapshot rendering for the bench harness.
//!
//! A completed [`QueryResult`] renders into two machine-readable forms:
//!
//! * [`to_prometheus`] — Prometheus text exposition (one gauge family per
//!   job statistic, per-operator families labelled by stage/op/name, and
//!   per-rule optimizer timings), scrape-ready;
//! * [`to_json`] — a single JSON object with the same content, for ad-hoc
//!   tooling and the repo's own tests.
//!
//! Both are hand-rendered: the dependency tree is std-only (the JSON
//! escaper is shared with `dataflow::trace`).

use dataflow::trace::escape_json;
use std::fmt::Write as _;
use vxq_core::{LatencySummary, QueryResult, ServiceSnapshot};

/// Escape a Prometheus label value (`\`, `"`, newline).
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render a query result in the Prometheus text exposition format.
/// `query` becomes the `query` label on every sample.
pub fn to_prometheus(query: &str, r: &QueryResult) -> String {
    let q = escape_label(query);
    let mut out = String::new();
    let st = &r.stats;
    let mut gauge = |name: &str, help: &str, value: f64| {
        let _ = writeln!(out, "# HELP vxq_{name} {help}");
        let _ = writeln!(out, "# TYPE vxq_{name} gauge");
        let _ = writeln!(out, "vxq_{name}{{query=\"{q}\"}} {value}");
    };
    gauge(
        "elapsed_seconds",
        "Simulated cluster makespan of the job.",
        st.elapsed.as_secs_f64(),
    );
    gauge(
        "cpu_seconds_total",
        "Total worker CPU time of the job.",
        st.cpu_total.as_secs_f64(),
    );
    gauge(
        "peak_memory_bytes",
        "Peak materialized bytes across the cluster.",
        st.peak_memory as f64,
    );
    gauge(
        "network_bytes_total",
        "Bytes shipped across node boundaries.",
        st.network_bytes as f64,
    );
    gauge(
        "frames_shipped_total",
        "Frames sent through exchanges.",
        st.frames_shipped as f64,
    );
    gauge(
        "result_tuples",
        "Tuples emitted by the final sink.",
        st.result_tuples as f64,
    );
    gauge(
        "bytes_scanned_total",
        "Raw bytes read by scan sources.",
        st.bytes_scanned as f64,
    );
    gauge(
        "peak_cached_bytes",
        "Resident scan cache high-water; included in peak_memory_bytes, exempt from the budget.",
        st.peak_cached as f64,
    );
    gauge(
        "spill_budget_bytes",
        "Operator working-state budget (0 = unlimited).",
        st.spill.budget as f64,
    );
    gauge(
        "spill_runs_total",
        "Run files written by spilling operators.",
        st.spill.runs_written as f64,
    );
    gauge(
        "spill_bytes_total",
        "Bytes written to spill run files.",
        st.spill.bytes_spilled as f64,
    );
    gauge(
        "spill_tuples_total",
        "Tuples written to spill run files.",
        st.spill.tuples_spilled as f64,
    );
    gauge(
        "spill_merge_passes_total",
        "Intermediate external-sort merge passes.",
        st.spill.merge_passes as f64,
    );
    gauge(
        "spill_max_recursion",
        "Deepest spill partitioning level reached.",
        st.spill.max_recursion as f64,
    );
    gauge(
        "spill_budget_exceeded",
        "1 if an operator without a spill path overran the budget.",
        st.spill.budget_exceeded as u8 as f64,
    );
    let (s1_bytes, s1_secs) = stage1_rollup(r);
    gauge(
        "stage1_index_bytes_total",
        "Bytes run through structural-index builds by scan splits.",
        s1_bytes as f64,
    );
    gauge(
        "stage1_index_seconds_total",
        "Wall time of structural-index builds across scan splits.",
        s1_secs,
    );
    gauge(
        "stage1_index_gbps",
        "Aggregate structural-index build throughput (0 when no index was built).",
        if s1_secs > 0.0 {
            s1_bytes as f64 / s1_secs / 1e9
        } else {
            0.0
        },
    );

    out.push_str("# HELP vxq_stage1_kernel_splits_total Scan splits by stage-1 kernel.\n");
    out.push_str("# TYPE vxq_stage1_kernel_splits_total gauge\n");
    for (kernel, count) in kernel_rollup(r) {
        let _ = writeln!(
            out,
            "vxq_stage1_kernel_splits_total{{query=\"{q}\",kernel=\"{kernel}\"}} {count}"
        );
    }

    out.push_str("# HELP vxq_op_tuples_total Tuples through an operator, by direction.\n");
    out.push_str("# TYPE vxq_op_tuples_total gauge\n");
    out.push_str("# HELP vxq_op_busy_seconds Operator busy time summed over partitions.\n");
    out.push_str("# TYPE vxq_op_busy_seconds gauge\n");
    out.push_str("# HELP vxq_op_stall_seconds Operator emit-stall time summed over partitions.\n");
    out.push_str("# TYPE vxq_op_stall_seconds gauge\n");
    for s in r.stats.profile.summaries() {
        let labels = format!(
            "query=\"{q}\",stage=\"{}\",op=\"{}\",name=\"{}\"",
            s.stage,
            s.op_index,
            escape_label(s.name)
        );
        let _ = writeln!(
            out,
            "vxq_op_tuples_total{{{labels},direction=\"in\"}} {}",
            s.tuples_in
        );
        let _ = writeln!(
            out,
            "vxq_op_tuples_total{{{labels},direction=\"out\"}} {}",
            s.tuples_out
        );
        let _ = writeln!(
            out,
            "vxq_op_busy_seconds{{{labels}}} {}",
            s.busy.as_secs_f64()
        );
        let _ = writeln!(
            out,
            "vxq_op_stall_seconds{{{labels}}} {}",
            s.emit_stall.as_secs_f64()
        );
    }

    out.push_str("# HELP vxq_rule_applications_total Optimizer rule firings.\n");
    out.push_str("# TYPE vxq_rule_applications_total gauge\n");
    out.push_str("# HELP vxq_rule_seconds_total Time spent in successful rule applications.\n");
    out.push_str("# TYPE vxq_rule_seconds_total gauge\n");
    for (rule, count, secs) in rule_rollup(r) {
        let labels = format!("query=\"{q}\",rule=\"{}\"", escape_label(rule));
        let _ = writeln!(out, "vxq_rule_applications_total{{{labels}}} {count}");
        let _ = writeln!(out, "vxq_rule_seconds_total{{{labels}}} {secs}");
    }
    out
}

/// Render a [`ServiceSnapshot`] in the Prometheus text exposition format
/// (`vxq_service_*` families): admission/completion counters, live
/// gauges, plan-cache effectiveness, and latency percentiles.
pub fn service_to_prometheus(snap: &ServiceSnapshot) -> String {
    let mut out = String::new();
    let mut gauge = |name: &str, help: &str, value: f64| {
        let _ = writeln!(out, "# HELP vxq_service_{name} {help}");
        let _ = writeln!(out, "# TYPE vxq_service_{name} gauge");
        let _ = writeln!(out, "vxq_service_{name} {value}");
    };
    gauge(
        "submitted_total",
        "Queries offered to the service.",
        snap.submitted as f64,
    );
    gauge(
        "rejected_total",
        "Submissions refused (queue full or service closed).",
        snap.rejected as f64,
    );
    gauge(
        "completed_total",
        "Queries that ran to completion.",
        snap.completed as f64,
    );
    gauge(
        "failed_total",
        "Queries that errored (excluding cancellations and deadlines).",
        snap.failed as f64,
    );
    gauge(
        "cancelled_total",
        "Queries cancelled by their client.",
        snap.cancelled as f64,
    );
    gauge(
        "deadline_expired_total",
        "Queries whose deadline fired.",
        snap.deadline_expired as f64,
    );
    gauge(
        "running",
        "Queries executing right now.",
        snap.running as f64,
    );
    gauge(
        "queue_depth",
        "Queries waiting for a worker right now.",
        snap.queue_depth as f64,
    );
    gauge(
        "plan_cache_hits_total",
        "Plan-cache lookups that found a prepared plan.",
        snap.plan_cache_hits as f64,
    );
    gauge(
        "plan_cache_misses_total",
        "Plan-cache lookups that prepared from scratch.",
        snap.plan_cache_misses as f64,
    );
    gauge(
        "plan_cache_size",
        "Plans currently cached.",
        snap.plan_cache_size as f64,
    );
    gauge(
        "leaked_bytes",
        "High-water mark of bytes a finished job left allocated (0 = healthy).",
        snap.leaked_bytes as f64,
    );
    let mut series = |family: &str, help: &str, l: &LatencySummary| {
        let _ = writeln!(out, "# HELP vxq_service_{family}_seconds {help}");
        let _ = writeln!(out, "# TYPE vxq_service_{family}_seconds gauge");
        for (q, us) in [
            ("0.5", l.p50_us),
            ("0.95", l.p95_us),
            ("0.99", l.p99_us),
            ("1", l.max_us),
        ] {
            let _ = writeln!(
                out,
                "vxq_service_{family}_seconds{{quantile=\"{q}\"}} {}",
                us as f64 / 1e6
            );
        }
        let _ = writeln!(out, "# HELP vxq_service_{family}_count Recorded samples.");
        let _ = writeln!(out, "# TYPE vxq_service_{family}_count gauge");
        let _ = writeln!(out, "vxq_service_{family}_count {}", l.count);
    };
    series(
        "latency",
        "Worker-side execution latency percentiles.",
        &snap.latency,
    );
    series(
        "queue_wait",
        "Admission-queue wait percentiles.",
        &snap.queue_wait,
    );
    out
}

/// Render a [`ServiceSnapshot`] as one JSON object.
pub fn service_to_json(snap: &ServiceSnapshot) -> String {
    let lat = |l: &LatencySummary| {
        format!(
            "{{\"count\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            l.count, l.p50_us, l.p95_us, l.p99_us, l.max_us
        )
    };
    format!(
        "{{\"submitted\":{},\"rejected\":{},\"completed\":{},\"failed\":{},\
         \"cancelled\":{},\"deadline_expired\":{},\"running\":{},\"queue_depth\":{},\
         \"plan_cache\":{{\"hits\":{},\"misses\":{},\"size\":{}}},\
         \"leaked_bytes\":{},\"latency\":{},\"queue_wait\":{}}}",
        snap.submitted,
        snap.rejected,
        snap.completed,
        snap.failed,
        snap.cancelled,
        snap.deadline_expired,
        snap.running,
        snap.queue_depth,
        snap.plan_cache_hits,
        snap.plan_cache_misses,
        snap.plan_cache_size,
        snap.leaked_bytes,
        lat(&snap.latency),
        lat(&snap.queue_wait)
    )
}

/// Total (bytes, seconds) of structural-index builds across scan splits.
fn stage1_rollup(r: &QueryResult) -> (u64, f64) {
    let splits = &r.stats.profile.splits;
    (
        splits.iter().map(|s| s.index_bytes).sum(),
        splits.iter().map(|s| s.index_elapsed.as_secs_f64()).sum(),
    )
}

/// Scan-split counts per stage-1 kernel label, in first-seen order.
fn kernel_rollup(r: &QueryResult) -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> = Vec::new();
    for s in &r.stats.profile.splits {
        if let Some(k) = s.kernel {
            match out.iter_mut().find(|(name, _)| *name == k) {
                Some((_, count)) => *count += 1,
                None => out.push((k, 1)),
            }
        }
    }
    out
}

/// Per-rule (applications, total seconds), in first-fired order.
fn rule_rollup(r: &QueryResult) -> Vec<(&'static str, u64, f64)> {
    let mut out: Vec<(&'static str, u64, f64)> = Vec::new();
    for f in &r.rule_firings {
        match out.iter_mut().find(|(name, _, _)| *name == f.rule) {
            Some((_, count, secs)) => {
                *count += 1;
                *secs += f.duration.as_secs_f64();
            }
            None => out.push((f.rule, 1, f.duration.as_secs_f64())),
        }
    }
    out
}

/// Render a query result as one JSON object: job stats, per-operator
/// summaries, and each rule firing with its duration.
pub fn to_json(query: &str, r: &QueryResult) -> String {
    let st = &r.stats;
    let mut out = String::from("{");
    let _ = write!(out, "\"query\":\"{}\",", escape_json(query));
    let _ = write!(
        out,
        "\"stats\":{{\"elapsed_us\":{},\"cpu_total_us\":{},\"peak_memory_bytes\":{},\
         \"peak_cached_bytes\":{},\"network_bytes\":{},\"frames_shipped\":{},\
         \"result_tuples\":{},\"bytes_scanned\":{}}},",
        st.elapsed.as_micros(),
        st.cpu_total.as_micros(),
        st.peak_memory,
        st.peak_cached,
        st.network_bytes,
        st.frames_shipped,
        st.result_tuples,
        st.bytes_scanned
    );
    let _ = write!(
        out,
        "\"spill\":{{\"budget_bytes\":{},\"runs_written\":{},\"bytes_spilled\":{},\
         \"tuples_spilled\":{},\"merge_passes\":{},\"max_recursion\":{},\
         \"budget_exceeded\":{}}},",
        st.spill.budget,
        st.spill.runs_written,
        st.spill.bytes_spilled,
        st.spill.tuples_spilled,
        st.spill.merge_passes,
        st.spill.max_recursion,
        st.spill.budget_exceeded
    );
    let (s1_bytes, s1_secs) = stage1_rollup(r);
    let _ = write!(
        out,
        "\"stage1\":{{\"index_bytes\":{},\"index_us\":{},\"gbps\":{:.3},\"kernels\":{{",
        s1_bytes,
        (s1_secs * 1e6) as u64,
        if s1_secs > 0.0 {
            s1_bytes as f64 / s1_secs / 1e9
        } else {
            0.0
        }
    );
    for (i, (kernel, count)) in kernel_rollup(r).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{kernel}\":{count}");
    }
    out.push_str("}},");
    out.push_str("\"operators\":[");
    for (i, s) in r.stats.profile.summaries().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"stage\":{},\"op\":{},\"name\":\"{}\",\"partitions\":{},\
             \"tuples_in\":{},\"tuples_out\":{},\"frames_in\":{},\"frames_out\":{},\
             \"bytes_in\":{},\"bytes_out\":{},\"busy_us\":{},\"stall_us\":{}}}",
            s.stage,
            s.op_index,
            escape_json(s.name),
            s.partitions,
            s.tuples_in,
            s.tuples_out,
            s.frames_in,
            s.frames_out,
            s.bytes_in,
            s.bytes_out,
            s.busy.as_micros(),
            s.emit_stall.as_micros()
        );
    }
    out.push_str("],\"rule_firings\":[");
    for (i, f) in r.rule_firings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"round\":{},\"duration_us\":{},\
             \"nodes_before\":{},\"nodes_after\":{}}}",
            escape_json(f.rule),
            f.round,
            f.duration.as_micros(),
            f.nodes_before,
            f.nodes_after
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Harness, Scale};
    use algebra::rules::RuleConfig;
    use dataflow::ClusterSpec;

    fn profiled_q1() -> (QueryResult, std::sync::Arc<dataflow::TraceBuffer>) {
        let h = Harness {
            scale: Scale::Tiny,
            repeat: 1,
            ..Harness::default()
        };
        let spec = h.sensor_spec(64 * 1024, 2, 10);
        let root = h.dataset("metrics-test", &spec);
        let e = h.engine(
            &root,
            ClusterSpec {
                nodes: 2,
                partitions_per_node: 2,
                ..Default::default()
            },
            RuleConfig::all(),
        );
        e.execute_profiled(vxq_core::queries::Q1).expect("Q1 runs")
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let (r, _) = profiled_q1();
        let prom = to_prometheus("q1", &r);
        assert!(prom.contains("# TYPE vxq_elapsed_seconds gauge"));
        assert!(prom.contains("vxq_op_tuples_total{query=\"q1\""));
        assert!(prom.contains("vxq_rule_applications_total"));
        assert!(prom.contains("vxq_spill_runs_total"));
        assert!(prom.contains("vxq_spill_budget_exceeded"));
        assert!(prom.contains("vxq_peak_cached_bytes"));
        // Every non-comment line is `name{labels} value`.
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            let (head, value) = line.rsplit_once(' ').expect("sample has value");
            assert!(head.contains('{') && head.ends_with('}'), "{line}");
            value.parse::<f64>().expect("numeric value");
        }
    }

    #[test]
    fn json_snapshot_parses_and_carries_rule_durations() {
        let (r, trace) = profiled_q1();
        let json = to_json("q1", &r);
        let item = jdm::parse::parse_item(json.as_bytes()).expect("snapshot is valid JSON");
        assert!(
            !r.rule_firings.is_empty(),
            "Q1 with all rules must fire rewrites"
        );
        let spill = item.get_key("spill").expect("spill object");
        assert!(spill
            .get_key("runs_written")
            .and_then(|v| v.as_number())
            .is_some());
        assert!(spill.get_key("budget_exceeded").is_some());
        let first = item
            .get_key("rule_firings")
            .and_then(|f| f.get_index(0))
            .expect("rule_firings[0]");
        assert!(first
            .get_key("duration_us")
            .and_then(|d| d.as_number())
            .is_some());
        assert!(first.get_key("rule").and_then(|n| n.as_str()).is_some());

        // The trace exports must themselves be valid JSON, with at least
        // one span per fired optimizer rule.
        let chrome = trace.to_chrome_trace();
        let parsed = jdm::parse::parse_item(chrome.as_bytes()).expect("chrome trace parses");
        let events = parsed.get_key("traceEvents").expect("traceEvents array");
        let rule_spans = trace.events().iter().filter(|e| e.cat == "rule").count();
        assert_eq!(rule_spans, r.rule_firings.len());
        assert_eq!(
            events
                .get_index(0)
                .and_then(|e| e.get_key("ph"))
                .and_then(|p| p.as_str()),
            Some("X")
        );
        for line in trace.to_json_lines().lines() {
            jdm::parse::parse_item(line.as_bytes()).expect("each trace line is valid JSON");
        }
    }

    fn service_snapshot() -> ServiceSnapshot {
        let h = Harness {
            scale: Scale::Tiny,
            repeat: 1,
            ..Harness::default()
        };
        let spec = h.sensor_spec(64 * 1024, 2, 10);
        let root = h.dataset("metrics-service-test", &spec);
        let e = h.engine(
            &root,
            ClusterSpec {
                nodes: 2,
                partitions_per_node: 2,
                ..Default::default()
            },
            RuleConfig::all(),
        );
        let service = vxq_core::QueryService::new(e, vxq_core::ServiceConfig::default());
        for _ in 0..2 {
            service
                .execute(vxq_core::queries::Q1, vxq_core::QueryOptions::default())
                .expect("Q1 through the service");
        }
        service.snapshot()
    }

    #[test]
    fn service_exposition_is_well_formed() {
        let snap = service_snapshot();
        let prom = service_to_prometheus(&snap);
        assert!(prom.contains("# TYPE vxq_service_completed_total gauge"));
        assert!(prom.contains("vxq_service_completed_total 2"));
        assert!(prom.contains("vxq_service_plan_cache_hits_total 1"));
        assert!(prom.contains("vxq_service_leaked_bytes 0"));
        assert!(prom.contains("vxq_service_latency_seconds{quantile=\"0.99\"}"));
        assert!(prom.contains("vxq_service_queue_wait_seconds{quantile=\"0.5\"}"));
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample has value");
            value.parse::<f64>().expect("numeric value");
        }
    }

    #[test]
    fn service_json_snapshot_parses() {
        let snap = service_snapshot();
        let json = service_to_json(&snap);
        let item = jdm::parse::parse_item(json.as_bytes()).expect("valid JSON");
        assert_eq!(
            item.get_key("completed")
                .and_then(|v| v.as_number())
                .map(|n| n.as_f64()),
            Some(2.0)
        );
        let cache = item.get_key("plan_cache").expect("plan_cache object");
        let num = |item: &jdm::Item, key: &str| {
            item.get_key(key)
                .and_then(|v| v.as_number())
                .map(|n| n.as_f64())
        };
        assert_eq!(num(cache, "hits"), Some(1.0));
        assert_eq!(num(cache, "misses"), Some(1.0));
        let lat = item.get_key("latency").expect("latency object");
        assert_eq!(num(lat, "count"), Some(2.0));
        assert!(lat.get_key("p99_us").and_then(|v| v.as_number()).is_some());
    }
}
