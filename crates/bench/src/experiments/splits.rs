//! Intra-file split scanning (beyond the paper): one large JSON file,
//! growing partition counts, splits on vs off.
//!
//! The paper's layout gives every node "a unique set of JSON files", so a
//! collection with fewer files than partitions strands workers. The
//! record-aligned split scan removes that constraint; this experiment
//! measures what it buys on the degenerate single-file collection.

use crate::{ms, Harness, Table};
use algebra::rules::RuleConfig;
use dataflow::ClusterSpec;
use datagen::SensorSpec;
use vxq_core::queries::Q0;
use vxq_core::ScanOptions;

/// Q0 over a single-file collection at 1/2/4 partitions, whole-file
/// assignment versus record-aligned splits.
pub fn splits(h: &Harness) -> Vec<Table> {
    let spec = SensorSpec::sized(2 * 1024 * 1024 * h.scale.factor(), 1, 1, 30);
    let root = h.dataset("splits", &spec);
    let mut t = Table::new(
        "Splits — Q0 on a single large file, whole-file vs record-aligned split scan",
        &[
            "partitions",
            "splits off (ms)",
            "splits on (ms)",
            "speed-up",
        ],
    );
    for parts in [1usize, 2, 4] {
        let cluster = ClusterSpec {
            nodes: 1,
            partitions_per_node: parts,
            ..Default::default()
        };
        let mut row = vec![parts.to_string()];
        let mut times = Vec::new();
        for scan in [
            ScanOptions {
                intra_file_splits: false,
                ..ScanOptions::default()
            },
            ScanOptions {
                intra_file_splits: true,
                min_split_bytes: 64 * 1024,
                ..ScanOptions::default()
            },
        ] {
            let e = h.engine_with_scan(&root, cluster.clone(), RuleConfig::all(), scan);
            let d = h.time_query(&e, Q0);
            times.push(d);
            row.push(ms(d));
        }
        row.push(format!(
            "{:.2}x",
            times[0].as_secs_f64() / times[1].as_secs_f64().max(1e-9)
        ));
        t.row(row);
    }
    t.note = "With one file, whole-file assignment pins the entire scan on one \
              partition regardless of cluster size; splits restore near-linear \
              scan parallelism."
        .into();
    vec![t]
}
