//! Concurrent-serving throughput (beyond the paper): closed-loop clients
//! against one [`QueryService`], sweeping the client count.
//!
//! The paper measures one query at a time; this experiment measures the
//! serving layer built on top — admission, fair memory shares, and the
//! plan cache — by running N closed-loop clients (each fires its next
//! query the moment the previous one returns) through a shared service
//! and reporting QPS and client-observed latency percentiles as N grows
//! from 1 to 16.

use crate::{Harness, Table};
use algebra::rules::RuleConfig;
use dataflow::ClusterSpec;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use vxq_core::{queries, QueryOptions, QueryService, ServiceConfig};

/// Queries each client cycles through (the paper's sensor workload).
const MIX: &[(&str, &str)] = &[
    ("Q0", queries::Q0),
    ("Q1", queries::Q1),
    ("Q2", queries::Q2),
];

/// Nearest-rank percentile over sorted microsecond samples.
fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn ms_us(us: u64) -> String {
    format!("{:.1}", us as f64 / 1000.0)
}

/// Closed-loop concurrency sweep: clients × rounds over the Q0/Q1/Q2 mix.
pub fn service(h: &Harness) -> Vec<Table> {
    let spec = h.sensor_spec(256 * 1024, 2, 10);
    let root = h.dataset("service", &spec);
    let cluster = ClusterSpec {
        nodes: 2,
        partitions_per_node: 2,
        ..Default::default()
    };
    let rounds = (h.repeat.max(1) * MIX.len()).max(6);

    let mut t = Table::new(
        "Service — closed-loop clients, Q0/Q1/Q2 mix, QPS and latency vs concurrency",
        &[
            "clients",
            "queries",
            "QPS",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "cache hits",
            "errors",
        ],
    );
    for clients in [1usize, 2, 4, 8, 16] {
        let engine = h.engine(&root, cluster.clone(), RuleConfig::all());
        let service = QueryService::new(
            engine,
            ServiceConfig {
                max_concurrent: clients,
                queue_limit: clients * 4,
                ..ServiceConfig::default()
            },
        );
        let errors = AtomicU64::new(0);
        let started = Instant::now();
        let mut latencies: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let service = &service;
                    let errors = &errors;
                    s.spawn(move || {
                        let mut samples = Vec::with_capacity(rounds);
                        for round in 0..rounds {
                            let (_, q) = MIX[(c + round) % MIX.len()];
                            let sent = Instant::now();
                            match service.execute(q, QueryOptions::default()) {
                                Ok(_) => samples.push(sent.elapsed().as_micros() as u64),
                                Err(_) => {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        samples
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let wall = started.elapsed();
        latencies.sort_unstable();
        let total = clients * rounds;
        let snap = service.snapshot();
        t.row(vec![
            clients.to_string(),
            total.to_string(),
            format!("{:.1}", total as f64 / wall.as_secs_f64()),
            ms_us(pct(&latencies, 50.0)),
            ms_us(pct(&latencies, 95.0)),
            ms_us(pct(&latencies, 99.0)),
            snap.plan_cache_hits.to_string(),
            errors.load(Ordering::Relaxed).to_string(),
        ]);
    }
    t.note = "Each client is closed-loop (next query fired on completion); \
              the worker pool matches the client count, so latency growth \
              past the core count is contention, not queueing. The plan \
              cache serves every repeat of the three-query mix."
        .into();
    vec![t]
}
