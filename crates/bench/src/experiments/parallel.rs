//! Parallelism experiments: Fig. 17 (single-node speed-up) and
//! Figs. 20–21 (cluster speed-up / scale-up).

use crate::{ms, Harness, Table};
use algebra::rules::RuleConfig;
use dataflow::ClusterSpec;
use vxq_core::queries::SENSOR_QUERIES;

/// Fig. 17: single-node speed-up over 1/2/4/8 partitions with a 4-core
/// gate — the 8-partition point models the paper's hyper-threading
/// plateau ("the two hyperthreads are effectively run in sequence").
pub fn fig17(h: &Harness) -> Vec<Table> {
    const CORES: usize = 4;
    let spec = h.sensor_spec(4 * 1024 * 1024, 1, 30);
    let root = h.dataset("fig17", &spec);
    let mut t = Table::new(
        "Fig. 17 — single-node speed-up (4-core node; 8 partitions oversubscribe)",
        &[
            "query",
            "1 part (ms)",
            "2 parts (ms)",
            "4 parts (ms)",
            "8 parts HT (ms)",
        ],
    );
    for (name, q) in SENSOR_QUERIES {
        let mut cells = vec![name.to_string()];
        for parts in [1usize, 2, 4, 8] {
            let cluster = ClusterSpec {
                nodes: 1,
                partitions_per_node: parts,
                cores_per_node: CORES,
                ..Default::default()
            };
            let e = h.engine(&root, cluster, RuleConfig::all());
            cells.push(ms(h.time_query(&e, q)));
        }
        t.row(cells);
    }
    t.note = "Paper: near-linear up to 4 partitions (the core count), flat or slightly \
              worse at 8 (hyper-threaded partitions share cores; parsing is CPU-bound)."
        .into();
    vec![t]
}

/// Fig. 20: cluster speed-up — fixed total dataset, 1–9 nodes.
pub fn fig20(h: &Harness) -> Vec<Table> {
    let nodes_axis = [1usize, 2, 3, 4, 5, 6, 7, 8, 9];
    let mut t = Table::new(
        "Fig. 20 — cluster speed-up, fixed total data (803 GB analog), all queries",
        &[
            "query", "1 node", "2", "3", "4", "5", "6", "7", "8", "9 (ms)",
        ],
    );
    let mut rows: Vec<Vec<String>> = SENSOR_QUERIES
        .iter()
        .map(|(n, _)| vec![n.to_string()])
        .collect();
    for n in nodes_axis {
        // The paper: data is "evenly partitioned among the nodes used in
        // each experiment" — regenerate the same total bytes per cluster
        // size with a matching node layout.
        let spec = h.sensor_spec(6 * 1024 * 1024, n, 30);
        let root = h.dataset(&format!("fig20-{n}"), &spec);
        let cluster = ClusterSpec {
            nodes: n,
            partitions_per_node: 4,
            ..Default::default()
        };
        for (i, (_, q)) in SENSOR_QUERIES.iter().enumerate() {
            let e = h.engine(&root, cluster.clone(), RuleConfig::all());
            rows[i].push(ms(h.time_query(&e, q)));
        }
    }
    for r in rows {
        t.row(r);
    }
    t.note = "Paper: speed-up proportional to node count for every query type; Q2 is the \
              slowest (self-join processes the data twice)."
        .into();
    vec![t]
}

/// Fig. 21: cluster scale-up — data grows with the cluster (88 GB/node
/// analog); flat lines = perfect scale-up.
pub fn fig21(h: &Harness) -> Vec<Table> {
    let nodes_axis = [1usize, 2, 3, 4, 5, 6, 7, 8, 9];
    let per_node = 768 * 1024;
    let mut t = Table::new(
        "Fig. 21 — cluster scale-up, 88 GB-per-node analog, all queries",
        &[
            "query", "1 node", "2", "3", "4", "5", "6", "7", "8", "9 (ms)",
        ],
    );
    let mut rows: Vec<Vec<String>> = SENSOR_QUERIES
        .iter()
        .map(|(n, _)| vec![n.to_string()])
        .collect();
    for n in nodes_axis {
        let spec = h.sensor_spec(per_node * n, n, 30);
        let root = h.dataset(&format!("fig21-{n}"), &spec);
        let cluster = ClusterSpec {
            nodes: n,
            partitions_per_node: 4,
            ..Default::default()
        };
        for (i, (_, q)) in SENSOR_QUERIES.iter().enumerate() {
            let e = h.engine(&root, cluster.clone(), RuleConfig::all());
            rows[i].push(ms(h.time_query(&e, q)));
        }
    }
    for r in rows {
        t.row(r);
    }
    t.note = "Paper: execution time stays roughly constant as nodes and data grow \
              together — very good scale-up."
        .into();
    vec![t]
}
