//! Ablations of design choices beyond the paper's figures (DESIGN.md
//! calls these out): two-step aggregation and the Hyracks frame size.

use crate::{ms, Harness, Table};
use algebra::rules::RuleConfig;
use dataflow::ClusterSpec;

/// Two-step (local/global) aggregation on/off, on a multi-partition
/// cluster. The paper activates the rule "introduced in [17]" as part of
/// the group-by family; this isolates its contribution.
pub fn two_step(h: &Harness) -> Vec<Table> {
    let spec = h.sensor_spec(2 * 1024 * 1024, 2, 30);
    let root = h.dataset("ablation-twostep", &spec);
    let cluster = ClusterSpec {
        nodes: 2,
        partitions_per_node: 4,
        ..Default::default()
    };
    let with = RuleConfig::all();
    let without = RuleConfig {
        two_step_aggregation: false,
        ..RuleConfig::all()
    };

    let mut t = Table::new(
        "Ablation — two-step (local/global) aggregation",
        &[
            "query",
            "single-step (ms)",
            "two-step (ms)",
            "single net KiB",
            "two-step net KiB",
        ],
    );
    for (name, q) in [("Q1", vxq_core::queries::Q1), ("Q2", vxq_core::queries::Q2)] {
        let e_without = h.engine(&root, cluster.clone(), without);
        let e_with = h.engine(&root, cluster.clone(), with);
        let t_without = h.time_query(&e_without, q);
        let t_with = h.time_query(&e_with, q);
        let net_without = e_without.execute(q).expect("query").stats.network_bytes / 1024;
        let net_with = e_with.execute(q).expect("query").stats.network_bytes / 1024;
        t.row(vec![
            name.to_string(),
            ms(t_without),
            ms(t_with),
            net_without.to_string(),
            net_with.to_string(),
        ]);
    }
    t.note = "Local pre-aggregation shrinks exchange traffic; the win grows with group \
              cardinality and node count ('the larger the groups, the better', §4.3)."
        .into();
    vec![t]
}

/// Frame size sweep: Hyracks moves data in fixed-size frames; the paper's
/// pipelining rules exist partly to satisfy the frame-size restriction.
pub fn frame_size(h: &Harness) -> Vec<Table> {
    let spec = h.sensor_spec(2 * 1024 * 1024, 1, 30);
    let root = h.dataset("ablation-frames", &spec);
    let mut t = Table::new(
        "Ablation — dataflow frame size (Q1, 4 partitions)",
        &["frame size", "elapsed (ms)", "frames shipped"],
    );
    for kib in [4usize, 32, 256] {
        let cluster = ClusterSpec {
            nodes: 1,
            partitions_per_node: 4,
            frame_size: kib * 1024,
            ..Default::default()
        };
        let e = h.engine(&root, cluster, RuleConfig::all());
        // Q1's hash exchange actually ships frames; Q0 compiles to a
        // single fused stage with no exchange at all.
        let elapsed = h.time_query(&e, vxq_core::queries::Q1);
        let frames = e
            .execute(vxq_core::queries::Q1)
            .expect("q1")
            .stats
            .frames_shipped;
        t.row(vec![format!("{kib} KiB"), ms(elapsed), frames.to_string()]);
    }
    t.note = "Bigger frames amortize per-frame costs but raise latency per hop; 32 KiB \
              (Hyracks' default) is the sweet spot for this workload."
        .into();
    vec![t]
}

/// Column pruning on/off is not toggleable at runtime (it is always
/// sound), but the naive-plan memory experiment doubles as its ablation:
/// peak memory under each rule family.
pub fn memory_by_config(h: &Harness) -> Vec<Table> {
    let spec = h.sensor_spec(1024 * 1024, 1, 30);
    let root = h.dataset("ablation-memory", &spec);
    let cluster = ClusterSpec::single_node(1);
    let mut t = Table::new(
        "Ablation — peak materialized bytes per rule configuration (Q1)",
        &["configuration", "peak memory (KiB)", "elapsed (ms)"],
    );
    for (label, cfg) in [
        ("no rules", RuleConfig::none()),
        ("path", RuleConfig::path_only()),
        ("path+pipelining", RuleConfig::path_and_pipelining()),
        ("all rules", RuleConfig::all()),
    ] {
        let e = h.engine(&root, cluster.clone(), cfg);
        let r = e.execute(vxq_core::queries::Q1).expect("q1");
        t.row(vec![
            label.to_string(),
            (r.stats.peak_memory / 1024).to_string(),
            ms(r.stats.elapsed),
        ]);
    }
    t.note = "The pipelining rules eliminate the whole-collection materialization; the \
              group-by rules eliminate the per-group sequences."
        .into();
    vec![t]
}
