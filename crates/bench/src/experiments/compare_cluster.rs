//! Cluster comparisons: Figs. 22–25 (VXQuery vs AsterixDB vs MongoDB,
//! speed-up and scale-up on Q0b and Q2) and Table 4 (MongoDB load time).

use crate::{ms, Harness, Table};
use baselines::asterix::{AsterixMode, AsterixSim};
use baselines::{BenchQuery, DocStore, QuerySystem};
use dataflow::ClusterSpec;

/// Node axis for the cluster sweeps (the paper uses 1–9; we sample).
const NODES_AXIS: [usize; 4] = [1, 3, 5, 9];

/// Fixed total bytes for speed-up (× scale factor).
const SPEEDUP_BYTES: usize = 4 * 1024 * 1024;
/// Per-node bytes for scale-up (× scale factor).
const SCALEUP_BYTES: usize = 512 * 1024;

fn cluster_of(nodes: usize) -> ClusterSpec {
    ClusterSpec {
        nodes,
        partitions_per_node: 4,
        ..Default::default()
    }
}

enum Rival {
    Asterix,
    Mongo,
}

/// Speed-up sweep (fixed data, growing cluster) against one rival.
fn speedup(h: &Harness, rival: Rival, fig: &str) -> Vec<Table> {
    let spec = h.sensor_spec(SPEEDUP_BYTES, 9, 30);
    let root = h.dataset("cluster-speedup", &spec);
    let sensors = root.join("sensors");
    let rival_name = match rival {
        Rival::Asterix => "AsterixDB",
        Rival::Mongo => "MongoDB",
    };
    let mut tables = Vec::new();
    for q in [BenchQuery::Q0b, BenchQuery::Q2] {
        let mut t = Table::new(
            format!(
                "{fig} — VXQuery vs {rival_name}: cluster speed-up, {}",
                q.name()
            ),
            &["nodes", "VXQuery (ms)", &format!("{rival_name} (ms)")],
        );
        for n in NODES_AXIS {
            let mut vx = h.vxquery(&root, cluster_of(n));
            let vt = ms(h.time_system(&mut vx, q));
            let rt = match rival {
                Rival::Asterix => {
                    let mut a = AsterixSim::new(
                        AsterixMode::External,
                        cluster_of(n),
                        &root,
                        root.join("asterix-storage"),
                    );
                    a.load(&sensors).expect("asterix setup");
                    ms(h.time_system(&mut a, q))
                }
                Rival::Mongo => {
                    let mut m = DocStore::new(n);
                    m.load(&sensors).expect("mongo load");
                    ms(h.time_system(&mut m, q))
                }
            };
            t.row(vec![n.to_string(), vt, rt]);
        }
        t.note = match rival {
            Rival::Asterix => {
                "Paper: VXQuery ahead on both queries; the gap is the pipelining rules.".into()
            }
            Rival::Mongo => {
                "Paper: MongoDB wins selections (compressed scans) but VXQuery wins the \
                 self-join (no 16 MB document limit, no unwind detour)."
                    .into()
            }
        };
        tables.push(t);
    }
    tables
}

/// Scale-up sweep (data grows with the cluster) against one rival.
fn scaleup(h: &Harness, rival: Rival, fig: &str) -> Vec<Table> {
    let rival_name = match rival {
        Rival::Asterix => "AsterixDB",
        Rival::Mongo => "MongoDB",
    };
    let mut tables = Vec::new();
    for q in [BenchQuery::Q0b, BenchQuery::Q2] {
        let mut t = Table::new(
            format!(
                "{fig} — VXQuery vs {rival_name}: cluster scale-up, {}",
                q.name()
            ),
            &["nodes", "VXQuery (ms)", &format!("{rival_name} (ms)")],
        );
        for n in NODES_AXIS {
            let spec = h.sensor_spec(SCALEUP_BYTES * n, n, 30);
            let root = h.dataset(&format!("cluster-scaleup-{n}"), &spec);
            let sensors = root.join("sensors");
            let mut vx = h.vxquery(&root, cluster_of(n));
            let vt = ms(h.time_system(&mut vx, q));
            let rt = match rival {
                Rival::Asterix => {
                    let mut a = AsterixSim::new(
                        AsterixMode::External,
                        cluster_of(n),
                        &root,
                        root.join("asterix-storage"),
                    );
                    a.load(&sensors).expect("asterix setup");
                    ms(h.time_system(&mut a, q))
                }
                Rival::Mongo => {
                    let mut m = DocStore::new(n);
                    m.load(&sensors).expect("mongo load");
                    ms(h.time_system(&mut m, q))
                }
            };
            t.row(vec![n.to_string(), vt, rt]);
        }
        t.note = "Flat VXQuery lines = good scale-up (Fig. 21's property carries over).".into();
        tables.push(t);
    }
    tables
}

/// Fig. 22: VXQuery vs AsterixDB speed-up (Q0b, Q2).
pub fn fig22(h: &Harness) -> Vec<Table> {
    speedup(h, Rival::Asterix, "Fig. 22")
}

/// Fig. 23: VXQuery vs AsterixDB scale-up (Q0b, Q2).
pub fn fig23(h: &Harness) -> Vec<Table> {
    scaleup(h, Rival::Asterix, "Fig. 23")
}

/// Fig. 24: VXQuery vs MongoDB speed-up (Q0b, Q2).
pub fn fig24(h: &Harness) -> Vec<Table> {
    speedup(h, Rival::Mongo, "Fig. 24")
}

/// Fig. 25: VXQuery vs MongoDB scale-up (Q0b, Q2).
pub fn fig25(h: &Harness) -> Vec<Table> {
    scaleup(h, Rival::Mongo, "Fig. 25")
}

/// Table 4: MongoDB load time at the two cluster dataset sizes.
pub fn table4(h: &Harness) -> Vec<Table> {
    let mut t = Table::new(
        "Table 4 — loading time for MongoDB (88 GB / 803 GB analogs)",
        &["dataset", "bytes", "load (ms)"],
    );
    for (label, bytes) in [
        ("88GB-analog", SCALEUP_BYTES),
        ("803GB-analog", SPEEDUP_BYTES),
    ] {
        let spec = h.sensor_spec(bytes, 1, 30);
        let root = h.dataset(&format!("table4-{label}"), &spec);
        let mut m = DocStore::new(1);
        let stats = m.load(&root.join("sensors")).expect("mongo load");
        t.row(vec![
            label.to_string(),
            stats.bytes_read.to_string(),
            ms(stats.elapsed),
        ]);
    }
    t.note = "Paper: 9 000 s and 81 000 s — 'a huge overhead ... prohibitively large for \
              real-time applications'. VXQuery has no load phase at all."
        .into();
    vec![t]
}
