//! Single-node rewrite-rule ablations: Figs. 13–16.
//!
//! The paper runs these on one node, one core, over a 400 MB collection
//! ("for these experiments we used a relatively small collection size
//! since without the JSONiq rules Hyracks would need to process the whole
//! file"). We keep the shape: single partition, one dataset, rule
//! families enabled incrementally.

use crate::{ms, Harness, Table};
use algebra::rules::RuleConfig;
use dataflow::ClusterSpec;
use vxq_core::queries::SENSOR_QUERIES;

/// Base dataset bytes for Figs. 13–15 (× scale factor).
const ABLATION_BYTES: usize = 512 * 1024;

fn ablation_table(
    h: &Harness,
    title: &str,
    before: RuleConfig,
    after: RuleConfig,
    note: &str,
) -> Vec<Table> {
    let spec = h.sensor_spec(ABLATION_BYTES, 1, 30);
    let root = h.dataset("ablation", &spec);
    let cluster = ClusterSpec::single_node(1);
    let mut t = Table::new(title, &["query", "before (ms)", "after (ms)", "speed-up"]);
    for (name, q) in SENSOR_QUERIES {
        let eb = h.engine(&root, cluster.clone(), before);
        let ea = h.engine(&root, cluster.clone(), after);
        let tb = h.time_query(&eb, q);
        let ta = h.time_query(&ea, q);
        let speedup = tb.as_secs_f64() / ta.as_secs_f64().max(1e-9);
        t.row(vec![
            name.to_string(),
            ms(tb),
            ms(ta),
            format!("{speedup:.2}x"),
        ]);
    }
    t.note = note.to_string();
    vec![t]
}

/// Fig. 13: execution time before and after the **path expression rules**.
pub fn fig13(h: &Harness) -> Vec<Table> {
    ablation_table(
        h,
        "Fig. 13 — execution time before/after the path expression rules (single node, 1 partition)",
        RuleConfig::none(),
        RuleConfig::path_only(),
        "Paper: a clear improvement for all queries — sequences between operators shrink.",
    )
}

/// Fig. 14: adding the **pipelining rules** (the paper's log-scale plot —
/// "about two orders of magnitude").
pub fn fig14(h: &Harness) -> Vec<Table> {
    ablation_table(
        h,
        "Fig. 14 — execution time before/after the pipelining rules (path rules already on)",
        RuleConfig::path_only(),
        RuleConfig::path_and_pipelining(),
        "Paper: drastic improvement (log scale), best for Q0b (smallest DATASCAN argument).",
    )
}

/// Fig. 15: adding the **group-by rules** (only Q1/Q1b improve).
pub fn fig15(h: &Harness) -> Vec<Table> {
    ablation_table(
        h,
        "Fig. 15 — execution time before/after the group-by rules (path+pipelining already on)",
        RuleConfig::path_and_pipelining(),
        RuleConfig::all(),
        "Paper: Q0/Q0b/Q2 unaffected; Q1 and Q1b improve via the pushed-down count.",
    )
}

/// Fig. 16: Q1 execution time vs collection size, before vs after all
/// rules (the paper sweeps 100 MB → 400 MB).
pub fn fig16(h: &Harness) -> Vec<Table> {
    let cluster = ClusterSpec::single_node(1);
    let mut t = Table::new(
        "Fig. 16 — Q1 execution time for growing collection sizes, before/after all rules",
        &[
            "size (×base)",
            "bytes",
            "before (ms)",
            "after (ms)",
            "speed-up",
        ],
    );
    for mult in [1usize, 2, 3, 4] {
        let spec = h.sensor_spec(ABLATION_BYTES / 4 * mult, 1, 30);
        let root = h.dataset(&format!("fig16-{mult}"), &spec);
        let eb = h.engine(&root, cluster.clone(), RuleConfig::none());
        let ea = h.engine(&root, cluster.clone(), RuleConfig::all());
        let tb = h.time_query(&eb, vxq_core::queries::Q1);
        let ta = h.time_query(&ea, vxq_core::queries::Q1);
        let bytes = spec.total_measurements() * datagen::BYTES_PER_MEASUREMENT;
        t.row(vec![
            format!("{mult}x"),
            bytes.to_string(),
            ms(tb),
            ms(ta),
            format!("{:.2}x", tb.as_secs_f64() / ta.as_secs_f64().max(1e-9)),
        ]);
    }
    t.note = "Paper: the system scales proportionally with dataset size; the rules keep a \
              large constant-factor win at every size."
        .into();
    vec![t]
}
