//! Single-node system comparisons: Fig. 18 / Table 1 (document-size
//! sweep vs MongoDB & AsterixDB) and Fig. 19 / Tables 2–3 (vs SparkSQL).

use crate::{mib, ms, Harness, Table};
use baselines::asterix::{AsterixMode, AsterixSim};
use baselines::{BenchQuery, DocStore, QuerySystem, SparkSim};
use dataflow::ClusterSpec;

/// The paper's measurements/array sweep.
const MPA_AXIS: [usize; 5] = [30, 22, 15, 7, 1];

/// Base dataset bytes for the Fig. 18 sweep (× scale factor).
const FIG18_BYTES: usize = 1024 * 1024;

struct SweepPoint {
    mpa: usize,
    vx_ms: String,
    mongo_ms: String,
    asterix_ms: String,
    asterix_load_ms: String,
    mongo_space: usize,
    asterix_space: usize,
    raw_bytes: usize,
    mongo_load: std::time::Duration,
    asterix_load_time: std::time::Duration,
}

fn run_sweep(h: &Harness) -> Vec<SweepPoint> {
    let cluster = ClusterSpec::single_node(2);
    let mut out = Vec::new();
    for mpa in MPA_AXIS {
        let spec = h.sensor_spec(FIG18_BYTES, 1, mpa);
        let root = h.dataset(&format!("fig18-{mpa}"), &spec);
        let sensors = root.join("sensors");
        let raw_bytes: usize = walk_bytes(&sensors);

        let mut vx = h.vxquery(&root, cluster.clone());
        let vx_ms = ms(h.time_system(&mut vx, BenchQuery::Q0b));

        let mut mongo = DocStore::new(1);
        let mongo_stats = mongo.load(&sensors).expect("mongo load");
        let mongo_ms = ms(h.time_system(&mut mongo, BenchQuery::Q0b));

        let mut asterix = AsterixSim::new(
            AsterixMode::External,
            cluster.clone(),
            &root,
            root.join("asterix-storage"),
        );
        asterix.load(&sensors).expect("asterix external");
        let asterix_ms = ms(h.time_system(&mut asterix, BenchQuery::Q0b));

        let mut asterix_load = AsterixSim::new(
            AsterixMode::Load,
            cluster.clone(),
            &root,
            root.join("asterix-storage"),
        );
        let al_stats = asterix_load.load(&sensors).expect("asterix load");
        let asterix_load_ms = ms(h.time_system(&mut asterix_load, BenchQuery::Q0b));

        out.push(SweepPoint {
            mpa,
            vx_ms,
            mongo_ms,
            asterix_ms,
            asterix_load_ms,
            mongo_space: mongo.space_used(),
            asterix_space: asterix_load.space_used(),
            raw_bytes,
            mongo_load: mongo_stats.elapsed,
            asterix_load_time: al_stats.elapsed,
        });
    }
    out
}

fn walk_bytes(dir: &std::path::Path) -> usize {
    let mut total = 0;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        if let Ok(entries) = std::fs::read_dir(&d) {
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    stack.push(p);
                } else if let Ok(md) = p.metadata() {
                    total += md.len() as usize;
                }
            }
        }
    }
    total
}

/// Fig. 18a+b: Q0b time and space vs measurements/array for VXQuery,
/// MongoDB, AsterixDB (external) and AsterixDB (load).
pub fn fig18(h: &Harness) -> Vec<Table> {
    let points = run_sweep(h);
    let mut time = Table::new(
        "Fig. 18a — Q0b execution time vs measurements/array",
        &[
            "meas/array",
            "VXQuery (ms)",
            "MongoDB (ms)",
            "AsterixDB (ms)",
            "AsterixDB(load) (ms)",
        ],
    );
    let mut space = Table::new(
        "Fig. 18b — space consumption vs measurements/array",
        &[
            "meas/array",
            "raw JSON (MiB)",
            "MongoDB (MiB)",
            "AsterixDB(load) (MiB)",
        ],
    );
    for p in &points {
        time.row(vec![
            p.mpa.to_string(),
            p.vx_ms.clone(),
            p.mongo_ms.clone(),
            p.asterix_ms.clone(),
            p.asterix_load_ms.clone(),
        ]);
        space.row(vec![
            p.mpa.to_string(),
            mib(p.raw_bytes),
            mib(p.mongo_space),
            mib(p.asterix_space),
        ]);
    }
    time.note = "Paper: VXQuery is flat across document sizes; MongoDB is fastest at 30 \
                 (better compression), AsterixDB improves toward 1."
        .into();
    space.note = "Paper: MongoDB's space grows as documents shrink (less compression); \
                  VXQuery/AsterixDB are size-independent."
        .into();
    vec![time, space]
}

/// Table 1: loading time for MongoDB and AsterixDB(load) across the
/// measurements/array sweep.
pub fn table1(h: &Harness) -> Vec<Table> {
    let points = run_sweep(h);
    let mut t = Table::new(
        "Table 1 — loading time vs measurements/array (no loading for VXQuery/AsterixDB-external)",
        &[
            "meas/array",
            "MongoDB load (ms)",
            "AsterixDB(load) load (ms)",
        ],
    );
    for p in &points {
        t.row(vec![
            p.mpa.to_string(),
            ms(p.mongo_load),
            ms(p.asterix_load_time),
        ]);
    }
    t.note = "Paper: MongoDB's load time grows as documents shrink; AsterixDB's stays \
              roughly flat."
        .into();
    vec![t]
}

/// The Fig. 19 data-size axis (base bytes, × scale factor).
const FIG19_SIZES: [(usize, &str); 3] = [
    (512 * 1024, "400MB-analog"),
    (1024 * 1024, "800MB-analog"),
    (1280 * 1024, "1GB-analog"),
];

struct SparkPoint {
    label: &'static str,
    vx_total: String,
    spark_query: String,
    spark_load: std::time::Duration,
    spark_mem: usize,
    vx_mem: usize,
    input_bytes: usize,
}

fn run_spark_sweep(h: &Harness) -> Vec<SparkPoint> {
    // Budget scaled like the paper's 16 GB node vs 1 GB input (×16),
    // relative to the largest input in the sweep.
    let largest = FIG19_SIZES.last().expect("sizes").0 * h.scale.factor();
    let budget = largest * 16;
    let cluster = ClusterSpec::single_node(1);
    let mut out = Vec::new();
    for (bytes, label) in FIG19_SIZES {
        let spec = h.sensor_spec(bytes, 1, 30);
        let root = h.dataset(&format!("fig19-{label}"), &spec);
        let sensors = root.join("sensors");
        let input_bytes = walk_bytes(&sensors);

        let engine = h.engine(&root, cluster.clone(), algebra::rules::RuleConfig::all());
        let vx_time = h.time_query(&engine, vxq_core::queries::Q1);
        let vx_result = engine.execute(vxq_core::queries::Q1).expect("vx q1");

        let mut spark = SparkSim::new(budget);
        let load = spark.load(&sensors).expect("spark load within budget");
        let spark_query = ms(h.time_system(&mut spark, BenchQuery::Q1));

        out.push(SparkPoint {
            label,
            vx_total: ms(vx_time),
            spark_query,
            spark_load: load.elapsed,
            spark_mem: spark.space_used(),
            vx_mem: vx_result.stats.peak_memory,
            input_bytes,
        });
    }
    out
}

/// Fig. 19: Q1 — SparkSQL (query-only) vs VXQuery (total, includes its
/// on-the-fly parse) across data sizes.
pub fn fig19(h: &Harness) -> Vec<Table> {
    let points = run_spark_sweep(h);
    let mut t = Table::new(
        "Fig. 19 — Q1: SparkSQL query time vs VXQuery total time",
        &[
            "dataset",
            "input (MiB)",
            "VXQuery total (ms)",
            "SparkSQL query-only (ms)",
            "SparkSQL load (ms)",
        ],
    );
    for p in &points {
        t.row(vec![
            p.label.to_string(),
            mib(p.input_bytes),
            p.vx_total.clone(),
            p.spark_query.clone(),
            ms(p.spark_load),
        ]);
    }
    t.note = "Paper: Spark's query-only time wins small inputs; adding its load time, \
              VXQuery wins — and Spark cannot load inputs beyond its memory."
        .into();
    vec![t]
}

/// Table 2: SparkSQL loading time per data size.
pub fn table2(h: &Harness) -> Vec<Table> {
    let points = run_spark_sweep(h);
    let mut t = Table::new(
        "Table 2 — loading time for SparkSQL",
        &["dataset", "load (ms)"],
    );
    for p in &points {
        t.row(vec![p.label.to_string(), ms(p.spark_load)]);
    }
    t.note = "Paper: 6.3 s / 15 s / 40 s for 400/800/1000 MB — superlinear under memory \
              pressure."
        .into();
    vec![t]
}

/// Table 3: memory — SparkSQL stores everything, VXQuery only
/// query-relevant state.
pub fn table3(h: &Harness) -> Vec<Table> {
    let points = run_spark_sweep(h);
    let mut t = Table::new(
        "Table 3 — data size to system memory",
        &[
            "dataset",
            "input (MiB)",
            "Spark memory (MiB)",
            "VXQuery memory (MiB)",
        ],
    );
    for p in &points {
        t.row(vec![
            p.label.to_string(),
            mib(p.input_bytes),
            mib(p.spark_mem),
            mib(p.vx_mem),
        ]);
    }
    t.note = "Paper: Spark's memory scales with the whole input (5.6–8 GB); VXQuery's \
              stays near-constant (≈1.7 GB) because only query-relevant data is held."
        .into();
    vec![t]
}
