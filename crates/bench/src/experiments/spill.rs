//! Memory-budget sweep (beyond the paper): Q1 and Q2 under shrinking
//! budgets, measuring what external algorithms cost.
//!
//! The paper ran with enough memory that nothing spilled; this experiment
//! shows the other regime. The budget bounds operator *working state*
//! (the resident scan cache is exempt): each query runs unlimited to
//! measure that working set, then re-runs with it cut to 1/2, 1/4 and
//! 1/8 — the group-by and the self-join switch to their spilling forms
//! while the results stay identical.

use crate::{mib, ms, Harness, Table};
use algebra::rules::RuleConfig;
use dataflow::ClusterSpec;
use vxq_core::queries::{Q1, Q2};

/// Q1 (group-by) and Q2 (join) with the operator working set cut to
/// 1/2, 1/4 and 1/8 of what the unlimited run used.
pub fn spill(h: &Harness) -> Vec<Table> {
    let spec = h.sensor_spec(512 * 1024, 1, 6);
    let root = h.dataset("spill", &spec);
    let cluster = ClusterSpec {
        nodes: 1,
        partitions_per_node: 2,
        ..Default::default()
    };
    let mut out = Vec::new();
    for (name, query) in [("Q1", Q1), ("Q2", Q2)] {
        let unlimited = h.engine_with_budget(&root, cluster.clone(), RuleConfig::all(), 0);
        let base = unlimited.execute(query).expect("unlimited run");
        let peak = base.stats.peak_memory;
        let state = peak.saturating_sub(base.stats.peak_cached);
        let mut t = Table::new(
            format!(
                "Spill — {name} under shrinking budgets (scan cache {} MiB, operator state {} MiB)",
                mib(base.stats.peak_cached),
                mib(state)
            ),
            &[
                "budget",
                "time (ms)",
                "peak (MiB)",
                "spilled (MiB)",
                "runs",
                "merge passes",
                "recursion",
                "rows ok",
            ],
        );
        let mut expected: Vec<String> = base.rows.iter().map(|r| format!("{r:?}")).collect();
        expected.sort();
        for (label, budget) in [
            ("unlimited".to_string(), 0usize),
            ("state/2".to_string(), (state / 2).max(1)),
            ("state/4".to_string(), (state / 4).max(1)),
            ("state/8".to_string(), (state / 8).max(1)),
        ] {
            let e = h.engine_with_budget(&root, cluster.clone(), RuleConfig::all(), budget);
            let r = e.execute(query).expect("budgeted run");
            let mut got: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
            got.sort();
            let d = h.time_query(&e, query);
            let sp = &r.stats.spill;
            t.row(vec![
                label,
                ms(d),
                mib(r.stats.peak_memory),
                mib(sp.bytes_spilled as usize),
                sp.runs_written.to_string(),
                sp.merge_passes.to_string(),
                sp.max_recursion.to_string(),
                if got == expected {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
        t.note = "The budget bounds operator working state (the resident scan \
                  cache is exempt), trading memory for run-file I/O; results \
                  are checked against the unlimited run on every row."
            .into();
        out.push(t);
    }
    out
}
