//! One function per figure/table of the paper's evaluation (§5).
//!
//! | id | paper | function |
//! |---|---|---|
//! | fig13 | exec time before/after path rules | [`rules::fig13`] |
//! | fig14 | before/after pipelining rules | [`rules::fig14`] |
//! | fig15 | before/after group-by rules | [`rules::fig15`] |
//! | fig16 | Q1 vs data size, before/after all rules | [`rules::fig16`] |
//! | fig17 | single-node speed-up (partitions, HT) | [`parallel::fig17`] |
//! | fig18 | time & space vs measurements/array | [`compare_single::fig18`] |
//! | table1 | Mongo/Asterix(load) load times | [`compare_single::table1`] |
//! | fig19 | Spark vs VXQuery, Q1, sizes | [`compare_single::fig19`] |
//! | table2 | Spark load times | [`compare_single::table2`] |
//! | table3 | memory: Spark vs VXQuery | [`compare_single::table3`] |
//! | fig20 | cluster speed-up, all queries | [`parallel::fig20`] |
//! | fig21 | cluster scale-up, all queries | [`parallel::fig21`] |
//! | fig22 | vs AsterixDB speed-up (Q0b, Q2) | [`compare_cluster::fig22`] |
//! | fig23 | vs AsterixDB scale-up (Q0b, Q2) | [`compare_cluster::fig23`] |
//! | fig24 | vs MongoDB speed-up (Q0b, Q2) | [`compare_cluster::fig24`] |
//! | fig25 | vs MongoDB scale-up (Q0b, Q2) | [`compare_cluster::fig25`] |
//! | table4 | MongoDB load times | [`compare_cluster::table4`] |
//! | ablation-twostep | (beyond the paper) two-step aggregation | [`ablation::two_step`] |
//! | ablation-frames | (beyond the paper) frame-size sweep | [`ablation::frame_size`] |
//! | ablation-memory | (beyond the paper) peak memory per rule config | [`ablation::memory_by_config`] |
//! | splits-scan | (beyond the paper) intra-file split scanning | [`splits::splits`] |
//! | spill | (beyond the paper) memory-budget sweep, spilling operators | [`spill::spill`] |
//! | service | (beyond the paper) concurrent-serving throughput sweep | [`service::service`] |
//! | stage1 | (beyond the paper) vectorized stage-1 kernel sweep | [`stage1::stage1`] |

pub mod ablation;
pub mod compare_cluster;
pub mod compare_single;
pub mod parallel;
pub mod rules;
pub mod service;
pub mod spill;
pub mod splits;
pub mod stage1;

use crate::{Harness, Table};

/// An experiment entry point: harness in, result tables out.
pub type ExperimentFn = fn(&Harness) -> Vec<Table>;

/// The experiment registry, in paper order.
pub const EXPERIMENTS: &[(&str, ExperimentFn)] = &[
    ("fig13", rules::fig13),
    ("fig14", rules::fig14),
    ("fig15", rules::fig15),
    ("fig16", rules::fig16),
    ("fig17", parallel::fig17),
    ("fig18", compare_single::fig18),
    ("table1", compare_single::table1),
    ("fig19", compare_single::fig19),
    ("table2", compare_single::table2),
    ("table3", compare_single::table3),
    ("fig20", parallel::fig20),
    ("fig21", parallel::fig21),
    ("fig22", compare_cluster::fig22),
    ("fig23", compare_cluster::fig23),
    ("fig24", compare_cluster::fig24),
    ("fig25", compare_cluster::fig25),
    ("table4", compare_cluster::table4),
    ("ablation-twostep", ablation::two_step),
    ("ablation-frames", ablation::frame_size),
    ("ablation-memory", ablation::memory_by_config),
    ("splits-scan", splits::splits),
    ("spill", spill::spill),
    ("service", service::service),
    ("stage1", stage1::stage1),
];

/// Look up an experiment by id.
pub fn by_name(name: &str) -> Option<ExperimentFn> {
    EXPERIMENTS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| *f)
}
