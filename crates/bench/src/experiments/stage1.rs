//! Stage-1 kernel sweep (beyond the paper): vectorized structural-index
//! build throughput per kernel, and its end-to-end effect on the scan-
//! bound queries.
//!
//! The first table is the PR's perf baseline: single-thread
//! `StructuralIndex` build throughput (GB/s) per stage-1 kernel over
//! GHCN-shaped files of growing size, with the SWAR-vs-scalar ratio the
//! acceptance criterion tracks. The second table runs Q0/Q0b through the
//! whole engine at growing partition counts, scalar stage 1 versus the
//! auto-selected kernel. A machine-readable summary lands in
//! `target/bench-results/stage1.json` so future runs can diff against a
//! recorded baseline.

use crate::{ms, Harness, Table};
use algebra::rules::RuleConfig;
use dataflow::ClusterSpec;
use datagen::SensorSpec;
use jdm::index::StructuralIndex;
use jdm::stage1::{available_kernels, Kernel, Stage1Mode};
use std::fmt::Write as _;
use std::time::Instant;
use vxq_core::queries::{Q0, Q0B};
use vxq_core::ScanOptions;

/// Paper-faithful GHCN file: the NOAA web-service response shape the
/// paper's collection is built from — ISO-8601 timestamps, `GHCND:`
/// station ids, attribute-flag strings. Noticeably string-heavier than
/// the abbreviated sensor records the query datasets use, and the shape
/// the kernel throughput numbers are defined on. Deterministic, cached
/// on disk keyed by size.
fn ghcn_file(h: &Harness, bytes: usize) -> Vec<u8> {
    let path = h.data_dir.join(format!("stage1-ghcnd-{bytes}.json"));
    if let Ok(buf) = std::fs::read(&path) {
        if buf.len() >= bytes {
            return buf;
        }
    }
    let mut out = String::from(
        "{\"metadata\":{\"resultset\":{\"offset\":1,\"count\":1000,\"limit\":1000}},\"results\":[",
    );
    out.reserve(bytes + 256);
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let mut first = true;
    while out.len() < bytes {
        let r = next();
        let day = 1 + r % 28;
        let month = 1 + (r >> 5) % 12;
        let datatype = ["TMAX", "TMIN", "PRCP", "SNOW"][(r >> 9) as usize % 4];
        let station = 14000 + (r >> 11) % 1000;
        let flags = [",,W,2400", ",,W,0700", "H,,S,", ",,D,1200"][(r >> 21) as usize % 4];
        let value = (next() % 700) as i32 - 350;
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"date\":\"2017-{month:02}-{day:02}T00:00:00.000\",\"datatype\":\"{datatype}\",\
             \"station\":\"GHCND:USW000{station:05}\",\"attributes\":\"{flags}\",\"value\":{value}}}"
        );
    }
    out.push_str("]}");
    let _ = std::fs::create_dir_all(&h.data_dir);
    let _ = std::fs::write(&path, out.as_bytes());
    out.into_bytes()
}

/// Forced mode that resolves to exactly `kernel` on this machine.
fn mode_for(kernel: Kernel) -> Stage1Mode {
    match kernel {
        Kernel::Scalar => Stage1Mode::Scalar,
        Kernel::Swar => Stage1Mode::Swar,
        Kernel::Sse2 => Stage1Mode::Sse2,
        Kernel::Avx2 => Stage1Mode::Avx2,
    }
}

/// Per-kernel single-thread index-build timings over `reps` rounds. The
/// kernels are interleaved round-robin within each round so a shared or
/// thermally throttled CPU penalizes them all equally instead of biasing
/// whichever kernel happened to run during a slow window. Returns
/// `times[kernel][round]` in seconds.
fn build_times(buf: &[u8], kernels: &[Kernel], reps: usize) -> Vec<Vec<f64>> {
    let mut tapes: Vec<Vec<jdm::index::TapeEntry>> = kernels.iter().map(|_| Vec::new()).collect();
    let mut times = vec![Vec::with_capacity(reps); kernels.len()];
    // Round 0 is an untimed warm-up: it sizes the tapes and faults the
    // buffer in.
    for rep in 0..=reps {
        for (i, &k) in kernels.iter().enumerate() {
            let tape = std::mem::take(&mut tapes[i]);
            let started = Instant::now();
            let index = StructuralIndex::build_reusing_with(buf, tape, mode_for(k))
                .expect("valid bench file");
            let elapsed = started.elapsed().as_secs_f64();
            if rep > 0 {
                times[i].push(elapsed);
            }
            tapes[i] = index.into_tape();
        }
    }
    times
}

/// Median of a sample set (samples may arrive in any order).
fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    s[s.len() / 2]
}

/// Kernel × file size × partitions sweep.
pub fn stage1(h: &Harness) -> Vec<Table> {
    let kernels = available_kernels();

    // --- kernel × file size: raw single-thread build throughput --------
    //
    // File sizes are absolute (not scale-multiplied): stage-1 throughput
    // is a per-byte property, and the size axis probes the machine's
    // cache regimes — which are absolute — from L2-resident through
    // DRAM-streaming (the mask-driven build also writes the tape, ~1.6x
    // the input, so it meets the memory-bandwidth ceiling first).
    let mut header: Vec<String> = vec!["file size (MiB)".into()];
    header.extend(kernels.iter().map(|k| format!("{} (GB/s)", k.label())));
    header.push("swar/scalar (best)".into());
    header.push("(median)".into());
    let mut t1 = Table::new(
        "Stage 1 — structural-index build throughput by kernel, GHCN-shaped file",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut json_sizes = String::new();
    for bytes in [
        128 * 1024usize,
        512 * 1024,
        2 * 1024 * 1024,
        8 * 1024 * 1024,
    ] {
        let buf = ghcn_file(h, bytes);
        // Best-of over enough rounds that every kernel sees a quiet CPU
        // window at least once; smaller files get more rounds for free.
        let reps = (48 * 1024 * 1024 / buf.len()).clamp(h.repeat.max(8), 30);
        let mut row = vec![format!("{:.2}", buf.len() as f64 / (1024.0 * 1024.0))];
        let times = build_times(&buf, &kernels, reps);
        let mut kernel_json = String::new();
        for (&k, samples) in kernels.iter().zip(&times) {
            // Throughput from the fastest (least-disturbed) round.
            let best = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let gbps = buf.len() as f64 / best / 1e9;
            row.push(format!("{gbps:.3}"));
            if !kernel_json.is_empty() {
                kernel_json.push(',');
            }
            let _ = write!(kernel_json, "\"{}\":{gbps:.4}", k.label());
        }
        // Two speed-up estimators, because the host is noisy. "best"
        // compares each kernel's least-disturbed round — the
        // architectural speed-up a quiet machine would show. "median" is
        // the median of *paired* per-round ratios (both kernels of a
        // pair ran back-to-back inside the same throttle window, so
        // external slowdowns mostly cancel) — the typical speed-up under
        // whatever contention the host is seeing.
        let scalar_i = kernels.iter().position(|&k| k == Kernel::Scalar).unwrap();
        let swar_i = kernels.iter().position(|&k| k == Kernel::Swar).unwrap();
        let best_of = |i: usize| times[i].iter().cloned().fold(f64::INFINITY, f64::min);
        let ratio_best = best_of(scalar_i) / best_of(swar_i).max(1e-12);
        let per_round: Vec<f64> = times[scalar_i]
            .iter()
            .zip(&times[swar_i])
            .map(|(s, v)| s / v.max(1e-12))
            .collect();
        let ratio_median = median(&per_round);
        row.push(format!("{ratio_best:.2}x"));
        row.push(format!("{ratio_median:.2}x"));
        t1.row(row);
        if !json_sizes.is_empty() {
            json_sizes.push(',');
        }
        let _ = write!(
            json_sizes,
            "{{\"bytes\":{},\"kernels\":{{{kernel_json}}},\"swar_speedup\":{ratio_best:.3},\
             \"swar_speedup_median\":{ratio_median:.3}}}",
            buf.len()
        );
    }
    t1.note = "Single-thread build of the full structural index over NOAA \
               GHCN web-service records; the scalar column is the original \
               per-byte scan, the others consume stage-1 bitmasks. Large \
               files leave cache and the mask-driven build (input + tape \
               streaming) hits the memory-bandwidth ceiling first, \
               compressing the ratio."
        .into();

    // --- end to end: Q0/Q0b, scalar vs auto, growing partitions --------
    let mut t2 = Table::new(
        "Stage 1 — end-to-end Q0/Q0b, scalar stage 1 vs auto-selected kernel",
        &[
            "query",
            "partitions",
            "scalar (ms)",
            "auto (ms)",
            "speed-up",
        ],
    );
    let auto_label = Stage1Mode::Auto.resolve().label();
    let spec = SensorSpec::sized(2 * 1024 * 1024 * h.scale.factor(), 1, 2, 30);
    let root = h.dataset("stage1-e2e", &spec);
    let mut json_e2e = String::new();
    for (name, query) in [("q0", Q0), ("q0b", Q0B)] {
        for parts in [1usize, 2] {
            let cluster = ClusterSpec {
                nodes: 1,
                partitions_per_node: parts,
                ..Default::default()
            };
            let mut times = Vec::new();
            for mode in [Stage1Mode::Scalar, Stage1Mode::Auto] {
                let scan = ScanOptions {
                    stage1: mode,
                    ..ScanOptions::default()
                };
                let e = h.engine_with_scan(&root, cluster.clone(), RuleConfig::all(), scan);
                times.push(h.time_query(&e, query));
            }
            let speedup = times[0].as_secs_f64() / times[1].as_secs_f64().max(1e-9);
            t2.row(vec![
                name.to_string(),
                parts.to_string(),
                ms(times[0]),
                ms(times[1]),
                format!("{speedup:.2}x"),
            ]);
            if !json_e2e.is_empty() {
                json_e2e.push(',');
            }
            let _ = write!(
                json_e2e,
                "{{\"query\":\"{name}\",\"partitions\":{parts},\"scalar_ms\":{:.3},\
                 \"auto_ms\":{:.3},\"speedup\":{speedup:.3}}}",
                times[0].as_secs_f64() * 1e3,
                times[1].as_secs_f64() * 1e3
            );
        }
    }
    t2.note = format!(
        "auto resolves to `{auto_label}` on this machine; end-to-end wins are \
         bounded by the index build's share of total query time (Amdahl)."
    );

    // Machine-readable perf baseline for future regression diffs.
    let summary = format!(
        "{{\"experiment\":\"stage1\",\"auto_kernel\":\"{auto_label}\",\
         \"sizes\":[{json_sizes}],\"e2e\":[{json_e2e}]}}\n"
    );
    let out_dir = std::path::Path::new("target/bench-results");
    if std::fs::create_dir_all(out_dir).is_ok() {
        let _ = std::fs::write(out_dir.join("stage1.json"), summary);
    }

    vec![t1, t2]
}
