//! The evaluation harness CLI.
//!
//! ```text
//! cargo run -p bench --release -- [--scale tiny|small|large]
//!                                 [--repeat N] [--out FILE]
//!                                 [--metrics-dir DIR]
//!                                 <experiment>... | all | list
//! ```
//!
//! Each experiment prints the corresponding paper table/figure as a
//! markdown table; `--out` additionally appends everything to a file
//! (used to produce EXPERIMENTS.md).
//!
//! `--metrics-dir DIR` runs every sensor query once on a 2-node × 2-
//! partition cluster with full observability and writes, per query:
//! `<q>.prom` (Prometheus text exposition), `<q>.metrics.json` (stats +
//! per-operator profile + per-rule optimizer timings), `<q>.trace.json`
//! (Chrome trace, load via chrome://tracing) and `<q>.trace.jsonl`
//! (JSON-lines spans), plus an `EXPLAIN ANALYZE` report on stdout.

use bench::experiments::{by_name, EXPERIMENTS};
use bench::{Harness, Scale};
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--scale tiny|small|large] [--repeat N] [--out FILE] \
         [--metrics-dir DIR] <fig13|...|table4|all|list>"
    );
    std::process::exit(2);
}

/// Run each sensor query once with full observability and dump metrics
/// snapshots + traces into `dir`.
fn dump_metrics(harness: &Harness, dir: &std::path::Path) {
    use algebra::rules::RuleConfig;
    use dataflow::ClusterSpec;

    std::fs::create_dir_all(dir).expect("create metrics dir");
    let spec = harness.sensor_spec(256 * 1024, 2, 20);
    let root = harness.dataset("metrics", &spec);
    let engine = harness.engine(
        &root,
        ClusterSpec {
            nodes: 2,
            partitions_per_node: 2,
            ..Default::default()
        },
        RuleConfig::all(),
    );
    for (name, query) in vxq_core::queries::SENSOR_QUERIES {
        let (result, trace) = engine.execute_profiled(query).expect("profiled query");
        let write = |ext: &str, content: String| {
            let path = dir.join(format!("{name}.{ext}"));
            std::fs::write(&path, content).expect("write metrics file");
            eprintln!("   wrote {}", path.display());
        };
        write("prom", bench::metrics::to_prometheus(name, &result));
        write("metrics.json", bench::metrics::to_json(name, &result));
        write("trace.json", trace.to_chrome_trace());
        write("trace.jsonl", trace.to_json_lines());
        println!("== EXPLAIN ANALYZE {name} ==");
        println!("{}", vxq_core::render_analysis(&result));
    }

    // The serving layer: a short concurrent burst of the sensor queries
    // through one QueryService, snapshotted into its own families.
    let engine = harness.engine(
        &root,
        ClusterSpec {
            nodes: 2,
            partitions_per_node: 2,
            ..Default::default()
        },
        RuleConfig::all(),
    );
    let service = vxq_core::QueryService::new(engine, vxq_core::ServiceConfig::default());
    std::thread::scope(|s| {
        for c in 0..4 {
            let service = &service;
            s.spawn(move || {
                for round in 0..3 {
                    let (_, query) = vxq_core::queries::SENSOR_QUERIES
                        [(c + round) % vxq_core::queries::SENSOR_QUERIES.len()];
                    service
                        .execute(query, vxq_core::QueryOptions::default())
                        .expect("service query");
                }
            });
        }
    });
    let snap = service.snapshot();
    let write = |ext: &str, content: String| {
        let path = dir.join(format!("service.{ext}"));
        std::fs::write(&path, content).expect("write metrics file");
        eprintln!("   wrote {}", path.display());
    };
    write("prom", bench::metrics::service_to_prometheus(&snap));
    write("metrics.json", bench::metrics::service_to_json(&snap));
    println!("== service ==");
    println!(
        "submitted: {}  completed: {}  failed: {}  rejected: {}",
        snap.submitted, snap.completed, snap.failed, snap.rejected
    );
    println!(
        "plan cache: {} hits / {} misses ({} cached)",
        snap.plan_cache_hits, snap.plan_cache_misses, snap.plan_cache_size
    );
    println!(
        "latency: p50 {:.1} ms  p95 {:.1} ms  p99 {:.1} ms  (n={})",
        snap.latency.p50_us as f64 / 1000.0,
        snap.latency.p95_us as f64 / 1000.0,
        snap.latency.p99_us as f64 / 1000.0,
        snap.latency.count
    );
    println!("leaked bytes: {}", snap.leaked_bytes);
}

fn main() {
    let mut harness = Harness::default();
    let mut targets: Vec<String> = Vec::new();
    let mut out_file: Option<String> = None;
    let mut metrics_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                harness.scale = match args.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("large") => Scale::Large,
                    _ => usage(),
                }
            }
            "--repeat" => {
                harness.repeat = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out_file = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics-dir" => metrics_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => targets.push(other.to_string()),
        }
    }
    if let Some(dir) = &metrics_dir {
        dump_metrics(&harness, std::path::Path::new(dir));
    }
    if targets.is_empty() {
        if metrics_dir.is_some() {
            return;
        }
        usage();
    }
    if targets.iter().any(|t| t == "list") {
        for (name, _) in EXPERIMENTS {
            println!("{name}");
        }
        return;
    }
    let selected: Vec<&str> = if targets.iter().any(|t| t == "all") {
        EXPERIMENTS.iter().map(|(n, _)| *n).collect()
    } else {
        targets.iter().map(String::as_str).collect()
    };

    let mut report = String::new();
    for name in selected {
        let Some(f) = by_name(name) else {
            eprintln!("unknown experiment {name:?} (try `list`)");
            std::process::exit(2);
        };
        eprintln!(
            "== running {name} (scale {:?}, repeat {}) ==",
            harness.scale, harness.repeat
        );
        let started = std::time::Instant::now();
        let tables = f(&harness);
        eprintln!("   {name} finished in {:.1?}", started.elapsed());
        for t in tables {
            let md = t.to_markdown();
            println!("{md}");
            report.push_str(&md);
        }
    }
    if let Some(path) = out_file {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open --out file");
        f.write_all(report.as_bytes()).expect("write report");
        eprintln!("appended results to {path}");
    }
}
