//! The evaluation harness CLI.
//!
//! ```text
//! cargo run -p bench --release -- [--scale tiny|small|large]
//!                                 [--repeat N] [--out FILE]
//!                                 <experiment>... | all | list
//! ```
//!
//! Each experiment prints the corresponding paper table/figure as a
//! markdown table; `--out` additionally appends everything to a file
//! (used to produce EXPERIMENTS.md).

use bench::experiments::{by_name, EXPERIMENTS};
use bench::{Harness, Scale};
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--scale tiny|small|large] [--repeat N] [--out FILE] \
         <fig13|...|table4|all|list>"
    );
    std::process::exit(2);
}

fn main() {
    let mut harness = Harness::default();
    let mut targets: Vec<String> = Vec::new();
    let mut out_file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                harness.scale = match args.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("large") => Scale::Large,
                    _ => usage(),
                }
            }
            "--repeat" => {
                harness.repeat = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out_file = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        usage();
    }
    if targets.iter().any(|t| t == "list") {
        for (name, _) in EXPERIMENTS {
            println!("{name}");
        }
        return;
    }
    let selected: Vec<&str> = if targets.iter().any(|t| t == "all") {
        EXPERIMENTS.iter().map(|(n, _)| *n).collect()
    } else {
        targets.iter().map(String::as_str).collect()
    };

    let mut report = String::new();
    for name in selected {
        let Some(f) = by_name(name) else {
            eprintln!("unknown experiment {name:?} (try `list`)");
            std::process::exit(2);
        };
        eprintln!(
            "== running {name} (scale {:?}, repeat {}) ==",
            harness.scale, harness.repeat
        );
        let started = std::time::Instant::now();
        let tables = f(&harness);
        eprintln!("   {name} finished in {:.1?}", started.elapsed());
        for t in tables {
            let md = t.to_markdown();
            println!("{md}");
            report.push_str(&md);
        }
    }
    if let Some(path) = out_file {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open --out file");
        f.write_all(report.as_bytes()).expect("write report");
        eprintln!("appended results to {path}");
    }
}
