//! # bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's §5 at laptop scale
//! (collection sizes are ~1000× smaller; DESIGN.md §3 argues why the
//! *shapes* survive the scaling). Two entry points:
//!
//! * the `experiments` binary — `cargo run -p bench --release --
//!   <fig13|fig14|...|table4|all>` prints each experiment as a table with
//!   the same rows/series the paper reports;
//! * Criterion benches (`cargo bench -p bench`) — statistical versions of
//!   the same measurements, one Criterion group per figure/table.
//!
//! The [`experiments`] module holds one function per figure/table; this
//! module holds shared plumbing: the dataset cache, timing helpers and
//! table rendering.

pub mod experiments;
pub mod metrics;

use algebra::rules::RuleConfig;
use baselines::{BenchQuery, QuerySystem, VxQuerySystem};
use dataflow::ClusterSpec;
use datagen::SensorSpec;
use std::path::PathBuf;
use std::time::Duration;
use vxq_core::{Engine, EngineConfig};

/// Scale of the run: how much data each experiment touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized: hundreds of kilobytes, seconds per experiment.
    Tiny,
    /// Default: a few megabytes per point, minutes for `all`.
    Small,
    /// Tens of megabytes per point — closest shape to the paper.
    Large,
}

impl Scale {
    /// Multiplier applied to each experiment's base byte sizes.
    pub fn factor(self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 8,
            Scale::Large => 32,
        }
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Harness {
    pub scale: Scale,
    /// Repetitions per measurement (the paper used 5).
    pub repeat: usize,
    /// Dataset cache directory.
    pub data_dir: PathBuf,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            scale: Scale::Small,
            repeat: 3,
            data_dir: PathBuf::from("target/bench-data"),
        }
    }
}

impl Harness {
    /// Materialize (or reuse) a dataset for `spec`, tagged for cache
    /// identity. Returns the *data root* (the collection lives at
    /// `<root>/sensors`).
    pub fn dataset(&self, tag: &str, spec: &SensorSpec) -> PathBuf {
        let key = format!(
            "{tag}-n{}-f{}-r{}-m{}-s{}",
            spec.nodes,
            spec.files_per_node,
            spec.records_per_file,
            spec.measurements_per_array,
            spec.seed
        );
        let root = self.data_dir.join(key);
        let marker = root.join(".complete");
        if !marker.exists() {
            let _ = std::fs::remove_dir_all(&root);
            spec.generate(&root.join("sensors"))
                .expect("dataset generation");
            std::fs::write(&marker, b"ok").expect("marker");
        }
        root
    }

    /// A sensor spec of roughly `bytes` total, distributed over `nodes`.
    pub fn sensor_spec(&self, bytes: usize, nodes: usize, mpa: usize) -> SensorSpec {
        let files_per_node = 4;
        SensorSpec::sized(bytes * self.scale.factor(), nodes, files_per_node, mpa)
    }

    /// Build a VXQuery engine.
    pub fn engine(
        &self,
        root: &std::path::Path,
        cluster: ClusterSpec,
        rules: RuleConfig,
    ) -> Engine {
        self.engine_with_scan(root, cluster, rules, vxq_core::ScanOptions::default())
    }

    /// Build a VXQuery engine with explicit DATASCAN split options (the
    /// intra-file-parallelism experiment's knob).
    pub fn engine_with_scan(
        &self,
        root: &std::path::Path,
        cluster: ClusterSpec,
        rules: RuleConfig,
        scan: vxq_core::ScanOptions,
    ) -> Engine {
        Engine::new(EngineConfig {
            cluster,
            rules,
            data_root: root.to_path_buf(),
            memory_budget: 0,
            scan,
            ..EngineConfig::default()
        })
    }

    /// Build a VXQuery engine running under a memory budget (bytes; the
    /// spill experiment's knob). `0` = unlimited.
    pub fn engine_with_budget(
        &self,
        root: &std::path::Path,
        cluster: ClusterSpec,
        rules: RuleConfig,
        memory_budget: usize,
    ) -> Engine {
        Engine::new(EngineConfig {
            cluster,
            rules,
            data_root: root.to_path_buf(),
            memory_budget,
            ..EngineConfig::default()
        })
    }

    /// Mean wall-clock time of `repeat` runs of `query` on `engine`.
    pub fn time_query(&self, engine: &Engine, query: &str) -> Duration {
        let mut total = Duration::ZERO;
        for _ in 0..self.repeat.max(1) {
            let r = engine.execute(query).expect("benchmark query");
            total += r.stats.elapsed;
        }
        total / self.repeat.max(1) as u32
    }

    /// Mean time of a [`QuerySystem`] run.
    pub fn time_system(&self, sys: &mut dyn QuerySystem, q: BenchQuery) -> Duration {
        let mut total = Duration::ZERO;
        for _ in 0..self.repeat.max(1) {
            total += sys.run(q).expect("baseline query").elapsed;
        }
        total / self.repeat.max(1) as u32
    }

    /// A VXQuery instance wrapped in the baseline interface.
    pub fn vxquery(&self, root: &std::path::Path, cluster: ClusterSpec) -> VxQuerySystem {
        VxQuerySystem::new(root.to_path_buf(), cluster)
    }
}

/// One result table (≈ one figure or table of the paper).
#[derive(Debug, Clone)]
pub struct Table {
    /// e.g. "Fig. 14 — execution time before/after the pipelining rules".
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// One-line observation tying the measurement back to the paper.
    pub note: String,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            note: String::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render as GitHub markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.header.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        if !self.note.is_empty() {
            out.push_str(&format!("\n*{}*\n", self.note));
        }
        out.push('\n');
        out
    }
}

/// Milliseconds with 1-decimal precision.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1000.0)
}

/// Mebibytes with 2-decimal precision.
pub fn mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_markdown_shape() {
        let mut t = Table::new("Fig. X", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Fig. X"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn dataset_cache_is_reused() {
        let h = Harness {
            scale: Scale::Tiny,
            repeat: 1,
            data_dir: std::env::temp_dir().join("vxq-bench-cache-test"),
        };
        let _ = std::fs::remove_dir_all(&h.data_dir);
        let spec = SensorSpec {
            files_per_node: 1,
            records_per_file: 2,
            measurements_per_array: 2,
            ..Default::default()
        };
        let a = h.dataset("t", &spec);
        let marker = a.join(".complete");
        let mtime = std::fs::metadata(&marker).unwrap().modified().unwrap();
        let b = h.dataset("t", &spec);
        assert_eq!(a, b);
        assert_eq!(
            std::fs::metadata(&marker).unwrap().modified().unwrap(),
            mtime
        );
        let _ = std::fs::remove_dir_all(&h.data_dir);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.0");
        assert_eq!(mib(1024 * 1024), "1.00");
    }
}
