//! Property tests for the runtime expression layer: navigation over the
//! binary tuple encoding must agree with direct tree-model navigation,
//! and grouped aggregation must be partition-invariant.

use algebra::expr::Function;
use dataflow::frame::frames_from_rows;
use jdm::binary::to_bytes;
use jdm::{Item, Number};
use proptest::prelude::*;
use vxq_core::rtexpr::{keys_or_members, value_step, RtExpr};

fn arb_json(depth: u32) -> impl Strategy<Value = Item> {
    let leaf = prop_oneof![
        Just(Item::Null),
        any::<bool>().prop_map(Item::Boolean),
        (-1000i64..1000).prop_map(Item::int),
        "[a-z]{0,6}".prop_map(Item::str),
    ];
    leaf.prop_recursive(depth, 32, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Item::Array),
            prop::collection::vec(("[a-d]{1,2}", inner), 0..4).prop_map(|pairs| {
                Item::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
            }),
        ]
    })
}

/// Evaluate `value(Field(0), key)` through the full tuple machinery.
fn eval_value_via_tuple(item: &Item, key: &Item) -> Item {
    let rows = vec![vec![to_bytes(item)]];
    let frames = frames_from_rows(&rows, 64 * 1024);
    let t = frames[0].tuple(0);
    let e = RtExpr::Call(
        Function::Value,
        vec![RtExpr::Field(0), RtExpr::Const(key.clone())],
    );
    e.eval(&t).expect("value never fails")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn value_step_through_tuples_matches_tree(item in arb_json(3), key in "[a-d]{1,2}") {
        let via_tuple = eval_value_via_tuple(&item, &Item::str(key.as_str()));
        let direct = value_step(&item, &Item::str(key.as_str()));
        prop_assert_eq!(via_tuple, direct);
    }

    #[test]
    fn index_value_step_matches_tree(item in arb_json(3), idx in -2i64..6) {
        let key = Item::Number(Number::Int(idx));
        let via_tuple = eval_value_via_tuple(&item, &key);
        let direct = value_step(&item, &key);
        prop_assert_eq!(via_tuple, direct);
    }

    #[test]
    fn kom_flattening_matches_manual(items in prop::collection::vec(arb_json(2), 0..5)) {
        let seq = Item::Sequence(items.clone());
        let got = keys_or_members(&seq);
        let expected = Item::seq(
            items.iter().map(|it| Item::Sequence(it.keys_or_members().collect())),
        );
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn comparisons_are_antisymmetric(a in arb_json(1), b in arb_json(1)) {
        // eq(a,b) == eq(b,a); lt(a,b) implies gt(b,a) for atomics.
        let eval = |f: Function, x: &Item, y: &Item| -> bool {
            vxq_core::rtexpr::apply(f, vec![x.clone(), y.clone()])
                .expect("comparison never fails")
                .as_bool()
                .expect("comparisons yield booleans")
        };
        prop_assert_eq!(eval(Function::Eq, &a, &b), eval(Function::Eq, &b, &a));
        if !matches!(a, Item::Array(_) | Item::Object(_))
            && !matches!(b, Item::Array(_) | Item::Object(_))
            && eval(Function::Lt, &a, &b)
        {
            prop_assert!(eval(Function::Gt, &b, &a));
        }
    }

    #[test]
    fn count_equals_sequence_length(items in prop::collection::vec(arb_json(1), 0..8)) {
        let seq = Item::Sequence(items.clone());
        let got = vxq_core::rtexpr::apply(Function::Count, vec![seq]).expect("count");
        prop_assert_eq!(got, Item::int(items.len() as i64));
    }
}
