//! Runtime expressions: logical expressions with variables resolved to
//! tuple field indices, evaluated over binary tuples.
//!
//! JSONiq sequence semantics are implemented faithfully where the paper's
//! queries exercise them:
//!
//! * `value` and `keys-or-members` **map over sequences** (a path step on
//!   a sequence applies to each item and concatenates);
//! * value comparisons on empty sequences are `false` (a missing key
//!   never matches), and comparisons over sequences are existential;
//! * arithmetic propagates the empty sequence.

use crate::error::{EngineError, Result};
use algebra::expr::Function;
use dataflow::TupleRef;
use jdm::binary::ItemRef;
use jdm::{DateTime, Item, Number};
use std::cmp::Ordering;

/// Sentinel field index: the "extra" item supplied by subplan evaluation
/// (the per-item variable of a nested UNNEST).
pub const EXTRA_FIELD: usize = usize::MAX;

/// A compiled runtime expression.
#[derive(Debug, Clone)]
pub enum RtExpr {
    /// Read tuple field `i` (or the subplan extra item).
    Field(usize),
    /// Literal.
    Const(Item),
    /// Function application.
    Call(Function, Vec<RtExpr>),
    /// Evaluate and canonicalize for *byte-equality* contexts (group-by
    /// and join keys): exchanges and hash tables compare serialized
    /// bytes, so values that are JSONiq-equal must serialize identically.
    /// Doubles holding exact integers become integers; singleton
    /// sequences unwrap.
    Canon(Box<RtExpr>),
}

impl RtExpr {
    /// Evaluate over a tuple.
    pub fn eval(&self, tuple: &TupleRef<'_>) -> Result<Item> {
        self.eval_with(tuple, None)
    }

    /// Evaluate with an optional extra item bound to [`EXTRA_FIELD`].
    pub fn eval_with(&self, tuple: &TupleRef<'_>, extra: Option<&Item>) -> Result<Item> {
        match self {
            RtExpr::Field(i) => {
                if *i == EXTRA_FIELD {
                    return extra
                        .cloned()
                        .ok_or_else(|| EngineError::Compile("extra field unbound".into()));
                }
                let bytes = tuple.field(*i);
                ItemRef::new(bytes)
                    .and_then(|r| r.to_item())
                    .map_err(|e| EngineError::Compile(format!("bad field {i}: {e}")))
            }
            RtExpr::Const(item) => Ok(item.clone()),
            RtExpr::Canon(inner) => Ok(canonicalize(inner.eval_with(tuple, extra)?)),
            RtExpr::Call(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval_with(tuple, extra)?);
                }
                apply(*f, vals)
            }
        }
    }
}

/// Canonicalize an item for byte-equality key contexts: unwrap singleton
/// sequences and narrow exact-integer doubles.
pub fn canonicalize(item: Item) -> Item {
    match item {
        Item::Sequence(mut v) if v.len() == 1 => canonicalize(v.pop().expect("len checked")),
        Item::Number(n) => match n.as_i64() {
            Some(i) => Item::int(i),
            None => Item::Number(n),
        },
        other => other,
    }
}

/// Apply a function to evaluated arguments.
pub fn apply(f: Function, mut args: Vec<Item>) -> Result<Item> {
    use Function::*;
    match f {
        Value => {
            let key = args.pop().expect("value arity");
            let base = args.pop().expect("value arity");
            Ok(value_step(&base, &key))
        }
        KeysOrMembers => {
            let base = args.pop().expect("k-o-m arity");
            Ok(keys_or_members(&base))
        }
        // Coercion scaffolding: identity on our data model (see the path
        // rules — removing these is a pure win, never a semantic change).
        Promote | Data | TreatItem | Iterate => Ok(args.pop().expect("unary arity")),
        Eq | Ne | Ge | Le | Gt | Lt => {
            let rhs = args.pop().expect("cmp arity");
            let lhs = args.pop().expect("cmp arity");
            Ok(Item::Boolean(compare(f, &lhs, &rhs)))
        }
        And => Ok(Item::Boolean(args.iter().all(ebv))),
        Or => Ok(Item::Boolean(args.iter().any(ebv))),
        Not => Ok(Item::Boolean(!ebv(&args.pop().expect("not arity")))),
        Add | Sub | Mul | Div | IDiv => {
            let rhs = args.pop().expect("arith arity");
            let lhs = args.pop().expect("arith arity");
            arith(f, &lhs, &rhs)
        }
        DateTime => {
            let arg = args.pop().expect("dateTime arity");
            match singleton(&arg) {
                Some(Item::String(s)) => jdm::DateTime::parse(s)
                    .map(Item::DateTime)
                    .map_err(|e| EngineError::Compile(e.to_string())),
                Some(Item::DateTime(d)) => Ok(Item::DateTime(*d)),
                Some(other) => Err(EngineError::Compile(format!(
                    "dateTime() expects a string, got {other}"
                ))),
                None => Ok(Item::empty()),
            }
        }
        YearFromDateTime | MonthFromDateTime | DayFromDateTime => {
            let arg = args.pop().expect("accessor arity");
            match singleton(&arg) {
                Some(Item::DateTime(d)) => Ok(Item::int(date_part(f, *d))),
                Some(other) => Err(EngineError::Compile(format!(
                    "dateTime accessor expects a dateTime, got {other}"
                ))),
                None => Ok(Item::empty()),
            }
        }
        Count => {
            let arg = args.pop().expect("count arity");
            Ok(Item::int(arg.sequence_len() as i64))
        }
        Sum => {
            let arg = args.pop().expect("sum arity");
            let mut total = Number::Int(0);
            for it in arg.iter_sequence() {
                let n = it
                    .as_number()
                    .ok_or_else(|| EngineError::Compile(format!("sum() over non-number {it}")))?;
                total = total.add(n);
            }
            Ok(Item::Number(total))
        }
        Avg => {
            let arg = args.pop().expect("avg arity");
            let mut total = Number::Int(0);
            let mut n = 0i64;
            for it in arg.iter_sequence() {
                let v = it
                    .as_number()
                    .ok_or_else(|| EngineError::Compile(format!("avg() over non-number {it}")))?;
                total = total.add(v);
                n += 1;
            }
            if n == 0 {
                Ok(Item::empty())
            } else {
                Ok(Item::Number(total.div(Number::Int(n))))
            }
        }
        Min | Max => {
            let arg = args.pop().expect("min/max arity");
            let mut best: Option<Item> = None;
            for it in arg.iter_sequence() {
                let better = match &best {
                    None => true,
                    Some(b) => {
                        let ord = it.total_cmp(b);
                        (f == Min && ord == Ordering::Less)
                            || (f == Max && ord == Ordering::Greater)
                    }
                };
                if better {
                    best = Some(it.clone());
                }
            }
            Ok(best.unwrap_or_else(Item::empty))
        }
        Collection | JsonDoc => Err(EngineError::Compile(
            "collection()/json-doc() must be compiled to a scan, not evaluated".into(),
        )),
    }
}

/// JSONiq `value` step, mapping over sequences.
pub fn value_step(base: &Item, key: &Item) -> Item {
    match base {
        Item::Sequence(items) => Item::seq(
            items
                .iter()
                .map(|it| value_step(it, key))
                .filter(|v| !v.is_empty_sequence()),
        ),
        Item::Object(_) => match key {
            Item::String(k) => base.get_key(k).cloned().unwrap_or_else(Item::empty),
            _ => Item::empty(),
        },
        Item::Array(_) => match key.as_number().and_then(Number::as_i64) {
            Some(i) => base.get_position(i).cloned().unwrap_or_else(Item::empty),
            None => Item::empty(),
        },
        _ => Item::empty(),
    }
}

/// JSONiq `keys-or-members`, mapping over sequences.
pub fn keys_or_members(base: &Item) -> Item {
    match base {
        Item::Sequence(items) => Item::seq(items.iter().map(keys_or_members)),
        other => Item::Sequence(other.keys_or_members().collect()),
    }
}

/// Effective boolean value (the subset we need: booleans, emptiness).
fn ebv(item: &Item) -> bool {
    match item {
        Item::Boolean(b) => *b,
        Item::Sequence(v) => v.first().map(ebv).unwrap_or(false),
        Item::Null => false,
        _ => true,
    }
}

/// Unwrap a singleton sequence; `None` for the empty sequence.
fn singleton(item: &Item) -> Option<&Item> {
    match item {
        Item::Sequence(v) => match v.as_slice() {
            [one] => singleton(one),
            _ => None,
        },
        other => Some(other),
    }
}

/// Value comparison: atomics compare by type; empty sequences never
/// match; proper sequences compare existentially (any pair).
fn compare(f: Function, lhs: &Item, rhs: &Item) -> bool {
    if let (Item::Sequence(ls), _) = (lhs, rhs) {
        return ls.iter().any(|l| compare(f, l, rhs));
    }
    if let (_, Item::Sequence(rs)) = (lhs, rhs) {
        return rs.iter().any(|r| compare(f, lhs, r));
    }
    let ord = match (lhs, rhs) {
        (Item::Number(a), Item::Number(b)) => a.num_cmp(*b),
        (Item::String(a), Item::String(b)) => a.cmp(b),
        (Item::Boolean(a), Item::Boolean(b)) => a.cmp(b),
        (Item::DateTime(a), Item::DateTime(b)) => a.cmp(b),
        (Item::Null, Item::Null) => Ordering::Equal,
        // JSONiq compares strings to numbers etc. as an error; a filter
        // context treats that as non-match.
        _ => return f == Function::Ne,
    };
    match f {
        Function::Eq => ord == Ordering::Equal,
        Function::Ne => ord != Ordering::Equal,
        Function::Lt => ord == Ordering::Less,
        Function::Le => ord != Ordering::Greater,
        Function::Gt => ord == Ordering::Greater,
        Function::Ge => ord != Ordering::Less,
        _ => unreachable!("not a comparison"),
    }
}

fn arith(f: Function, lhs: &Item, rhs: &Item) -> Result<Item> {
    let (Some(l), Some(r)) = (singleton(lhs), singleton(rhs)) else {
        return Ok(Item::empty());
    };
    let (Some(a), Some(b)) = (l.as_number(), r.as_number()) else {
        return Err(EngineError::Compile(format!(
            "arithmetic on non-numbers: {l} and {r}"
        )));
    };
    let out = match f {
        Function::Add => a.add(b),
        Function::Sub => a.sub(b),
        Function::Mul => a.mul(b),
        Function::Div => a.div(b),
        Function::IDiv => a
            .idiv(b)
            .ok_or_else(|| EngineError::Compile("idiv by zero".into()))?,
        _ => unreachable!("not arithmetic"),
    };
    Ok(Item::Number(out))
}

fn date_part(f: Function, d: DateTime) -> i64 {
    match f {
        Function::YearFromDateTime => d.year as i64,
        Function::MonthFromDateTime => d.month as i64,
        Function::DayFromDateTime => d.day as i64,
        _ => unreachable!("not a date accessor"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jdm::parse::parse_item;

    fn obj(src: &str) -> Item {
        parse_item(src.as_bytes()).unwrap()
    }

    #[test]
    fn value_step_on_objects_arrays_sequences() {
        let o = obj(r#"{"a": 1, "b": [10, 20]}"#);
        assert_eq!(value_step(&o, &Item::str("a")), Item::int(1));
        assert!(value_step(&o, &Item::str("zz")).is_empty_sequence());
        let arr = obj("[10, 20, 30]");
        assert_eq!(value_step(&arr, &Item::int(1)), Item::int(10)); // 1-based
        assert!(value_step(&arr, &Item::int(0)).is_empty_sequence());
        // Sequence mapping: ({"k":1}, {"k":2})("k") = (1, 2)
        let seq = Item::seq([obj(r#"{"k":1}"#), obj(r#"{"k":2}"#), obj(r#"{"x":9}"#)]);
        assert_eq!(
            value_step(&seq, &Item::str("k")),
            Item::seq([Item::int(1), Item::int(2)])
        );
    }

    #[test]
    fn kom_maps_and_flattens() {
        let seq = Item::seq([obj("[1,2]"), obj("[3]")]);
        assert_eq!(
            keys_or_members(&seq),
            Item::seq([Item::int(1), Item::int(2), Item::int(3)])
        );
    }

    #[test]
    fn comparisons_handle_empty_and_mixed() {
        let t = |f, a: &Item, b: &Item| compare(f, a, b);
        assert!(t(Function::Eq, &Item::str("x"), &Item::str("x")));
        assert!(!t(Function::Eq, &Item::empty(), &Item::str("x")));
        assert!(t(Function::Ne, &Item::str("x"), &Item::int(1))); // mixed types
        assert!(!t(Function::Eq, &Item::str("x"), &Item::int(1)));
        assert!(t(Function::Ge, &Item::int(2003), &Item::int(2003)));
        assert!(t(
            Function::Lt,
            &Item::DateTime(DateTime::parse("20131225T00:00").unwrap()),
            &Item::DateTime(DateTime::parse("20140101T00:00").unwrap())
        ));
        // Existential over sequences.
        let seq = Item::seq([Item::int(1), Item::int(5)]);
        assert!(t(Function::Eq, &seq, &Item::int(5)));
        assert!(!t(Function::Eq, &seq, &Item::int(9)));
    }

    #[test]
    fn scalar_aggregates() {
        let seq = Item::seq([Item::int(2), Item::int(4), Item::int(6)]);
        assert_eq!(
            apply(Function::Count, vec![seq.clone()]).unwrap(),
            Item::int(3)
        );
        assert_eq!(
            apply(Function::Sum, vec![seq.clone()]).unwrap(),
            Item::int(12)
        );
        assert_eq!(
            apply(Function::Avg, vec![seq.clone()]).unwrap(),
            Item::double(4.0)
        );
        assert_eq!(
            apply(Function::Min, vec![seq.clone()]).unwrap(),
            Item::int(2)
        );
        assert_eq!(apply(Function::Max, vec![seq]).unwrap(), Item::int(6));
        assert_eq!(
            apply(Function::Count, vec![Item::empty()]).unwrap(),
            Item::int(0)
        );
        assert!(apply(Function::Avg, vec![Item::empty()])
            .unwrap()
            .is_empty_sequence());
        // count of a non-sequence item is 1 (singleton).
        assert_eq!(
            apply(Function::Count, vec![Item::int(7)]).unwrap(),
            Item::int(1)
        );
    }

    #[test]
    fn datetime_pipeline() {
        let s = Item::str("20131225T06:30");
        let dt = apply(Function::DateTime, vec![s]).unwrap();
        assert_eq!(
            apply(Function::YearFromDateTime, vec![dt.clone()]).unwrap(),
            Item::int(2013)
        );
        assert_eq!(
            apply(Function::MonthFromDateTime, vec![dt.clone()]).unwrap(),
            Item::int(12)
        );
        assert_eq!(
            apply(Function::DayFromDateTime, vec![dt]).unwrap(),
            Item::int(25)
        );
        // Empty propagates.
        assert!(apply(Function::DateTime, vec![Item::empty()])
            .unwrap()
            .is_empty_sequence());
    }

    #[test]
    fn arithmetic_and_div() {
        assert_eq!(
            apply(Function::Sub, vec![Item::int(30), Item::int(4)]).unwrap(),
            Item::int(26)
        );
        assert_eq!(
            apply(Function::Div, vec![Item::int(5), Item::int(2)]).unwrap(),
            Item::double(2.5)
        );
        assert!(apply(Function::Add, vec![Item::empty(), Item::int(1)])
            .unwrap()
            .is_empty_sequence());
        assert!(apply(Function::Add, vec![Item::str("x"), Item::int(1)]).is_err());
    }

    #[test]
    fn field_eval_reads_tuples() {
        use dataflow::frame::frames_from_rows;
        use jdm::binary::to_bytes;
        let rows = vec![vec![to_bytes(&obj(r#"{"k": 42}"#))]];
        let frames = frames_from_rows(&rows, 1024);
        let t = frames[0].tuple(0);
        let e = RtExpr::Call(
            Function::Value,
            vec![RtExpr::Field(0), RtExpr::Const(Item::str("k"))],
        );
        assert_eq!(e.eval(&t).unwrap(), Item::int(42));
    }
}
