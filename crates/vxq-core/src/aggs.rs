//! Incremental aggregators and their two-step (partial/merge) forms.
//!
//! Each aggregator evaluates an argument expression per input tuple and
//! folds the resulting items into its state — the post-group-by-rules
//! execution model ("incrementally calculate ... as each item of the
//! sequence is fetched", §4.3). The `Merge*` forms implement the second
//! step of Algebricks' two-step aggregation: partials computed per
//! partition, merged at the destination partition.

use crate::error::EngineError;
use crate::rtexpr::RtExpr;
use algebra::expr::AggFunc;
use dataflow::ops::eval::{Aggregator, AggregatorFactory};
use dataflow::{DataflowError, TupleRef};
use jdm::binary::write_item;
use jdm::{Item, Number};
use std::cmp::Ordering;

/// Factory producing one aggregator per group / partition.
pub struct AggFactory {
    pub func: AggFunc,
    pub arg: RtExpr,
}

impl AggregatorFactory for AggFactory {
    fn create(&self) -> Box<dyn Aggregator> {
        match self.func {
            AggFunc::Count => Box::new(CountAgg {
                arg: self.arg.clone(),
                n: 0,
            }),
            AggFunc::MergeCount | AggFunc::MergeSum => Box::new(SumAgg {
                arg: self.arg.clone(),
                total: Number::Int(0),
                any: false,
            }),
            AggFunc::Sum => Box::new(SumAgg {
                arg: self.arg.clone(),
                total: Number::Int(0),
                any: false,
            }),
            AggFunc::Avg => Box::new(AvgAgg {
                arg: self.arg.clone(),
                total: Number::Int(0),
                n: 0,
                partial: false,
            }),
            AggFunc::PartialAvg => Box::new(AvgAgg {
                arg: self.arg.clone(),
                total: Number::Int(0),
                n: 0,
                partial: true,
            }),
            AggFunc::MergeAvg => Box::new(MergeAvgAgg {
                arg: self.arg.clone(),
                total: Number::Int(0),
                n: 0,
            }),
            AggFunc::Min | AggFunc::MergeMin => Box::new(MinMaxAgg {
                arg: self.arg.clone(),
                best: None,
                want_min: true,
            }),
            AggFunc::Max | AggFunc::MergeMax => Box::new(MinMaxAgg {
                arg: self.arg.clone(),
                best: None,
                want_min: false,
            }),
            AggFunc::Sequence => Box::new(SeqAgg {
                arg: self.arg.clone(),
                items: Vec::new(),
            }),
        }
    }
}

fn eval_arg(arg: &RtExpr, t: &TupleRef<'_>) -> Result<Item, DataflowError> {
    arg.eval(t)
        .map_err(|e: EngineError| DataflowError::Eval(e.to_string()))
}

/// `count`: counts items (a per-tuple empty sequence contributes 0).
struct CountAgg {
    arg: RtExpr,
    n: i64,
}

impl Aggregator for CountAgg {
    fn step(&mut self, t: &TupleRef<'_>) -> Result<(), DataflowError> {
        let v = eval_arg(&self.arg, t)?;
        self.n += v.sequence_len() as i64;
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<u8>) -> Result<(), DataflowError> {
        write_item(&Item::int(self.n), out);
        Ok(())
    }
}

/// `sum` — also serves as `merge-count` / `merge-sum` (merging partial
/// counts *is* summing them).
struct SumAgg {
    arg: RtExpr,
    total: Number,
    any: bool,
}

impl Aggregator for SumAgg {
    fn step(&mut self, t: &TupleRef<'_>) -> Result<(), DataflowError> {
        let v = eval_arg(&self.arg, t)?;
        for it in v.iter_sequence() {
            let n = it.as_number().ok_or_else(|| {
                DataflowError::Eval(format!("sum aggregate over non-number {it}"))
            })?;
            self.total = self.total.add(n);
            self.any = true;
        }
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<u8>) -> Result<(), DataflowError> {
        write_item(&Item::Number(self.total), out);
        Ok(())
    }
}

/// `avg`, or its two-step local form emitting an `{"sum","count"}`
/// partial object.
struct AvgAgg {
    arg: RtExpr,
    total: Number,
    n: i64,
    partial: bool,
}

impl Aggregator for AvgAgg {
    fn step(&mut self, t: &TupleRef<'_>) -> Result<(), DataflowError> {
        let v = eval_arg(&self.arg, t)?;
        for it in v.iter_sequence() {
            let x = it.as_number().ok_or_else(|| {
                DataflowError::Eval(format!("avg aggregate over non-number {it}"))
            })?;
            self.total = self.total.add(x);
            self.n += 1;
        }
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<u8>) -> Result<(), DataflowError> {
        let item = if self.partial {
            Item::Object(vec![
                ("sum".into(), Item::Number(self.total)),
                ("count".into(), Item::int(self.n)),
            ])
        } else if self.n == 0 {
            Item::empty()
        } else {
            Item::Number(self.total.div(Number::Int(self.n)))
        };
        write_item(&item, out);
        Ok(())
    }
}

/// Merge `{"sum","count"}` partials into the final average.
struct MergeAvgAgg {
    arg: RtExpr,
    total: Number,
    n: i64,
}

impl Aggregator for MergeAvgAgg {
    fn step(&mut self, t: &TupleRef<'_>) -> Result<(), DataflowError> {
        let v = eval_arg(&self.arg, t)?;
        for it in v.iter_sequence() {
            let sum = it
                .get_key("sum")
                .and_then(Item::as_number)
                .ok_or_else(|| DataflowError::Eval("avg partial missing sum".into()))?;
            let count = it
                .get_key("count")
                .and_then(Item::as_number)
                .and_then(Number::as_i64)
                .ok_or_else(|| DataflowError::Eval("avg partial missing count".into()))?;
            self.total = self.total.add(sum);
            self.n += count;
        }
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<u8>) -> Result<(), DataflowError> {
        let item = if self.n == 0 {
            Item::empty()
        } else {
            Item::Number(self.total.div(Number::Int(self.n)))
        };
        write_item(&item, out);
        Ok(())
    }
}

/// `min` / `max` (self-merging: the merge form is the same fold).
struct MinMaxAgg {
    arg: RtExpr,
    best: Option<Item>,
    want_min: bool,
}

impl Aggregator for MinMaxAgg {
    fn step(&mut self, t: &TupleRef<'_>) -> Result<(), DataflowError> {
        let v = eval_arg(&self.arg, t)?;
        for it in v.iter_sequence() {
            let better = match &self.best {
                None => true,
                Some(b) => {
                    let ord = it.total_cmp(b);
                    (self.want_min && ord == Ordering::Less)
                        || (!self.want_min && ord == Ordering::Greater)
                }
            };
            if better {
                self.best = Some(it.clone());
            }
        }
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<u8>) -> Result<(), DataflowError> {
        write_item(
            self.best.as_ref().unwrap_or(&Item::Sequence(Vec::new())),
            out,
        );
        Ok(())
    }
}

/// The pre-rewrite `AGGREGATE sequence`: buffers every item. Reports its
/// state size so the memory tracker sees what the group-by rules remove.
struct SeqAgg {
    arg: RtExpr,
    items: Vec<Item>,
}

impl Aggregator for SeqAgg {
    fn step(&mut self, t: &TupleRef<'_>) -> Result<(), DataflowError> {
        let v = eval_arg(&self.arg, t)?;
        for it in v.iter_sequence() {
            self.items.push(it.clone());
        }
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<u8>) -> Result<(), DataflowError> {
        write_item(&Item::Sequence(std::mem::take(&mut self.items)), out);
        Ok(())
    }

    fn state_size(&self) -> usize {
        self.items.iter().map(Item::heap_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::frame::frames_from_rows;
    use jdm::binary::{to_bytes, ItemRef};

    fn run(func: AggFunc, arg: RtExpr, rows: Vec<Vec<Item>>) -> Item {
        let factory = AggFactory { func, arg };
        let mut agg = factory.create();
        let encoded: Vec<Vec<Vec<u8>>> = rows
            .iter()
            .map(|r| r.iter().map(to_bytes).collect())
            .collect();
        for f in frames_from_rows(&encoded, 4096) {
            for t in f.tuples() {
                agg.step(&t).unwrap();
            }
        }
        let mut out = Vec::new();
        agg.finish(&mut out).unwrap();
        ItemRef::new(&out).unwrap().to_item().unwrap()
    }

    fn ints(vals: &[i64]) -> Vec<Vec<Item>> {
        vals.iter().map(|&v| vec![Item::int(v)]).collect()
    }

    #[test]
    fn count_counts_items_not_tuples() {
        assert_eq!(
            run(AggFunc::Count, RtExpr::Field(0), ints(&[1, 2, 3])),
            Item::int(3)
        );
        // Empty sequences contribute nothing.
        let rows = vec![vec![Item::empty()], vec![Item::int(1)], vec![Item::empty()]];
        assert_eq!(run(AggFunc::Count, RtExpr::Field(0), rows), Item::int(1));
        // A sequence of 2 contributes 2.
        let rows = vec![vec![Item::seq([Item::int(1), Item::int(2)])]];
        assert_eq!(run(AggFunc::Count, RtExpr::Field(0), rows), Item::int(2));
    }

    #[test]
    fn sum_avg_min_max() {
        assert_eq!(
            run(AggFunc::Sum, RtExpr::Field(0), ints(&[5, 7, -2])),
            Item::int(10)
        );
        assert_eq!(
            run(AggFunc::Avg, RtExpr::Field(0), ints(&[2, 4])),
            Item::double(3.0)
        );
        assert_eq!(
            run(AggFunc::Min, RtExpr::Field(0), ints(&[5, -1, 3])),
            Item::int(-1)
        );
        assert_eq!(
            run(AggFunc::Max, RtExpr::Field(0), ints(&[5, -1, 3])),
            Item::int(5)
        );
        assert!(run(AggFunc::Avg, RtExpr::Field(0), vec![]).is_empty_sequence());
    }

    #[test]
    fn two_step_count_equals_single_step() {
        // Partition the input, count locally, merge globally.
        let all: Vec<i64> = (0..100).collect();
        let single = run(AggFunc::Count, RtExpr::Field(0), ints(&all));

        let mut partials = Vec::new();
        for chunk in all.chunks(33) {
            partials.push(vec![run(AggFunc::Count, RtExpr::Field(0), ints(chunk))]);
        }
        let merged = run(AggFunc::MergeCount, RtExpr::Field(0), partials);
        assert_eq!(single, merged);
    }

    #[test]
    fn two_step_avg_equals_single_step() {
        let all: Vec<i64> = (1..=10).collect();
        let single = run(AggFunc::Avg, RtExpr::Field(0), ints(&all));
        let mut partials = Vec::new();
        for chunk in all.chunks(3) {
            partials.push(vec![run(
                AggFunc::PartialAvg,
                RtExpr::Field(0),
                ints(chunk),
            )]);
        }
        let merged = run(AggFunc::MergeAvg, RtExpr::Field(0), partials);
        assert_eq!(single, merged);
    }

    #[test]
    fn sequence_agg_buffers_everything() {
        let got = run(AggFunc::Sequence, RtExpr::Field(0), ints(&[1, 2, 3]));
        assert_eq!(got, Item::seq([Item::int(1), Item::int(2), Item::int(3)]));
    }
}
