//! The public engine API.

use crate::compile::{compile_plan, CompileOptions};
use crate::error::Result;
use crate::pool::ScanBufferPool;
use crate::scan::ScanOptions;
use algebra::rules::{RuleConfig, RuleFiring, RuleSet};
use algebra::LogicalPlan;
use dataflow::trace::ArgValue;
use dataflow::{
    CancelToken, Cluster, ClusterSpec, JobStats, MemTracker, Rows, RunOptions, TraceBuffer,
};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Simulated cluster shape.
    pub cluster: ClusterSpec,
    /// Which rewrite-rule families are active (the experiment knob).
    pub rules: RuleConfig,
    /// Directory collection paths resolve under.
    pub data_root: PathBuf,
    /// Optional memory budget in bytes for operator working state —
    /// sort buffers, join tables, group-by state. Stateful operators
    /// spill to run files rather than exceed it. Scanned file bytes kept
    /// resident for the job are reported in `peak_memory` but not charged
    /// against this budget. 0 = unlimited; falls back to the
    /// `VXQ_MEM_BUDGET` environment variable, which accepts `k`/`m`/`g`
    /// suffixes.
    pub memory_budget: usize,
    /// DATASCAN split behaviour (intra-file parallelism).
    pub scan: ScanOptions,
    /// Spill tuning: run-file directory, merge fan-in, partition fan-out,
    /// recursion cap (see [`dataflow::SpillConfig`]).
    pub spill: dataflow::SpillConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cluster: ClusterSpec::default(),
            rules: RuleConfig::all(),
            data_root: PathBuf::from("."),
            memory_budget: 0,
            scan: ScanOptions::default(),
            spill: dataflow::SpillConfig::default(),
        }
    }
}

/// Parse a memory budget like `1048576`, `256k`, `64M` or `2g` into bytes.
pub fn parse_memory_budget(s: &str) -> Option<usize> {
    let s = s.trim();
    let (num, mult) = match s.as_bytes().last()?.to_ascii_lowercase() {
        b'k' => (&s[..s.len() - 1], 1024usize),
        b'm' => (&s[..s.len() - 1], 1024 * 1024),
        b'g' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    num.trim().parse::<usize>().ok()?.checked_mul(mult)
}

/// The configured budget, or the `VXQ_MEM_BUDGET` environment fallback
/// when the config leaves it unset.
fn resolve_budget(config: &EngineConfig) -> usize {
    if config.memory_budget > 0 {
        return config.memory_budget;
    }
    std::env::var("VXQ_MEM_BUDGET")
        .ok()
        .and_then(|v| parse_memory_budget(&v))
        .unwrap_or(0)
}

fn build_cluster(config: &EngineConfig) -> Cluster {
    let budget = resolve_budget(config);
    let mem = if budget > 0 {
        dataflow::MemTracker::with_budget(budget)
    } else {
        dataflow::MemTracker::new()
    };
    Cluster::with_settings(config.cluster.clone(), mem, config.spill.clone())
}

/// A query result: decoded rows plus runtime statistics and provenance.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Result tuples (one `Vec<Item>` per row; the paper's queries return
    /// single-field rows).
    pub rows: Rows,
    /// Runtime statistics (elapsed, peak memory, network traffic, ...).
    pub stats: JobStats,
    /// The optimized logical plan, in EXPLAIN form.
    pub plan: String,
    /// The rewrite rules that fired, in application order.
    pub applied_rules: Vec<&'static str>,
    /// One record per rule application, with duration and plan-size delta.
    pub rule_firings: Vec<RuleFiring>,
}

/// A query carried through parse → translate → optimize, ready to run.
/// Reusable and shareable: the serving layer's plan cache stores these and
/// skips the whole front half of the pipeline on a hit. Compilation stays
/// per-execution — compiled jobs capture per-job scan caches, so they must
/// not outlive one run.
#[derive(Clone)]
pub struct PreparedQuery {
    /// The optimized logical plan.
    pub plan: Arc<LogicalPlan>,
    /// The plan in textual EXPLAIN form (precomputed once).
    pub explain: String,
    /// One record per rule application during optimization.
    pub rule_firings: Vec<RuleFiring>,
}

/// Per-execution overrides for [`Engine::execute_prepared`].
#[derive(Default)]
pub struct ExecOptions {
    /// Job-private memory tracker (budget included). `None` charges the
    /// engine's shared tracker, which is reset per run — only correct for
    /// one query at a time; concurrent callers must supply their own.
    pub mem: Option<Arc<MemTracker>>,
    /// Cancellation token checked at frame boundaries during the run.
    pub cancel: Option<Arc<CancelToken>>,
}

/// The JSONiq query engine: parse → translate → optimize → compile → run.
pub struct Engine {
    config: EngineConfig,
    cluster: Cluster,
    rules: RuleSet,
    /// Scan buffers and index tapes, reused across every query this
    /// engine runs.
    pool: Arc<ScanBufferPool>,
}

impl Engine {
    /// Build an engine. The cluster's worker structure is created once
    /// and reused across queries.
    pub fn new(config: EngineConfig) -> Self {
        let cluster = build_cluster(&config);
        let rules = RuleSet::for_config(config.rules);
        Engine {
            config,
            cluster,
            rules,
            pool: Arc::new(ScanBufferPool::new()),
        }
    }

    /// Convenience: default single-node engine over a data directory.
    pub fn single_node(data_root: impl Into<PathBuf>) -> Self {
        Engine::new(EngineConfig {
            data_root: data_root.into(),
            ..EngineConfig::default()
        })
    }

    /// Build an engine with a hand-picked rule set instead of the standard
    /// families (used by the AsterixDB baseline, which shares the
    /// infrastructure but lacks the JSONiq pipelining rules).
    pub fn with_rule_set(config: EngineConfig, rules: RuleSet) -> Self {
        let cluster = build_cluster(&config);
        Engine {
            config,
            cluster,
            rules,
            pool: Arc::new(ScanBufferPool::new()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The cluster's memory tracker (peak materialized bytes, budget).
    pub fn memory(&self) -> &Arc<dataflow::MemTracker> {
        self.cluster.memory()
    }

    /// Parse, translate and optimize; returns the plan without running it.
    pub fn optimize(&self, query: &str) -> Result<(LogicalPlan, Vec<&'static str>)> {
        let (plan, firings) = self.optimize_traced(query, None)?;
        Ok((plan, firings.into_iter().map(|f| f.rule).collect()))
    }

    /// Parse, translate and optimize, recording a span per phase and per
    /// rule firing into `trace` when given.
    pub fn optimize_traced(
        &self,
        query: &str,
        trace: Option<&TraceBuffer>,
    ) -> Result<(LogicalPlan, Vec<RuleFiring>)> {
        let expr = {
            let _span = trace.map(|t| {
                let mut s = t.span("parse", "lifecycle");
                s.arg("chars", query.len());
                s
            });
            jsoniq::parser::parse(query)?
        };
        let mut plan = {
            let _span = trace.map(|t| t.span("translate", "lifecycle"));
            jsoniq::translate::translate(&expr)?
        };
        let opt_start = trace.map(|t| t.now_us());
        let firings = self.rules.optimize_traced(&mut plan);
        if let (Some(t), Some(start)) = (trace, opt_start) {
            // One span per rule firing, laid out sequentially from the
            // optimize start (the optimizer itself is sequential, so the
            // recorded durations tile the phase).
            let mut cursor = start;
            for f in &firings {
                let dur = f.duration.as_micros() as u64;
                t.push(dataflow::TraceEvent {
                    name: f.rule.to_string(),
                    cat: "rule",
                    ts_us: cursor,
                    dur_us: dur,
                    pid: 0,
                    tid: 0,
                    args: vec![
                        ("round", ArgValue::Int(f.round as i64)),
                        ("nodes_before", ArgValue::Int(f.nodes_before as i64)),
                        ("nodes_after", ArgValue::Int(f.nodes_after as i64)),
                    ],
                });
                cursor += dur;
            }
            t.span_from(
                "optimize",
                "lifecycle",
                start,
                0,
                0,
                vec![("rule_firings", ArgValue::Int(firings.len() as i64))],
            );
        }
        Ok((plan, firings))
    }

    /// The optimized plan in textual EXPLAIN form.
    pub fn explain(&self, query: &str) -> Result<String> {
        Ok(self.optimize(query)?.0.explain())
    }

    /// Execute a query end to end.
    ///
    /// Note on statistics: the cluster-wide memory tracker is reset at the
    /// start of each run, so `stats.peak_memory` describes this query
    /// alone. For concurrent execution on one `Engine`, go through
    /// [`crate::service::QueryService`] (or call
    /// [`Engine::execute_prepared`] with a per-job tracker): each job then
    /// gets its own accounting and fair budget share.
    pub fn execute(&self, query: &str) -> Result<QueryResult> {
        self.execute_with_trace(query, None)
    }

    /// Parse, translate and optimize into a reusable [`PreparedQuery`]
    /// without running it, recording lifecycle spans when `trace` is
    /// given.
    pub fn prepare(&self, query: &str, trace: Option<&TraceBuffer>) -> Result<PreparedQuery> {
        let (plan, rule_firings) = self.optimize_traced(query, trace)?;
        Ok(PreparedQuery {
            explain: plan.explain(),
            plan: Arc::new(plan),
            rule_firings,
        })
    }

    /// Compile and run a prepared query, skipping parse → translate →
    /// optimize entirely. `opts` carries the serving layer's per-job
    /// hooks: a private memory tracker (fair-share budget) and a
    /// cancellation token.
    pub fn execute_prepared(
        &self,
        prepared: &PreparedQuery,
        trace: Option<&Arc<TraceBuffer>>,
        opts: ExecOptions,
    ) -> Result<QueryResult> {
        let job = {
            let _span = trace.map(|t| t.span("compile", "lifecycle"));
            compile_plan(
                &prepared.plan,
                &CompileOptions {
                    data_root: self.config.data_root.clone(),
                    nodes: self.config.cluster.nodes,
                    two_step_aggregation: self.config.rules.two_step_aggregation,
                    scan: self.config.scan.clone(),
                    pool: self.pool.clone(),
                },
            )?
        };
        let run_opts = RunOptions {
            mem: opts.mem,
            cancel: opts.cancel.unwrap_or_default(),
        };
        let (rows, stats) = {
            let _span = trace.map(|t| {
                let mut s = t.span("execute", "lifecycle");
                s.arg("stages", job.stages.len());
                s
            });
            self.cluster.run_with(&job, trace, run_opts)?
        };
        Ok(QueryResult {
            rows,
            stats,
            plan: prepared.explain.clone(),
            applied_rules: prepared.rule_firings.iter().map(|f| f.rule).collect(),
            rule_firings: prepared.rule_firings.clone(),
        })
    }

    /// Execute a query while recording the full lifecycle — parse,
    /// translate, each rule firing, compile, and every stage task — into a
    /// fresh trace buffer. The buffer exports as JSON lines or a Chrome
    /// trace file (see [`dataflow::trace`]).
    pub fn execute_profiled(&self, query: &str) -> Result<(QueryResult, Arc<TraceBuffer>)> {
        let trace = Arc::new(TraceBuffer::new());
        let result = self.execute_with_trace(query, Some(&trace))?;
        Ok((result, trace))
    }

    fn execute_with_trace(
        &self,
        query: &str,
        trace: Option<&Arc<TraceBuffer>>,
    ) -> Result<QueryResult> {
        let prepared = self.prepare(query, trace.map(Arc::as_ref))?;
        self.execute_prepared(&prepared, trace, ExecOptions::default())
    }

    /// `EXPLAIN ANALYZE`: execute the query and render the optimized plan
    /// followed by the measured per-operator metrics of every stage.
    pub fn explain_analyze(&self, query: &str) -> Result<String> {
        let (result, _trace) = self.execute_profiled(query)?;
        Ok(render_analysis(&result))
    }
}

/// Render a completed [`QueryResult`] as an EXPLAIN ANALYZE report.
pub fn render_analysis(result: &QueryResult) -> String {
    let mut out = String::new();
    out.push_str("== optimized plan ==\n");
    out.push_str(result.plan.trim_end());
    out.push('\n');
    if !result.rule_firings.is_empty() {
        out.push_str("\n== rule firings ==\n");
        for f in &result.rule_firings {
            let _ = writeln!(
                out,
                "round {:<2} {:<40} {:>7.1}us  nodes {} -> {}",
                f.round,
                f.rule,
                f.duration.as_secs_f64() * 1e6,
                f.nodes_before,
                f.nodes_after
            );
        }
    }
    out.push_str("\n== runtime (per operator, summed over partitions) ==\n");
    let _ = writeln!(
        out,
        "{:<5} {:<4} {:<16} {:>5} {:>12} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "stage",
        "op",
        "name",
        "tasks",
        "tuples_in",
        "tuples_out",
        "frames_in",
        "frames_out",
        "busy_us",
        "stall_us"
    );
    for s in result.stats.profile.summaries() {
        let _ = writeln!(
            out,
            "{:<5} {:<4} {:<16} {:>5} {:>12} {:>12} {:>10} {:>10} {:>12.1} {:>12.1}",
            s.stage,
            s.op_index,
            s.name,
            s.partitions,
            s.tuples_in,
            s.tuples_out,
            s.frames_in,
            s.frames_out,
            s.busy.as_secs_f64() * 1e6,
            s.emit_stall.as_secs_f64() * 1e6
        );
    }
    if !result.stats.profile.splits.is_empty() {
        out.push_str("\n== scan splits ==\n");
        let _ = writeln!(
            out,
            "{:<5} {:<4} {:<40} {:>7} {:>10} {:>10} {:>12} {:>12} {:>10} {:>9} {:>6}",
            "stage",
            "part",
            "file",
            "split",
            "records",
            "tuples",
            "bytes",
            "busy_us",
            "idx_us",
            "idx_gbps",
            "kern"
        );
        for s in &result.stats.profile.splits {
            let file = std::path::Path::new(&s.file)
                .file_name()
                .map(|f| f.to_string_lossy().into_owned())
                .unwrap_or_else(|| s.file.clone());
            // Index-build throughput of this split ("-" when the build
            // happened elsewhere: another split of a shared file, or an
            // index-free source).
            let idx_gbps = if s.index_bytes > 0 && !s.index_elapsed.is_zero() {
                format!(
                    "{:.2}",
                    s.index_bytes as f64 / s.index_elapsed.as_secs_f64() / 1e9
                )
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "{:<5} {:<4} {:<40} {:>3}/{:<3} {:>10} {:>10} {:>12} {:>12.1} {:>10.1} {:>9} {:>6}",
                s.stage,
                s.partition,
                file,
                s.split,
                s.of,
                s.records,
                s.tuples,
                s.bytes,
                s.elapsed.as_secs_f64() * 1e6,
                s.index_elapsed.as_secs_f64() * 1e6,
                idx_gbps,
                s.kernel.unwrap_or("-")
            );
        }
    }
    let st = &result.stats;
    let sp = &st.spill;
    if sp.budget > 0 || sp.spilled() || sp.budget_exceeded {
        out.push_str("\n== spill ==\n");
        let budget = if sp.budget == 0 {
            "unlimited".to_string()
        } else {
            format!("{} B", sp.budget)
        };
        let _ = writeln!(
            out,
            "budget: {budget}\nruns written: {}\nspilled: {} B in {} tuples\nmerge passes: {}\nmax recursion: {}\nbudget exceeded: {}",
            sp.runs_written,
            sp.bytes_spilled,
            sp.tuples_spilled,
            sp.merge_passes,
            sp.max_recursion,
            sp.budget_exceeded
        );
        if !st.profile.spill_ops.is_empty() {
            let _ = writeln!(
                out,
                "{:<5} {:<4} {:<16} {:>12} {:>6} {:>12} {:>10} {:>7} {:>6}",
                "stage", "part", "op", "peak_res", "runs", "bytes", "tuples", "merges", "depth"
            );
            for o in &st.profile.spill_ops {
                let _ = writeln!(
                    out,
                    "{:<5} {:<4} {:<16} {:>12} {:>6} {:>12} {:>10} {:>7} {:>6}",
                    o.stage,
                    o.partition,
                    o.op,
                    o.peak_reserved,
                    o.runs_written,
                    o.bytes_spilled,
                    o.tuples_spilled,
                    o.merge_passes,
                    o.recursion_depth
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "\n== totals ==\nsimulated elapsed: {:?}\ncpu total: {:?}\npeak memory: {} B ({} B resident scan cache)\nnetwork: {} B in {} frames\nresult tuples: {}",
        st.elapsed, st.cpu_total, st.peak_memory, st.peak_cached, st.network_bytes, st.frames_shipped, st.result_tuples
    );
    out
}

#[cfg(test)]
mod tests {
    use super::parse_memory_budget;

    #[test]
    fn parses_plain_byte_counts() {
        assert_eq!(parse_memory_budget("0"), Some(0));
        assert_eq!(parse_memory_budget("1"), Some(1));
        assert_eq!(parse_memory_budget("1048576"), Some(1 << 20));
        assert_eq!(parse_memory_budget("  42  "), Some(42));
    }

    #[test]
    fn suffixes_are_case_insensitive() {
        for (s, expected) in [
            ("256k", 256usize * 1024),
            ("256K", 256 * 1024),
            ("64m", 64 << 20),
            ("64M", 64 << 20),
            ("2g", 2 << 30),
            ("2G", 2 << 30),
            ("0K", 0),
            ("0G", 0),
            (" 8 M ", 8 << 20),
        ] {
            assert_eq!(parse_memory_budget(s), Some(expected), "input {s:?}");
        }
    }

    #[test]
    fn overflow_is_rejected_not_wrapped() {
        // u64::MAX + 1: the numeric parse itself overflows.
        assert_eq!(parse_memory_budget("18446744073709551616"), None);
        // Fits as a number, overflows once the suffix multiplies it.
        assert_eq!(parse_memory_budget("99999999999999999999g"), None);
        assert_eq!(parse_memory_budget("18446744073709551615k"), None);
        // Near-miss sanity: a large-but-valid value still parses (the
        // ISSUE's "999999999g" example fits in 64 bits: ~2^60).
        assert_eq!(parse_memory_budget("999999999g"), Some(999_999_999 << 30));
    }

    #[test]
    fn garbage_is_rejected() {
        for s in [
            "", " ", "k", "g", "lots", "1.5g", "-5", "-5m", "0x10", "12kb", "m8", "8 8m",
        ] {
            assert_eq!(parse_memory_budget(s), None, "input {s:?}");
        }
    }
}
