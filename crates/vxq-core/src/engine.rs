//! The public engine API.

use crate::compile::{compile_plan, CompileOptions};
use crate::error::Result;
use algebra::rules::{RuleConfig, RuleSet};
use algebra::LogicalPlan;
use dataflow::{Cluster, ClusterSpec, JobStats, Rows};
use std::path::PathBuf;
use std::sync::Arc;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Simulated cluster shape.
    pub cluster: ClusterSpec,
    /// Which rewrite-rule families are active (the experiment knob).
    pub rules: RuleConfig,
    /// Directory collection paths resolve under.
    pub data_root: PathBuf,
    /// Optional memory budget in bytes for materialized state (0 = none).
    pub memory_budget: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cluster: ClusterSpec::default(),
            rules: RuleConfig::all(),
            data_root: PathBuf::from("."),
            memory_budget: 0,
        }
    }
}

/// A query result: decoded rows plus runtime statistics and provenance.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Result tuples (one `Vec<Item>` per row; the paper's queries return
    /// single-field rows).
    pub rows: Rows,
    /// Runtime statistics (elapsed, peak memory, network traffic, ...).
    pub stats: JobStats,
    /// The optimized logical plan, in EXPLAIN form.
    pub plan: String,
    /// The rewrite rules that fired, in application order.
    pub applied_rules: Vec<&'static str>,
}

/// The JSONiq query engine: parse → translate → optimize → compile → run.
pub struct Engine {
    config: EngineConfig,
    cluster: Cluster,
    rules: RuleSet,
}

impl Engine {
    /// Build an engine. The cluster's worker structure is created once
    /// and reused across queries.
    pub fn new(config: EngineConfig) -> Self {
        let mem = if config.memory_budget > 0 {
            dataflow::MemTracker::with_budget(config.memory_budget)
        } else {
            dataflow::MemTracker::new()
        };
        let cluster = Cluster::with_memory(config.cluster.clone(), mem);
        let rules = RuleSet::for_config(config.rules);
        Engine {
            config,
            cluster,
            rules,
        }
    }

    /// Convenience: default single-node engine over a data directory.
    pub fn single_node(data_root: impl Into<PathBuf>) -> Self {
        Engine::new(EngineConfig {
            data_root: data_root.into(),
            ..EngineConfig::default()
        })
    }

    /// Build an engine with a hand-picked rule set instead of the standard
    /// families (used by the AsterixDB baseline, which shares the
    /// infrastructure but lacks the JSONiq pipelining rules).
    pub fn with_rule_set(config: EngineConfig, rules: RuleSet) -> Self {
        let mem = if config.memory_budget > 0 {
            dataflow::MemTracker::with_budget(config.memory_budget)
        } else {
            dataflow::MemTracker::new()
        };
        let cluster = Cluster::with_memory(config.cluster.clone(), mem);
        Engine {
            config,
            cluster,
            rules,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The cluster's memory tracker (peak materialized bytes, budget).
    pub fn memory(&self) -> &Arc<dataflow::MemTracker> {
        self.cluster.memory()
    }

    /// Parse, translate and optimize; returns the plan without running it.
    pub fn optimize(&self, query: &str) -> Result<(LogicalPlan, Vec<&'static str>)> {
        let mut plan = jsoniq::compile(query)?;
        let applied = self.rules.optimize(&mut plan);
        Ok((plan, applied))
    }

    /// The optimized plan in textual EXPLAIN form.
    pub fn explain(&self, query: &str) -> Result<String> {
        Ok(self.optimize(query)?.0.explain())
    }

    /// Execute a query end to end.
    ///
    /// Note on statistics: the cluster-wide memory tracker is reset at the
    /// start of each run, so `stats.peak_memory` describes this query
    /// alone. Executing concurrently on one `Engine` interleaves that
    /// accounting (results stay correct); use one engine per thread when
    /// per-query statistics matter.
    pub fn execute(&self, query: &str) -> Result<QueryResult> {
        let (plan, applied_rules) = self.optimize(query)?;
        let job = compile_plan(
            &plan,
            &CompileOptions {
                data_root: self.config.data_root.clone(),
                nodes: self.config.cluster.nodes,
                two_step_aggregation: self.config.rules.two_step_aggregation,
            },
        )?;
        let (rows, stats) = self.cluster.run(&job)?;
        Ok(QueryResult {
            rows,
            stats,
            plan: plan.explain(),
            applied_rules,
        })
    }
}
