//! # vxq-core — the JSONiq query engine (the paper's system)
//!
//! Ties the substrates together the way Apache VXQuery ties Hyracks and
//! Algebricks together (paper Fig. 1):
//!
//! ```text
//!  query string ──jsoniq──▶ naive logical plan ──algebra rules──▶
//!  optimized plan ──[compile]──▶ dataflow JobSpec ──[cluster]──▶ rows
//! ```
//!
//! * [`rtexpr`] — runtime expression evaluation (JSONiq `value`,
//!   `keys-or-members`, comparisons, arithmetic, dateTime functions) over
//!   binary tuples.
//! * [`aggs`] — incremental aggregators (`count`, `sum`, `avg`, `min`,
//!   `max`), their two-step partial/merge forms, and the
//!   sequence-materializing aggregator of the pre-rewrite plans.
//! * [`scan`] — DATASCAN runtimes: the projecting partitioned file scan
//!   (post-pipelining-rules) and the naive whole-collection /
//!   single-document scans (pre-rules).
//! * [`compile`] — physical planning: stage splitting, exchange insertion,
//!   two-step aggregation, join key extraction; logical plan → [`dataflow::JobSpec`].
//! * [`engine`] — the public API: [`Engine`] executes queries on a
//!   [`dataflow::ClusterSpec`] under a [`algebra::rules::RuleConfig`].
//! * [`queries`] — the evaluation queries of the paper (Q0, Q0b, Q1, Q1b,
//!   Q2) and the bookstore examples, as constants.
//!
//! ## Quickstart
//!
//! ```no_run
//! use vxq_core::{Engine, EngineConfig};
//!
//! let engine = Engine::new(EngineConfig {
//!     data_root: "/data".into(),
//!     ..EngineConfig::default()
//! });
//! let result = engine.execute(vxq_core::queries::Q1).unwrap();
//! for row in &result.rows {
//!     println!("{}", row[0]);
//! }
//! println!("took {:?}, peak memory {} bytes", result.stats.elapsed, result.stats.peak_memory);
//! ```

pub mod aggs;
pub mod compile;
pub mod engine;
pub mod error;
pub mod pool;
pub mod queries;
pub mod rtexpr;
pub mod scan;
pub mod service;

pub use engine::{
    parse_memory_budget, render_analysis, Engine, EngineConfig, ExecOptions, PreparedQuery,
    QueryResult,
};
pub use error::{EngineError, Result};
pub use pool::ScanBufferPool;
pub use scan::ScanOptions;
pub use service::{
    LatencySummary, Priority, QueryOptions, QueryService, QueryTicket, ServiceConfig,
    ServiceResponse, ServiceSnapshot,
};
