//! Physical planning: optimized logical plan → [`dataflow::JobSpec`].
//!
//! This is the part of Algebricks the paper calls the "physical plan
//! optimizer": it fuses chains of ASSIGN/SELECT/UNNEST into stages,
//! inserts exchange connectors at GROUP-BY / AGGREGATE / JOIN boundaries,
//! applies **two-step aggregation** when enabled ("each partition can
//! calculate locally the count function on its data; then a central node
//! can compute the final result", §4.3), extracts hash-join keys from the
//! join condition, and prunes dead columns between operators so naive
//! plans don't carry materialized sequences in every tuple (Algebricks
//! does the same).
//!
//! | logical shape | physical realization |
//! |---|---|
//! | `DATASCAN(project)` | partitioned projecting file scan |
//! | `ASSIGN collection` (naive) | single-partition whole-collection scan |
//! | `GROUP-BY + AGGREGATE sequence` | hash exchange + materializing group-by |
//! | `GROUP-BY + incremental agg` | [local group-by +] hash exchange + group-by |
//! | `AGGREGATE` | [local aggregate +] merge-to-one + aggregate |
//! | `JOIN` | hash exchanges on extracted keys + hash join |

use crate::aggs::AggFactory;
use crate::error::{EngineError, Result};
use crate::pool::ScanBufferPool;
use crate::rtexpr::{RtExpr, EXTRA_FIELD};
use crate::scan::{
    resolve_collection, EmptyTupleSourceFactory, JsonDocScanFactory, ProjectedScanFactory,
    ScanOptions, WholeCollectionScanFactory,
};
use algebra::expr::{AggFunc, Function, LogicalExpr};
use algebra::plan::{LogicalOp, LogicalPlan, VarGen, VarId};
use dataflow::job::{
    Connector, JobSpec, Parallelism, PipeFactory, Stage, StageId, StageInput, StageKind,
    TwoInputFactory, TwoInputOp,
};
use dataflow::ops::eval::{ScalarEvaluator, ScanSourceFactory, UnnestEvaluator};
use dataflow::ops::{
    AggregateOp, AssignOp, BoxWriter, HashGroupByOp, HashJoinOp, MaterializingGroupByOp, ProjectOp,
    SelectOp, UnnestOp,
};
use dataflow::{DataflowError, TaskContext, TupleRef};
use jdm::binary::{write_item, ItemRef};
use jdm::Item;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;

/// Compiler inputs beyond the plan itself.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Directory that collection paths resolve under.
    pub data_root: PathBuf,
    /// Node count (resolves per-node collection sub-directories for the
    /// naive whole-collection scan).
    pub nodes: usize,
    /// Enable two-step (local/global) aggregation.
    pub two_step_aggregation: bool,
    /// DATASCAN split behaviour (intra-file parallelism).
    pub scan: ScanOptions,
    /// Shared scan buffer pool (owned by the engine, reused across
    /// queries).
    pub pool: Arc<ScanBufferPool>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            data_root: PathBuf::from("."),
            nodes: 1,
            two_step_aggregation: true,
            scan: ScanOptions::default(),
            pool: Arc::new(ScanBufferPool::new()),
        }
    }
}

/// Canonical identity of a compiled query: the cache key of the serving
/// layer's plan cache. Two queries share an optimized plan exactly when
/// their normalized text, active rule families, and scan behaviour all
/// match — `data_root` and cluster shape are engine-wide, so a cache held
/// per engine need not key on them.
pub fn plan_cache_key(
    query: &str,
    rules: &algebra::rules::RuleConfig,
    scan: &ScanOptions,
) -> String {
    format!("{}\u{1}{rules:?}\u{1}{scan:?}", normalize_query(query))
}

/// Collapse insignificant whitespace so formatting variants of one query
/// hit the same cache entry. Conservative: quoted strings are preserved
/// verbatim, everything outside them has its whitespace runs collapsed to
/// one space.
pub fn normalize_query(query: &str) -> String {
    let mut out = String::with_capacity(query.len());
    let mut in_str = false;
    let mut pending_space = false;
    for c in query.chars() {
        if in_str {
            out.push(c);
            if c == '"' {
                in_str = false;
            }
            continue;
        }
        if c.is_whitespace() {
            pending_space = !out.is_empty();
            continue;
        }
        if pending_space {
            out.push(' ');
            pending_space = false;
        }
        out.push(c);
        if c == '"' {
            in_str = true;
        }
    }
    out
}

/// Compile an optimized logical plan into an executable job.
pub fn compile_plan(plan: &LogicalPlan, opts: &CompileOptions) -> Result<JobSpec> {
    let mut job = JobSpec::new();
    let mut c = Compiler {
        opts,
        gen: VarGen::above(&plan.root),
    };
    let pipeline = c.compile_op(&plan.root, &HashSet::new(), &mut job)?;
    seal(pipeline, &mut job);
    job.validate().map_err(EngineError::Execute)?;
    Ok(job)
}

// ---------------------------------------------------------------- steps

/// One fused operator inside a stage chain.
#[derive(Clone)]
enum StepSpec {
    Assign(RtExpr),
    Select(RtExpr),
    /// `kind` distinguishes `iterate` (sequence fan-out) from
    /// `keys-or-members` over the evaluated argument.
    Unnest {
        kind: UnnestKind,
        arg: RtExpr,
    },
    /// Per-tuple nested aggregation (compiled SUBPLAN).
    SubplanAgg {
        func: AggFunc,
        seq: RtExpr,
        arg: RtExpr,
    },
    /// Stream aggregation (whole input → one tuple).
    Aggregate {
        func: AggFunc,
        arg: RtExpr,
    },
    HashGroupBy {
        key_fields: Vec<usize>,
        func: AggFunc,
        arg: RtExpr,
    },
    MatGroupBy {
        key_fields: Vec<usize>,
        seq_field: usize,
    },
    /// Materializing sort; keys are `(expr, ascending)`.
    Sort {
        keys: Vec<(RtExpr, bool)>,
    },
    Project(Vec<usize>),
}

#[derive(Clone, Copy)]
enum UnnestKind {
    Iterate,
    KeysOrMembers,
}

/// Chain factory: builds the fused operators back-to-front.
struct ChainFactory {
    steps: Vec<StepSpec>,
}

impl PipeFactory for ChainFactory {
    fn create(&self, ctx: &TaskContext, out: BoxWriter) -> dataflow::Result<BoxWriter> {
        build_chain(&self.steps, ctx, out)
    }
}

fn build_chain(
    steps: &[StepSpec],
    ctx: &TaskContext,
    out: BoxWriter,
) -> dataflow::Result<BoxWriter> {
    let mut writer = out;
    for step in steps.iter().rev() {
        // Each fused operator gets its own profiling probe; `out` (the
        // exchange sender / collector) was instrumented by the runtime, so
        // probes sit between every pair of adjacent operators.
        writer = ctx.instrument(match step.clone() {
            StepSpec::Assign(expr) => Box::new(AssignOp::new(
                Box::new(ExprEval(expr)),
                ctx.frame_size,
                writer,
            )),
            StepSpec::Select(cond) => Box::new(SelectOp::new(
                Box::new(ExprEval(cond)),
                ctx.frame_size,
                writer,
            )),
            StepSpec::Unnest { kind, arg } => Box::new(UnnestOp::new(
                Box::new(UnnestEval { kind, arg }),
                ctx.frame_size,
                writer,
            )),
            StepSpec::SubplanAgg { func, seq, arg } => Box::new(AssignOp::new(
                Box::new(SubplanAggEval { func, seq, arg }),
                ctx.frame_size,
                writer,
            )),
            StepSpec::Aggregate { func, arg } => {
                let factory = AggFactory { func, arg };
                use dataflow::ops::eval::AggregatorFactory as _;
                Box::new(AggregateOp::new(factory.create(), ctx.frame_size, writer))
            }
            StepSpec::HashGroupBy {
                key_fields,
                func,
                arg,
            } => Box::new(HashGroupByOp::new(
                key_fields,
                Arc::new(AggFactory { func, arg }),
                ctx.spill_handle("HASH-GROUP-BY"),
                ctx.frame_size,
                writer,
            )),
            StepSpec::MatGroupBy {
                key_fields,
                seq_field,
            } => Box::new(MaterializingGroupByOp::new(
                key_fields,
                seq_field,
                ctx.spill_handle("MAT-GROUP-BY"),
                ctx.frame_size,
                writer,
            )),
            StepSpec::Sort { keys } => {
                let evals: Vec<(Box<dyn ScalarEvaluator>, bool)> = keys
                    .into_iter()
                    .map(|(e, asc)| (Box::new(ExprEval(e)) as Box<dyn ScalarEvaluator>, asc))
                    .collect();
                Box::new(dataflow::ops::SortOp::new(
                    evals,
                    ctx.spill_handle("SORT"),
                    ctx.frame_size,
                    writer,
                ))
            }
            StepSpec::Project(keep) => Box::new(ProjectOp::new(keep, ctx.frame_size, writer)),
        });
    }
    Ok(writer)
}

// ----------------------------------------------------------- evaluators

/// Scalar evaluator over a compiled expression.
struct ExprEval(RtExpr);

impl ScalarEvaluator for ExprEval {
    fn eval(&mut self, tuple: &TupleRef<'_>, out: &mut Vec<u8>) -> dataflow::Result<()> {
        let item = self
            .0
            .eval(tuple)
            .map_err(|e| DataflowError::Eval(e.to_string()))?;
        write_item(&item, out);
        Ok(())
    }
}

/// Unnesting evaluator: `iterate` or `keys-or-members` over an argument.
struct UnnestEval {
    kind: UnnestKind,
    arg: RtExpr,
}

impl UnnestEvaluator for UnnestEval {
    fn eval(
        &mut self,
        tuple: &TupleRef<'_>,
        emit: &mut dyn FnMut(&[u8]) -> dataflow::Result<()>,
    ) -> dataflow::Result<()> {
        let base = self
            .arg
            .eval(tuple)
            .map_err(|e| DataflowError::Eval(e.to_string()))?;
        let mut buf = Vec::new();
        match self.kind {
            UnnestKind::Iterate => {
                for it in base.iter_sequence() {
                    buf.clear();
                    write_item(it, &mut buf);
                    emit(&buf)?;
                }
            }
            UnnestKind::KeysOrMembers => {
                let kom = crate::rtexpr::keys_or_members(&base);
                for it in kom.iter_sequence() {
                    buf.clear();
                    write_item(it, &mut buf);
                    emit(&buf)?;
                }
            }
        }
        Ok(())
    }
}

/// Compiled SUBPLAN: fold an aggregate over the items of a sequence
/// expression, evaluating `arg` once per item (bound to [`EXTRA_FIELD`]).
struct SubplanAggEval {
    func: AggFunc,
    seq: RtExpr,
    arg: RtExpr,
}

impl ScalarEvaluator for SubplanAggEval {
    fn eval(&mut self, tuple: &TupleRef<'_>, out: &mut Vec<u8>) -> dataflow::Result<()> {
        let seq = self
            .seq
            .eval(tuple)
            .map_err(|e| DataflowError::Eval(e.to_string()))?;
        let mut count = 0i64;
        let mut sum = jdm::Number::Int(0);
        let mut n = 0i64;
        let mut best: Option<Item> = None;
        let mut items: Vec<Item> = Vec::new();
        for member in seq.iter_sequence() {
            let v = self
                .arg
                .eval_with(tuple, Some(member))
                .map_err(|e| DataflowError::Eval(e.to_string()))?;
            for it in v.iter_sequence() {
                count += 1;
                match self.func {
                    AggFunc::Sum | AggFunc::Avg => {
                        let x = it.as_number().ok_or_else(|| {
                            DataflowError::Eval(format!("aggregate over non-number {it}"))
                        })?;
                        sum = sum.add(x);
                        n += 1;
                    }
                    AggFunc::Min | AggFunc::Max => {
                        let better = match &best {
                            None => true,
                            Some(b) => {
                                let ord = it.total_cmp(b);
                                (self.func == AggFunc::Min && ord.is_lt())
                                    || (self.func == AggFunc::Max && ord.is_gt())
                            }
                        };
                        if better {
                            best = Some(it.clone());
                        }
                    }
                    AggFunc::Sequence => items.push(it.clone()),
                    _ => {}
                }
            }
        }
        let result = match self.func {
            AggFunc::Count => Item::int(count),
            AggFunc::Sum => Item::Number(sum),
            AggFunc::Avg => {
                if n == 0 {
                    Item::empty()
                } else {
                    Item::Number(sum.div(jdm::Number::Int(n)))
                }
            }
            AggFunc::Min | AggFunc::Max => best.unwrap_or_else(Item::empty),
            AggFunc::Sequence => Item::Sequence(items),
            other => {
                return Err(DataflowError::Eval(format!(
                    "unsupported subplan aggregate {}",
                    other.name()
                )))
            }
        };
        write_item(&result, out);
        Ok(())
    }
}

/// Join factory: hash join plus an optional residual filter.
struct JoinChainFactory {
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
    residual: Option<RtExpr>,
}

impl TwoInputFactory for JoinChainFactory {
    fn create(&self, ctx: &TaskContext, out: BoxWriter) -> dataflow::Result<Box<dyn TwoInputOp>> {
        let out = match &self.residual {
            Some(cond) => ctx.instrument(Box::new(SelectOp::new(
                Box::new(ExprEval(cond.clone())),
                ctx.frame_size,
                out,
            ))),
            None => out,
        };
        Ok(Box::new(HashJoinOp::new(
            self.build_keys.clone(),
            self.probe_keys.clone(),
            ctx.spill_handle("HASH-JOIN"),
            ctx.frame_size,
            out,
        )))
    }
}

// ------------------------------------------------------------- pipeline

enum PipeInput {
    Source(Arc<dyn ScanSourceFactory>),
    Stage { from: StageId, connector: Connector },
}

struct Pipeline {
    input: PipeInput,
    steps: Vec<StepSpec>,
    schema: Vec<VarId>,
    parallelism: Parallelism,
}

fn seal(p: Pipeline, job: &mut JobSpec) -> StageId {
    let chain = Arc::new(ChainFactory { steps: p.steps });
    let kind = match p.input {
        PipeInput::Source(scan) => StageKind::Source { scan, chain },
        PipeInput::Stage { from, connector } => StageKind::Pipe {
            input: StageInput { from, connector },
            chain,
        },
    };
    job.add(Stage {
        kind,
        parallelism: p.parallelism,
    })
}

// ------------------------------------------------------------- compiler

struct Compiler<'a> {
    opts: &'a CompileOptions,
    gen: VarGen,
}

/// Variables referenced by an expression.
fn expr_vars(e: &LogicalExpr) -> Vec<VarId> {
    let mut v = Vec::new();
    e.collect_vars(&mut v);
    v
}

/// Unwrap `promote(data(Const))` scaffolding down to a string constant.
fn const_string(e: &LogicalExpr) -> Option<&str> {
    match e {
        LogicalExpr::Const(Item::String(s)) => Some(s),
        LogicalExpr::Call(Function::Promote | Function::Data, args) if args.len() == 1 => {
            const_string(&args[0])
        }
        _ => None,
    }
}

impl<'a> Compiler<'a> {
    fn field_of(schema: &[VarId], v: VarId) -> Result<usize> {
        schema
            .iter()
            .position(|x| *x == v)
            .ok_or_else(|| EngineError::Compile(format!("variable {v} not in schema {schema:?}")))
    }

    fn compile_expr(e: &LogicalExpr, schema: &[VarId], extra: Option<VarId>) -> Result<RtExpr> {
        match e {
            LogicalExpr::Var(v) => {
                if extra == Some(*v) {
                    Ok(RtExpr::Field(EXTRA_FIELD))
                } else {
                    Self::field_of(schema, *v).map(RtExpr::Field)
                }
            }
            LogicalExpr::Const(item) => Ok(RtExpr::Const(item.clone())),
            LogicalExpr::Call(f, args) => {
                let mut cargs = Vec::with_capacity(args.len());
                for a in args {
                    cargs.push(Self::compile_expr(a, schema, extra)?);
                }
                Ok(RtExpr::Call(*f, cargs))
            }
        }
    }

    /// Drop dead columns: keep only `live` variables (plus everything when
    /// `live` is empty, which only happens at the root).
    fn prune(p: &mut Pipeline, live: &HashSet<VarId>) {
        if live.is_empty() {
            return;
        }
        let keep: Vec<usize> = (0..p.schema.len())
            .filter(|&i| live.contains(&p.schema[i]))
            .collect();
        if keep.len() == p.schema.len() {
            return;
        }
        p.schema = keep.iter().map(|&i| p.schema[i]).collect();
        p.steps.push(StepSpec::Project(keep));
    }

    /// Compile an operator subtree. `live` is the set of variables any
    /// operator *above* this one still needs.
    fn compile_op(
        &mut self,
        op: &LogicalOp,
        live: &HashSet<VarId>,
        job: &mut JobSpec,
    ) -> Result<Pipeline> {
        match op {
            LogicalOp::EmptyTupleSource => Ok(Pipeline {
                input: PipeInput::Source(Arc::new(EmptyTupleSourceFactory)),
                steps: Vec::new(),
                schema: Vec::new(),
                parallelism: Parallelism::One,
            }),
            LogicalOp::NestedTupleSource => Err(EngineError::Compile(
                "nested-tuple-source outside a nested plan".into(),
            )),

            LogicalOp::DataScan {
                source,
                project,
                var,
                input,
            } => {
                if !matches!(input.as_ref(), LogicalOp::EmptyTupleSource) {
                    return Err(EngineError::Compile(
                        "data-scan over a non-trivial input is unsupported".into(),
                    ));
                }
                let dir = resolve_collection(&self.opts.data_root, &source.path);
                let mut p = Pipeline {
                    input: PipeInput::Source(Arc::new(ProjectedScanFactory::new(
                        dir,
                        project.clone(),
                        self.opts.scan.clone(),
                        self.opts.pool.clone(),
                    ))),
                    steps: Vec::new(),
                    schema: vec![*var],
                    parallelism: Parallelism::Full,
                };
                Self::prune(&mut p, live);
                Ok(p)
            }

            LogicalOp::Assign { var, expr, input } => {
                // Naive source patterns.
                if matches!(input.as_ref(), LogicalOp::EmptyTupleSource) {
                    if let LogicalExpr::Call(Function::Collection, args) = expr {
                        if let Some(path) = args.first().and_then(const_string) {
                            let dir = resolve_collection(&self.opts.data_root, path);
                            return Ok(Pipeline {
                                input: PipeInput::Source(Arc::new(WholeCollectionScanFactory {
                                    dir,
                                    nodes: self.opts.nodes,
                                })),
                                steps: Vec::new(),
                                schema: vec![*var],
                                parallelism: Parallelism::One,
                            });
                        }
                    }
                    if let LogicalExpr::Call(Function::JsonDoc, args) = expr {
                        if let Some(path) = args.first().and_then(const_string) {
                            let file = resolve_collection(&self.opts.data_root, path);
                            return Ok(Pipeline {
                                input: PipeInput::Source(Arc::new(JsonDocScanFactory { file })),
                                steps: Vec::new(),
                                schema: vec![*var],
                                parallelism: Parallelism::One,
                            });
                        }
                    }
                }
                let mut live_in: HashSet<VarId> =
                    live.iter().copied().filter(|v| v != var).collect();
                live_in.extend(expr_vars(expr));
                let mut p = self.compile_op(input, &live_in, job)?;
                p.steps
                    .push(StepSpec::Assign(Self::compile_expr(expr, &p.schema, None)?));
                p.schema.push(*var);
                Self::prune(&mut p, live);
                Ok(p)
            }

            LogicalOp::Select { cond, input } => {
                let mut live_in = live.clone();
                live_in.extend(expr_vars(cond));
                let mut p = self.compile_op(input, &live_in, job)?;
                p.steps
                    .push(StepSpec::Select(Self::compile_expr(cond, &p.schema, None)?));
                Self::prune(&mut p, live);
                Ok(p)
            }

            LogicalOp::Unnest { var, expr, input } => {
                let (kind, inner) = match expr {
                    LogicalExpr::Call(Function::Iterate, args) if args.len() == 1 => {
                        (UnnestKind::Iterate, &args[0])
                    }
                    LogicalExpr::Call(Function::KeysOrMembers, args) if args.len() == 1 => {
                        (UnnestKind::KeysOrMembers, &args[0])
                    }
                    other => (UnnestKind::Iterate, other),
                };
                let mut live_in: HashSet<VarId> =
                    live.iter().copied().filter(|v| v != var).collect();
                live_in.extend(expr_vars(inner));
                let mut p = self.compile_op(input, &live_in, job)?;
                p.steps.push(StepSpec::Unnest {
                    kind,
                    arg: Self::compile_expr(inner, &p.schema, None)?,
                });
                p.schema.push(*var);
                Self::prune(&mut p, live);
                Ok(p)
            }

            LogicalOp::Subplan { nested, input } => {
                let (c, func, arg, j, s) = decompose_subplan(nested)?;
                let mut live_in: HashSet<VarId> =
                    live.iter().copied().filter(|v| *v != c).collect();
                live_in.insert(s);
                live_in.extend(expr_vars(arg).into_iter().filter(|v| *v != j));
                let mut p = self.compile_op(input, &live_in, job)?;
                let seq = Self::field_of(&p.schema, s).map(RtExpr::Field)?;
                let carg = Self::compile_expr(arg, &p.schema, Some(j))?;
                p.steps.push(StepSpec::SubplanAgg {
                    func,
                    seq,
                    arg: carg,
                });
                p.schema.push(c);
                Self::prune(&mut p, live);
                Ok(p)
            }

            LogicalOp::Aggregate {
                var,
                func,
                arg,
                input,
            } => {
                let mut live_in: HashSet<VarId> = expr_vars(arg).into_iter().collect();
                live_in.extend(live.iter().copied().filter(|v| v != var));
                let mut p = self.compile_op(input, &live_in, job)?;
                let carg = Self::compile_expr(arg, &p.schema, None)?;
                let split = if self.opts.two_step_aggregation && p.parallelism == Parallelism::Full
                {
                    func.two_step()
                } else {
                    None
                };
                match split {
                    Some((local, global)) => {
                        p.steps.push(StepSpec::Aggregate {
                            func: local,
                            arg: carg,
                        });
                        let sid = seal(rebind(p, vec![*var]), job);
                        Ok(Pipeline {
                            input: PipeInput::Stage {
                                from: sid,
                                connector: Connector::MergeToOne,
                            },
                            steps: vec![StepSpec::Aggregate {
                                func: global,
                                arg: RtExpr::Field(0),
                            }],
                            schema: vec![*var],
                            parallelism: Parallelism::One,
                        })
                    }
                    None => {
                        let sid = seal(p, job);
                        Ok(Pipeline {
                            input: PipeInput::Stage {
                                from: sid,
                                connector: Connector::MergeToOne,
                            },
                            steps: vec![StepSpec::Aggregate {
                                func: *func,
                                arg: carg,
                            }],
                            schema: vec![*var],
                            parallelism: Parallelism::One,
                        })
                    }
                }
            }

            LogicalOp::GroupBy {
                keys,
                nested,
                input,
            } => self.compile_group_by(keys, nested, input, live, job),

            LogicalOp::OrderBy { keys, input } => {
                let mut live_in = live.clone();
                for (e, _) in keys {
                    live_in.extend(expr_vars(e));
                }
                let p = self.compile_op(input, &live_in, job)?;
                let schema = p.schema.clone();
                let mut ckeys = Vec::with_capacity(keys.len());
                for (e, asc) in keys {
                    ckeys.push((Self::compile_expr(e, &schema, None)?, *asc));
                }
                // A total order needs one sorter: merge everything to a
                // single partition, sort there. (A parallel sort-merge
                // would sort per partition and merge; the workloads here
                // order small result sets, so the simple plan wins.)
                let sid = seal(p, job);
                Ok(Pipeline {
                    input: PipeInput::Stage {
                        from: sid,
                        connector: Connector::MergeToOne,
                    },
                    steps: vec![StepSpec::Sort { keys: ckeys }],
                    schema,
                    parallelism: Parallelism::One,
                })
            }

            LogicalOp::Join { cond, left, right } => {
                self.compile_join(cond, left, right, live, job)
            }

            LogicalOp::Distribute { exprs, input } => {
                let mut live_in: HashSet<VarId> = live.clone();
                for e in exprs {
                    live_in.extend(expr_vars(e));
                }
                let mut p = self.compile_op(input, &live_in, job)?;
                // Materialize non-variable result expressions.
                let mut out_fields = Vec::with_capacity(exprs.len());
                for e in exprs {
                    match e {
                        LogicalExpr::Var(v) => out_fields.push(Self::field_of(&p.schema, *v)?),
                        other => {
                            let compiled = Self::compile_expr(other, &p.schema, None)?;
                            p.steps.push(StepSpec::Assign(compiled));
                            let v = self.gen.fresh();
                            p.schema.push(v);
                            out_fields.push(p.schema.len() - 1);
                        }
                    }
                }
                p.steps.push(StepSpec::Project(out_fields.clone()));
                p.schema = out_fields.iter().map(|&i| p.schema[i]).collect();
                Ok(p)
            }
        }
    }

    fn compile_group_by(
        &mut self,
        keys: &[(VarId, LogicalExpr)],
        nested: &LogicalOp,
        input: &LogicalOp,
        live: &HashSet<VarId>,
        job: &mut JobSpec,
    ) -> Result<Pipeline> {
        let (agg_var, func, arg) = decompose_group_agg(nested)?;
        let mut live_in: HashSet<VarId> = expr_vars(arg).into_iter().collect();
        for (_, ke) in keys {
            live_in.extend(expr_vars(ke));
        }
        let mut p = self.compile_op(input, &live_in, job)?;

        // Materialize key fields. Keys always pass through an ASSIGN with
        // canonicalization (RtExpr::Canon): group membership downstream is
        // decided by *byte* equality of the serialized key, so JSONiq-equal
        // values (1 vs 1.0, singleton sequences) must serialize identically.
        let mut key_fields = Vec::with_capacity(keys.len());
        let mut out_schema = Vec::with_capacity(keys.len() + 1);
        for (gv, ke) in keys {
            let compiled = Self::compile_expr(ke, &p.schema, None)?;
            p.steps
                .push(StepSpec::Assign(RtExpr::Canon(Box::new(compiled))));
            let tmp = self.gen.fresh();
            p.schema.push(tmp);
            key_fields.push(p.schema.len() - 1);
            out_schema.push(*gv);
        }
        out_schema.push(agg_var);

        let carg = Self::compile_expr(arg, &p.schema, None)?;
        let nkeys = key_fields.len();

        if func == AggFunc::Sequence {
            let RtExpr::Field(seq_field) = carg else {
                return Err(EngineError::Compile(
                    "sequence aggregation argument must be a variable".into(),
                ));
            };
            let sid = seal(p, job);
            let mut out = Pipeline {
                input: PipeInput::Stage {
                    from: sid,
                    connector: Connector::Hash {
                        key_fields: key_fields.clone(),
                    },
                },
                steps: vec![StepSpec::MatGroupBy {
                    key_fields,
                    seq_field,
                }],
                schema: out_schema,
                parallelism: Parallelism::Full,
            };
            Self::prune(&mut out, live);
            return Ok(out);
        }

        let split = if self.opts.two_step_aggregation {
            func.two_step()
        } else {
            None
        };
        let mut out = match split {
            Some((local, global)) => {
                // Local pre-aggregation fused into the producing stage.
                p.steps.push(StepSpec::HashGroupBy {
                    key_fields: key_fields.clone(),
                    func: local,
                    arg: carg,
                });
                let local_schema: Vec<VarId> = out_schema.clone();
                let sid = seal(rebind(p, local_schema), job);
                Pipeline {
                    input: PipeInput::Stage {
                        from: sid,
                        connector: Connector::Hash {
                            key_fields: (0..nkeys).collect(),
                        },
                    },
                    steps: vec![StepSpec::HashGroupBy {
                        key_fields: (0..nkeys).collect(),
                        func: global,
                        arg: RtExpr::Field(nkeys),
                    }],
                    schema: out_schema,
                    parallelism: Parallelism::Full,
                }
            }
            None => {
                let sid = seal(p, job);
                Pipeline {
                    input: PipeInput::Stage {
                        from: sid,
                        connector: Connector::Hash {
                            key_fields: key_fields.clone(),
                        },
                    },
                    steps: vec![StepSpec::HashGroupBy {
                        key_fields,
                        func,
                        arg: carg,
                    }],
                    schema: out_schema,
                    parallelism: Parallelism::Full,
                }
            }
        };
        Self::prune(&mut out, live);
        Ok(out)
    }

    fn compile_join(
        &mut self,
        cond: &LogicalExpr,
        left: &LogicalOp,
        right: &LogicalOp,
        live: &HashSet<VarId>,
        job: &mut JobSpec,
    ) -> Result<Pipeline> {
        let lvars = produced_vars(left);
        let rvars = produced_vars(right);

        // Split the condition into equi-join keys and residual conjuncts.
        let mut lkeys: Vec<LogicalExpr> = Vec::new();
        let mut rkeys: Vec<LogicalExpr> = Vec::new();
        let mut residual: Vec<LogicalExpr> = Vec::new();
        for c in cond.conjuncts() {
            if matches!(c, LogicalExpr::Const(Item::Boolean(true))) {
                continue;
            }
            if let LogicalExpr::Call(Function::Eq, args) = c {
                if let [a, b] = args.as_slice() {
                    let side = |e: &LogicalExpr| {
                        let vs = expr_vars(e);
                        let in_l = vs.iter().all(|v| lvars.contains(v));
                        let in_r = vs.iter().all(|v| rvars.contains(v));
                        (in_l, in_r)
                    };
                    match (side(a), side(b)) {
                        ((true, false), (false, true)) => {
                            lkeys.push(a.clone());
                            rkeys.push(b.clone());
                            continue;
                        }
                        ((false, true), (true, false)) => {
                            lkeys.push(b.clone());
                            rkeys.push(a.clone());
                            continue;
                        }
                        _ => {}
                    }
                }
            }
            residual.push(c.clone());
        }
        if lkeys.is_empty() {
            return Err(EngineError::Compile(
                "join requires at least one cross-side equality".into(),
            ));
        }

        // Each side needs: variables live above, its key expressions, and
        // whatever the residual condition reads.
        let mut live_l: HashSet<VarId> =
            live.iter().copied().filter(|v| lvars.contains(v)).collect();
        let mut live_r: HashSet<VarId> =
            live.iter().copied().filter(|v| rvars.contains(v)).collect();
        for e in &lkeys {
            live_l.extend(expr_vars(e));
        }
        for e in &rkeys {
            live_r.extend(expr_vars(e));
        }
        for e in &residual {
            for v in expr_vars(e) {
                if lvars.contains(&v) {
                    live_l.insert(v);
                } else {
                    live_r.insert(v);
                }
            }
        }

        let mut lp = self.compile_op(left, &live_l, job)?;
        let mut rp = self.compile_op(right, &live_r, job)?;

        let lkf = self.materialize_keys(&lkeys, &mut lp)?;
        let rkf = self.materialize_keys(&rkeys, &mut rp)?;

        // Output schema: probe (right) fields then build (left) fields —
        // HashJoinOp's output order.
        let mut out_schema = rp.schema.clone();
        out_schema.extend(lp.schema.iter().copied());
        let residual_rt = if residual.is_empty() {
            None
        } else {
            Some(Self::compile_expr(
                &LogicalExpr::conjoin(residual),
                &out_schema,
                None,
            )?)
        };

        let lsid = seal(lp, job);
        let rsid = seal(rp, job);
        let jid = job.add(Stage {
            kind: StageKind::Join {
                build: StageInput {
                    from: lsid,
                    connector: Connector::Hash {
                        key_fields: lkf.clone(),
                    },
                },
                probe: StageInput {
                    from: rsid,
                    connector: Connector::Hash {
                        key_fields: rkf.clone(),
                    },
                },
                factory: Arc::new(JoinChainFactory {
                    build_keys: lkf,
                    probe_keys: rkf,
                    residual: residual_rt,
                }),
            },
            parallelism: Parallelism::Full,
        });
        let mut out = Pipeline {
            input: PipeInput::Stage {
                from: jid,
                connector: Connector::OneToOne,
            },
            steps: Vec::new(),
            schema: out_schema,
            parallelism: Parallelism::Full,
        };
        Self::prune(&mut out, live);
        Ok(out)
    }

    /// Ensure each key expression is a plain field, appending ASSIGNs for
    /// computed keys; returns the key field indices.
    fn materialize_keys(&mut self, keys: &[LogicalExpr], p: &mut Pipeline) -> Result<Vec<usize>> {
        let mut out = Vec::with_capacity(keys.len());
        for k in keys {
            let compiled = Self::compile_expr(k, &p.schema, None)?;
            p.steps
                .push(StepSpec::Assign(RtExpr::Canon(Box::new(compiled))));
            let tmp = self.gen.fresh();
            p.schema.push(tmp);
            out.push(p.schema.len() - 1);
        }
        Ok(out)
    }
}

/// Replace a pipeline's schema (used when a fused aggregate collapses the
/// tuple down to a single field).
fn rebind(p: Pipeline, schema: Vec<VarId>) -> Pipeline {
    Pipeline { schema, ..p }
}

/// All variables produced anywhere in a subtree.
fn produced_vars(op: &LogicalOp) -> HashSet<VarId> {
    let mut out = HashSet::new();
    op.visit(&mut |o| out.extend(o.produced_vars()));
    out
}

/// Decompose `SUBPLAN { AGGREGATE f(arg) over UNNEST $j := iterate($s)
/// over NTS }`.
fn decompose_subplan(nested: &LogicalOp) -> Result<(VarId, AggFunc, &LogicalExpr, VarId, VarId)> {
    let LogicalOp::Aggregate {
        var,
        func,
        arg,
        input,
    } = nested
    else {
        return Err(EngineError::Compile(
            "subplan must contain an aggregate".into(),
        ));
    };
    let LogicalOp::Unnest {
        var: j,
        expr,
        input: u_in,
    } = input.as_ref()
    else {
        return Err(EngineError::Compile(
            "subplan aggregate must read an unnest".into(),
        ));
    };
    if !matches!(u_in.as_ref(), LogicalOp::NestedTupleSource) {
        return Err(EngineError::Compile(
            "subplan unnest must read nested-tuple-source".into(),
        ));
    }
    let LogicalExpr::Call(Function::Iterate, it_args) = expr else {
        return Err(EngineError::Compile("subplan unnest must iterate".into()));
    };
    let [LogicalExpr::Var(s)] = it_args.as_slice() else {
        return Err(EngineError::Compile(
            "subplan unnest must iterate a variable".into(),
        ));
    };
    Ok((*var, *func, arg, *j, *s))
}

/// Decompose a GROUP-BY nested plan: `AGGREGATE f(arg) over NTS`.
fn decompose_group_agg(nested: &LogicalOp) -> Result<(VarId, AggFunc, &LogicalExpr)> {
    let LogicalOp::Aggregate {
        var,
        func,
        arg,
        input,
    } = nested
    else {
        return Err(EngineError::Compile(
            "group-by nested plan must be an aggregate".into(),
        ));
    };
    if !matches!(input.as_ref(), LogicalOp::NestedTupleSource) {
        return Err(EngineError::Compile(
            "group-by nested aggregate must read nested-tuple-source".into(),
        ));
    }
    Ok((*var, *func, arg))
}

// Decode helper used by tests and the engine's row printing.
pub(crate) fn _decode_item(bytes: &[u8]) -> Option<Item> {
    ItemRef::new(bytes).ok()?.to_item().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::rules::{RuleConfig, RuleSet};

    fn compile(query: &str, rules: RuleConfig) -> JobSpec {
        let mut plan = jsoniq::compile(query).expect("compiles");
        RuleSet::for_config(rules).optimize(&mut plan);
        compile_plan(
            &plan,
            &CompileOptions {
                data_root: PathBuf::from("/nonexistent"),
                nodes: 2,
                two_step_aggregation: rules.two_step_aggregation,
                ..CompileOptions::default()
            },
        )
        .expect("physical compilation")
    }

    fn stage_kinds(job: &JobSpec) -> Vec<&'static str> {
        job.stages
            .iter()
            .map(|s| match s.kind {
                StageKind::Source { .. } => "source",
                StageKind::Pipe { .. } => "pipe",
                StageKind::Join { .. } => "join",
            })
            .collect()
    }

    #[test]
    fn optimized_q0_is_a_single_source_stage() {
        let job = compile(crate::queries::Q0, RuleConfig::all());
        assert_eq!(stage_kinds(&job), vec!["source"]);
        assert_eq!(job.stages[0].parallelism, Parallelism::Full);
    }

    #[test]
    fn optimized_q1_has_local_groupby_then_exchange() {
        let job = compile(crate::queries::Q1, RuleConfig::all());
        // Source (scan + select + key assign + local group-by), then the
        // global group-by stage behind a hash exchange.
        assert_eq!(stage_kinds(&job), vec!["source", "pipe"]);
        let StageKind::Pipe { input, .. } = &job.stages[1].kind else {
            unreachable!()
        };
        assert!(matches!(input.connector, Connector::Hash { .. }));
        assert_eq!(job.stages[1].parallelism, Parallelism::Full);
    }

    #[test]
    fn q1_without_two_step_exchanges_raw_tuples() {
        let cfg = RuleConfig {
            two_step_aggregation: false,
            ..RuleConfig::all()
        };
        let job = compile(crate::queries::Q1, cfg);
        assert_eq!(stage_kinds(&job), vec!["source", "pipe"]);
    }

    #[test]
    fn naive_q1_uses_single_partition_whole_collection_scan() {
        let job = compile(crate::queries::Q1, RuleConfig::none());
        // First stage: the naive collection scan, parallelism One.
        assert!(matches!(job.stages[0].kind, StageKind::Source { .. }));
        assert_eq!(job.stages[0].parallelism, Parallelism::One);
    }

    #[test]
    fn optimized_q2_builds_join_with_hash_inputs() {
        let job = compile(crate::queries::Q2, RuleConfig::all());
        let kinds = stage_kinds(&job);
        assert!(kinds.contains(&"join"), "{kinds:?}");
        // Both join inputs arrive via hash exchanges on the key fields.
        let join = job
            .stages
            .iter()
            .find_map(|s| match &s.kind {
                StageKind::Join { build, probe, .. } => Some((build, probe)),
                _ => None,
            })
            .expect("join stage");
        assert!(
            matches!(join.0.connector, Connector::Hash { ref key_fields } if key_fields.len() == 2)
        );
        assert!(
            matches!(join.1.connector, Connector::Hash { ref key_fields } if key_fields.len() == 2)
        );
    }

    #[test]
    fn q2_ends_with_single_partition_aggregate() {
        let job = compile(crate::queries::Q2, RuleConfig::all());
        let terminal = job.terminal().expect("terminal");
        assert_eq!(job.stages[terminal].parallelism, Parallelism::One);
    }

    #[test]
    fn join_without_equality_is_rejected() {
        let q = r#"
            avg(
              for $a in collection("/s")("root")()
              for $b in collection("/s")("root")()
              where $a("x") lt $b("x")
              return 1
            )
        "#;
        let mut plan = jsoniq::compile(q).expect("compiles");
        RuleSet::for_config(RuleConfig::all()).optimize(&mut plan);
        let r = compile_plan(
            &plan,
            &CompileOptions {
                data_root: PathBuf::from("/nonexistent"),
                nodes: 1,
                two_step_aggregation: true,
                ..CompileOptions::default()
            },
        );
        match r {
            Err(err) => assert!(err.to_string().contains("equality"), "{err}"),
            Ok(_) => panic!("non-equi join must be rejected"),
        }
    }

    #[test]
    fn column_pruning_inserts_projects_for_naive_plans() {
        // The naive plan carries the whole-collection sequence variable;
        // pruning must drop it after the iterate.
        let mut plan = jsoniq::compile(crate::queries::Q0).expect("compiles");
        RuleSet::for_config(RuleConfig::none()).optimize(&mut plan);
        let job = compile_plan(
            &plan,
            &CompileOptions {
                data_root: PathBuf::from("/nonexistent"),
                nodes: 1,
                two_step_aggregation: false,
                ..CompileOptions::default()
            },
        )
        .expect("compiles physically");
        // Can't inspect steps directly (private), but compilation must
        // succeed and produce at least one stage; the e2e memory test
        // (xtests) verifies pruning behaviourally.
        assert!(!job.stages.is_empty());
    }
}
