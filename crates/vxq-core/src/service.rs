//! Concurrent query serving: admission control, scheduling, cancellation,
//! fair memory sharing, and a plan cache.
//!
//! The [`Engine`] runs one query at a time; a [`QueryService`] wraps one
//! engine and accepts queries from many threads at once:
//!
//! - **Admission control** — a bounded priority queue. Up to
//!   `max_concurrent` queries run on a fixed worker pool; up to
//!   `queue_limit` more wait. Past that, [`QueryService::submit`] returns
//!   the typed [`EngineError::Overloaded`] immediately instead of letting
//!   latency collapse under unbounded backlog.
//! - **Scheduling** — waiting queries are served highest
//!   [`Priority`] first, FIFO within a priority class.
//! - **Cooperative cancellation** — every admitted query carries a
//!   [`CancelToken`] (deadline-armed when [`QueryOptions::deadline`] is
//!   set). Operators check it at frame boundaries, so a cancelled or
//!   expired query unwinds cleanly: memory grants released, spill
//!   directories removed, typed [`EngineError::Cancelled`] /
//!   [`EngineError::DeadlineExceeded`] returned.
//! - **Fair memory sharing** — the memory budget is split equally among
//!   the queries running at any moment, each on a private
//!   [`MemTracker`]. Shares rebalance as jobs start and finish; a share
//!   that shrinks under a running job simply makes its next grant growth
//!   fail, which is the operator's signal to spill.
//! - **Plan cache** — optimized plans are cached by normalized query
//!   text (plus the engine's rule and scan configuration). A hit skips
//!   parse → translate → optimize entirely; only physical compilation —
//!   which captures per-job scan caches — remains per-execution.
//!
//! Shutdown is graceful: dropping the service stops admission, lets the
//! workers drain the queue, and joins them.

use crate::compile::plan_cache_key;
use crate::engine::{Engine, ExecOptions, PreparedQuery, QueryResult};
use crate::error::{EngineError, Result};
use dataflow::{CancelReason, CancelToken, MemTracker, TraceBuffer};
use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Latency samples kept for percentile reporting; past this the recorder
/// stops (the bound keeps a long-lived service from growing without
/// limit, and 64 Ki samples is plenty for stable p99s).
const LATENCY_SAMPLE_CAP: usize = 64 * 1024;

/// Serving-layer construction parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Queries executing at once (worker-pool size).
    pub max_concurrent: usize,
    /// Queries allowed to wait for a worker; submissions past this are
    /// rejected with [`EngineError::Overloaded`].
    pub queue_limit: usize,
    /// Total operator-state budget in bytes, split equally among running
    /// queries. 0 falls back to the wrapped engine's budget (which itself
    /// may come from `VXQ_MEM_BUDGET`); if that is also 0, memory is
    /// unlimited.
    pub memory_budget: usize,
    /// Optimized plans kept in the LRU plan cache. 0 disables caching.
    pub plan_cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_concurrent: 4,
            queue_limit: 64,
            memory_budget: 0,
            plan_cache_capacity: 64,
        }
    }
}

/// Scheduling class of a submitted query. Higher priorities dequeue
/// first; within a class, submissions run in arrival order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    Low,
    #[default]
    Normal,
    High,
}

/// Per-query options for [`QueryService::submit`].
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Scheduling class (default [`Priority::Normal`]).
    pub priority: Priority,
    /// Time allowed from submission to completion. Counting starts at
    /// submit, so time spent waiting in the queue counts against it; an
    /// expired query is cancelled cooperatively and returns
    /// [`EngineError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Free-form label carried into metrics and traces.
    pub tag: Option<String>,
    /// Record a full lifecycle trace for this query (returned in
    /// [`ServiceResponse::trace`]).
    pub collect_trace: bool,
}

/// A completed query as the service returns it.
pub struct ServiceResponse {
    /// The engine result: rows, stats, plan, rule provenance.
    pub result: QueryResult,
    /// Whether the optimized plan came from the plan cache.
    pub cache_hit: bool,
    /// Time between submission and a worker picking the query up.
    pub queue_wait: Duration,
    /// Execution time on the worker (excludes queue wait).
    pub elapsed: Duration,
    /// The lifecycle trace, when [`QueryOptions::collect_trace`] was set.
    pub trace: Option<Arc<TraceBuffer>>,
}

// ---------------------------------------------------------------------
// Tickets
// ---------------------------------------------------------------------

struct TicketState {
    slot: Mutex<Option<Result<ServiceResponse>>>,
    done: Condvar,
    cancel: Arc<CancelToken>,
}

impl TicketState {
    fn new(cancel: Arc<CancelToken>) -> Arc<Self> {
        Arc::new(TicketState {
            slot: Mutex::new(None),
            done: Condvar::new(),
            cancel,
        })
    }

    fn complete(&self, outcome: Result<ServiceResponse>) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(outcome);
        self.done.notify_all();
    }
}

/// Handle to an admitted query: wait for its result, or cancel it.
pub struct QueryTicket {
    state: Arc<TicketState>,
}

impl QueryTicket {
    /// Block until the query completes (or is cancelled / expires).
    pub fn wait(self) -> Result<ServiceResponse> {
        let mut slot = self.state.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self
                .state
                .done
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Request cooperative cancellation. Idempotent; the query unwinds at
    /// its next frame boundary (or is dropped at dequeue if still
    /// queued) and its `wait` returns [`EngineError::Cancelled`].
    pub fn cancel(&self) {
        self.state.cancel.cancel();
    }
}

// ---------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------

struct QueuedJob {
    priority: Priority,
    seq: u64,
    query: String,
    options: QueryOptions,
    ticket: Arc<TicketState>,
    submitted: Instant,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then lower sequence (FIFO).
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct QueueState {
    queue: BinaryHeap<QueuedJob>,
    closed: bool,
}

// ---------------------------------------------------------------------
// Fair memory shares
// ---------------------------------------------------------------------

/// Registry of the memory trackers of currently running jobs. The total
/// budget is divided equally; every admit and release rebalances all
/// active shares.
struct FairShares {
    total: usize,
    active: Mutex<Vec<Arc<MemTracker>>>,
}

impl FairShares {
    fn new(total: usize) -> Self {
        FairShares {
            total,
            active: Mutex::new(Vec::new()),
        }
    }

    fn rebalance(total: usize, active: &[Arc<MemTracker>]) {
        if total == 0 || active.is_empty() {
            for t in active {
                t.set_budget(0);
            }
            return;
        }
        let share = (total / active.len()).max(1);
        for t in active {
            t.set_budget(share);
        }
    }

    /// Register a fresh per-job tracker and rebalance everyone's share.
    fn admit(&self) -> Arc<MemTracker> {
        let tracker = MemTracker::new();
        let mut active = self.active.lock().unwrap_or_else(|e| e.into_inner());
        active.push(tracker.clone());
        Self::rebalance(self.total, &active);
        tracker
    }

    /// Drop a finished job's tracker and hand its share back.
    fn release(&self, tracker: &Arc<MemTracker>) {
        let mut active = self.active.lock().unwrap_or_else(|e| e.into_inner());
        active.retain(|t| !Arc::ptr_eq(t, tracker));
        Self::rebalance(self.total, &active);
    }

    fn active_count(&self) -> usize {
        self.active.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

// ---------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------

struct CacheEntry {
    prepared: PreparedQuery,
    last_used: u64,
}

struct PlanCacheInner {
    map: HashMap<String, CacheEntry>,
    tick: u64,
}

/// LRU cache of optimized plans, keyed on normalized query text plus the
/// engine's rule and scan configuration (see
/// [`crate::compile::plan_cache_key`]).
struct PlanCache {
    capacity: usize,
    inner: Mutex<PlanCacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            inner: Mutex::new(PlanCacheInner {
                map: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn get(&self, key: &str) -> Option<PreparedQuery> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.prepared.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: String, prepared: PreparedQuery) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            // Evict the least recently used entry. O(n), fine at cache
            // sizes measured in dozens.
            if let Some(evict) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&evict);
            }
        }
        inner.map.insert(
            key,
            CacheEntry {
                prepared,
                last_used: tick,
            },
        );
    }

    fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

#[derive(Default)]
struct ServiceMetrics {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    deadline_expired: AtomicU64,
    running: AtomicU64,
    /// High-water mark of bytes a finished job left allocated on its
    /// tracker — 0 in a healthy service (cancellation hygiene check).
    leaked_bytes: AtomicU64,
    latency_us: Mutex<Vec<u64>>,
    queue_wait_us: Mutex<Vec<u64>>,
}

impl ServiceMetrics {
    fn record_sample(samples: &Mutex<Vec<u64>>, us: u64) {
        let mut v = samples.lock().unwrap_or_else(|e| e.into_inner());
        if v.len() < LATENCY_SAMPLE_CAP {
            v.push(us);
        }
    }
}

/// Percentile summary over recorded microsecond samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    pub count: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

/// Nearest-rank percentile over a sorted sample set.
pub(crate) fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn summarize(samples: &Mutex<Vec<u64>>) -> LatencySummary {
    let mut v = samples.lock().unwrap_or_else(|e| e.into_inner()).clone();
    v.sort_unstable();
    LatencySummary {
        count: v.len() as u64,
        p50_us: percentile(&v, 50.0),
        p95_us: percentile(&v, 95.0),
        p99_us: percentile(&v, 99.0),
        max_us: v.last().copied().unwrap_or(0),
    }
}

/// Point-in-time view of the service counters.
#[derive(Debug, Clone, Default)]
pub struct ServiceSnapshot {
    /// Queries ever offered to `submit`.
    pub submitted: u64,
    /// Submissions refused (queue full or service closed).
    pub rejected: u64,
    /// Queries that ran to completion.
    pub completed: u64,
    /// Queries that errored (excluding cancellations and deadlines).
    pub failed: u64,
    /// Queries cancelled by their client.
    pub cancelled: u64,
    /// Queries whose deadline fired.
    pub deadline_expired: u64,
    /// Queries executing right now.
    pub running: usize,
    /// Queries waiting for a worker right now.
    pub queue_depth: usize,
    /// Plan-cache lookups that found a prepared plan.
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that had to prepare from scratch.
    pub plan_cache_misses: u64,
    /// Plans currently cached.
    pub plan_cache_size: usize,
    /// High-water mark of bytes any finished job left allocated (0 in a
    /// healthy service).
    pub leaked_bytes: u64,
    /// End-to-end worker-side execution latency.
    pub latency: LatencySummary,
    /// Time spent waiting in the admission queue.
    pub queue_wait: LatencySummary,
}

// ---------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------

struct Shared {
    engine: Arc<Engine>,
    config: ServiceConfig,
    state: Mutex<QueueState>,
    work_ready: Condvar,
    shares: FairShares,
    cache: PlanCache,
    metrics: ServiceMetrics,
    seq: AtomicU64,
}

/// A thread-safe serving front end over one [`Engine`]. See the module
/// docs for the full contract.
pub struct QueryService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl QueryService {
    /// Wrap an engine in a serving layer with `config`'s concurrency,
    /// queueing, memory, and caching policy.
    pub fn new(engine: Engine, config: ServiceConfig) -> Self {
        QueryService::with_engine(Arc::new(engine), config)
    }

    /// Like [`QueryService::new`] for an engine that is already shared.
    pub fn with_engine(engine: Arc<Engine>, config: ServiceConfig) -> Self {
        let total_budget = if config.memory_budget > 0 {
            config.memory_budget
        } else {
            engine.memory().budget()
        };
        let shared = Arc::new(Shared {
            shares: FairShares::new(total_budget),
            cache: PlanCache::new(config.plan_cache_capacity),
            metrics: ServiceMetrics::default(),
            state: Mutex::new(QueueState {
                queue: BinaryHeap::new(),
                closed: false,
            }),
            work_ready: Condvar::new(),
            seq: AtomicU64::new(0),
            engine,
            config,
        });
        let workers = (0..shared.config.max_concurrent.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("vxq-service-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn service worker")
            })
            .collect();
        QueryService { shared, workers }
    }

    /// The wrapped engine (shared with the worker pool).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Submit a query for execution. Returns immediately: either a
    /// [`QueryTicket`] to wait on, or the typed admission error
    /// ([`EngineError::Overloaded`] / [`EngineError::ServiceClosed`]).
    pub fn submit(&self, query: &str, options: QueryOptions) -> Result<QueryTicket> {
        let m = &self.shared.metrics;
        m.submitted.fetch_add(1, Ordering::Relaxed);
        let cancel = match options.deadline {
            Some(d) => CancelToken::with_deadline(Instant::now() + d),
            None => CancelToken::new(),
        };
        let ticket = TicketState::new(cancel);
        let job = QueuedJob {
            priority: options.priority,
            seq: self.shared.seq.fetch_add(1, Ordering::Relaxed),
            query: query.to_string(),
            options,
            ticket: ticket.clone(),
            submitted: Instant::now(),
        };
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.closed {
                m.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::ServiceClosed);
            }
            if state.queue.len() >= self.shared.config.queue_limit {
                m.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::Overloaded {
                    queued: state.queue.len(),
                    queue_limit: self.shared.config.queue_limit,
                });
            }
            state.queue.push(job);
        }
        self.shared.work_ready.notify_one();
        Ok(QueryTicket { state: ticket })
    }

    /// Submit and block until the result is ready: `submit(...)?.wait()`.
    pub fn execute(&self, query: &str, options: QueryOptions) -> Result<ServiceResponse> {
        self.submit(query, options)?.wait()
    }

    /// Stop admitting queries. Already-queued work still runs; workers
    /// exit once the queue drains. Idempotent; `Drop` calls this too.
    pub fn close(&self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        drop(state);
        self.shared.work_ready.notify_all();
    }

    /// Current counters, gauges and latency percentiles.
    pub fn snapshot(&self) -> ServiceSnapshot {
        let m = &self.shared.metrics;
        let queue_depth = self
            .shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len();
        ServiceSnapshot {
            submitted: m.submitted.load(Ordering::Relaxed),
            rejected: m.rejected.load(Ordering::Relaxed),
            completed: m.completed.load(Ordering::Relaxed),
            failed: m.failed.load(Ordering::Relaxed),
            cancelled: m.cancelled.load(Ordering::Relaxed),
            deadline_expired: m.deadline_expired.load(Ordering::Relaxed),
            running: m.running.load(Ordering::Relaxed) as usize,
            queue_depth,
            plan_cache_hits: self.shared.cache.hits.load(Ordering::Relaxed),
            plan_cache_misses: self.shared.cache.misses.load(Ordering::Relaxed),
            plan_cache_size: self.shared.cache.len(),
            leaked_bytes: m.leaked_bytes.load(Ordering::Relaxed),
            latency: summarize(&m.latency_us),
            queue_wait: summarize(&m.queue_wait_us),
        }
    }

    /// Memory trackers registered for currently running jobs (primarily
    /// for tests asserting fair-share bookkeeping).
    pub fn active_jobs(&self) -> usize {
        self.shared.shares.active_count()
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

fn cancel_error(reason: CancelReason) -> EngineError {
    match reason {
        CancelReason::Client => EngineError::Cancelled,
        CancelReason::Deadline => EngineError::DeadlineExceeded,
    }
}

/// Fold runtime cancellation back into the service-level typed errors.
fn map_cancelled(err: EngineError) -> EngineError {
    match err {
        EngineError::Execute(dataflow::DataflowError::Cancelled(reason)) => cancel_error(reason),
        other => other,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = state.queue.pop() {
                    break job;
                }
                if state.closed {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let m = &shared.metrics;
        let queue_wait = job.submitted.elapsed();
        ServiceMetrics::record_sample(&m.queue_wait_us, queue_wait.as_micros() as u64);

        // A query cancelled (or expired) while still waiting never runs.
        if let Some(reason) = job.ticket.cancel.fired() {
            match reason {
                CancelReason::Client => m.cancelled.fetch_add(1, Ordering::Relaxed),
                CancelReason::Deadline => m.deadline_expired.fetch_add(1, Ordering::Relaxed),
            };
            job.ticket.complete(Err(cancel_error(reason)));
            continue;
        }

        m.running.fetch_add(1, Ordering::Relaxed);
        let mem = shared.shares.admit();
        let trace = job.options.collect_trace.then(|| {
            let t = Arc::new(TraceBuffer::new());
            if let Some(tag) = &job.options.tag {
                t.event("tag", "service", vec![("tag", tag.as_str().into())]);
            }
            t
        });
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_one(&shared, &job, &mem, trace.as_ref())
        }));
        let elapsed = started.elapsed();

        // Cancellation hygiene: a finished job — success, error, cancel
        // or panic — must have released every grant on its tracker.
        let leaked = mem.current() as u64;
        if leaked > 0 {
            m.leaked_bytes.fetch_max(leaked, Ordering::Relaxed);
        }
        shared.shares.release(&mem);
        m.running.fetch_sub(1, Ordering::Relaxed);

        let outcome = match outcome {
            Ok(r) => r.map_err(map_cancelled),
            Err(payload) => Err(EngineError::Execute(dataflow::DataflowError::Worker(
                format!("query task panicked: {}", panic_message(payload.as_ref())),
            ))),
        };
        match &outcome {
            Ok(_) => {
                m.completed.fetch_add(1, Ordering::Relaxed);
                ServiceMetrics::record_sample(&m.latency_us, elapsed.as_micros() as u64);
            }
            Err(EngineError::Cancelled) => {
                m.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            Err(EngineError::DeadlineExceeded) => {
                m.deadline_expired.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                m.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        job.ticket
            .complete(outcome.map(|(result, cache_hit)| ServiceResponse {
                result,
                cache_hit,
                queue_wait,
                elapsed,
                trace,
            }));
    }
}

/// One query on a worker: plan-cache lookup, prepare on miss, execute
/// with the job's private tracker and cancellation token.
fn run_one(
    shared: &Shared,
    job: &QueuedJob,
    mem: &Arc<MemTracker>,
    trace: Option<&Arc<TraceBuffer>>,
) -> Result<(QueryResult, bool)> {
    let engine = &shared.engine;
    let key = plan_cache_key(&job.query, &engine.config().rules, &engine.config().scan);
    let (prepared, cache_hit) = match shared.cache.get(&key) {
        Some(prepared) => {
            if let Some(t) = trace {
                t.event("plan-cache-hit", "service", vec![]);
            }
            (prepared, true)
        }
        None => {
            let prepared = engine.prepare(&job.query, trace.map(Arc::as_ref))?;
            shared.cache.insert(key, prepared.clone());
            (prepared, false)
        }
    };
    let result = engine.execute_prepared(
        &prepared,
        trace,
        ExecOptions {
            mem: Some(mem.clone()),
            cancel: Some(job.ticket.cancel.clone()),
        },
    )?;
    Ok((result, cache_hit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_orders_by_priority_then_fifo() {
        let mk = |priority, seq| QueuedJob {
            priority,
            seq,
            query: String::new(),
            options: QueryOptions::default(),
            ticket: TicketState::new(CancelToken::new()),
            submitted: Instant::now(),
        };
        let mut heap = BinaryHeap::new();
        heap.push(mk(Priority::Normal, 0));
        heap.push(mk(Priority::Low, 1));
        heap.push(mk(Priority::High, 2));
        heap.push(mk(Priority::High, 3));
        heap.push(mk(Priority::Normal, 4));
        let order: Vec<(Priority, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|j| (j.priority, j.seq))
            .collect();
        assert_eq!(
            order,
            vec![
                (Priority::High, 2),
                (Priority::High, 3),
                (Priority::Normal, 0),
                (Priority::Normal, 4),
                (Priority::Low, 1),
            ]
        );
    }

    #[test]
    fn plan_cache_lru_evicts_least_recent() {
        let mk = || PreparedQuery {
            plan: Arc::new(algebra::LogicalPlan::new(
                algebra::LogicalOp::EmptyTupleSource,
            )),
            explain: String::new(),
            rule_firings: Vec::new(),
        };
        let cache = PlanCache::new(2);
        cache.insert("a".into(), mk());
        cache.insert("b".into(), mk());
        assert!(cache.get("a").is_some(), "refresh a");
        cache.insert("c".into(), mk());
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some(), "a was refreshed, must survive");
        assert!(cache.get("b").is_none(), "b was LRU, must be evicted");
        assert!(cache.get("c").is_some());
        assert_eq!(cache.hits.load(Ordering::Relaxed), 3);
        assert_eq!(cache.misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn plan_cache_capacity_zero_disables() {
        let cache = PlanCache::new(0);
        cache.insert(
            "a".into(),
            PreparedQuery {
                plan: Arc::new(algebra::LogicalPlan::new(
                    algebra::LogicalOp::EmptyTupleSource,
                )),
                explain: String::new(),
                rule_firings: Vec::new(),
            },
        );
        assert!(cache.get("a").is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn fair_shares_split_and_rebalance() {
        let shares = FairShares::new(900);
        let a = shares.admit();
        assert_eq!(a.budget(), 900);
        let b = shares.admit();
        let c = shares.admit();
        assert_eq!(a.budget(), 300);
        assert_eq!(b.budget(), 300);
        assert_eq!(c.budget(), 300);
        shares.release(&b);
        assert_eq!(a.budget(), 450);
        assert_eq!(c.budget(), 450);
        shares.release(&a);
        shares.release(&c);
        assert_eq!(shares.active_count(), 0);
    }

    #[test]
    fn fair_shares_zero_budget_stays_unlimited() {
        let shares = FairShares::new(0);
        let a = shares.admit();
        let b = shares.admit();
        assert_eq!(a.budget(), 0);
        assert_eq!(b.budget(), 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
    }
}
