//! DATASCAN runtimes: how collection data reaches the dataflow.
//!
//! Three scan flavours, matching the plan shapes before/after the rules:
//!
//! * [`ProjectedScanFactory`] — the post-pipelining-rules DATASCAN: each
//!   partition reads its share of the collection and **streams the
//!   projected items** straight out of the structural-index-guided
//!   projector ([`jdm::project`]), one tuple per item. Partitioned-
//!   parallel, bounded memory.
//! * [`WholeCollectionScanFactory`] — the naive `ASSIGN collection(...)`:
//!   a *single* partition parses every file completely and emits **one
//!   tuple holding the sequence of all file items** (what the paper's
//!   Fig. 5 plan does before DATASCAN is introduced — and why those
//!   experiments only use small collections). The materialized sequence
//!   is reported to the memory tracker.
//! * [`JsonDocScanFactory`] — `json-doc("file")`: one document, one tuple.
//!
//! ## Collection layout
//!
//! A collection path (e.g. `/sensors`) resolves to
//! `<data_root>/sensors/`. If that directory contains `node0/`, `node1/`,
//! … sub-directories, node *n* owns `node{n}` and its partitions share
//! its files (the paper's "each node has a unique set of JSON files
//! stored under the same directory"). Otherwise files are shared across
//! all partitions.
//!
//! ## Splits, not files
//!
//! Work is assigned as [`ScanSplit`]s. Every task of a stage computes the
//! same deterministic global assignment ([`partition_splits`]) from file
//! sizes alone, then keeps its own share — no coordination:
//!
//! 1. files larger than [`ScanOptions::min_split_bytes`] are chopped into
//!    up to one split per partition (only when the projection path has a
//!    `()` step — that is what gives the file record granularity — and
//!    never for binary `.adm` files);
//! 2. the splits are placed by greedy LPT (largest first, onto the
//!    least-loaded partition), so a size-skewed directory still balances —
//!    the old index round-robin ignored sizes entirely.
//!
//! At scan time, split *j of n* of a file covers records
//! `[j·R/n, (j+1)·R/n)` of the array reached by the projection path's
//! prefix (see [`jdm::project::RecordTable`]): record-aligned byte
//! ranges, found via the structural index, no mid-value cuts. The n
//! tasks of one file share a single read + index through a per-factory
//! cache, so a single big JSON file fans out across all workers while
//! being read once per node.

use crate::pool::ScanBufferPool;
use dataflow::context::TaskContext;
use dataflow::ops::eval::{ScanSource, ScanSourceFactory, TupleEmitter};
use dataflow::profile::SplitProfile;
use dataflow::{DataflowError, MemTracker, Result};
use jdm::binary::{to_bytes, write_item};
use jdm::index::StructuralIndex;
use jdm::parse::parse_item;
use jdm::project::{project_indexed, RecordTable};
use jdm::stage1::Stage1Mode;
use jdm::{Item, PathStep, ProjectionPath};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Knobs of the projected DATASCAN (part of the engine configuration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOptions {
    /// Allow record-aligned ranges of one large file to fan out across
    /// the partitions of a node (on by default; turn off to reproduce
    /// whole-file-granular scans).
    pub intra_file_splits: bool,
    /// Files smaller than this never split, and splits are never smaller
    /// than this (bounds per-split overhead).
    pub min_split_bytes: u64,
    /// Stage-1 kernel selection for structural-index builds (the default
    /// honours the `VXQ_STAGE1` environment variable, falling back to
    /// auto-detection).
    pub stage1: Stage1Mode,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            intra_file_splits: true,
            min_split_bytes: 64 * 1024,
            stage1: Stage1Mode::from_env(),
        }
    }
}

/// One unit of scan work: a record-aligned share of a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanSplit {
    pub path: PathBuf,
    /// Estimated bytes this split covers (size-based; used for placement).
    pub bytes: u64,
    /// Split index within the file.
    pub split: usize,
    /// Total splits of the file (1 = whole file).
    pub of: usize,
}

/// Resolve a query collection path under the engine's data root.
pub fn resolve_collection(data_root: &Path, coll: &str) -> PathBuf {
    data_root.join(coll.trim_start_matches('/'))
}

/// Enumerate a directory's data files in name order. `.json` files hold
/// JSON text; `.adm` files hold a pre-converted binary item (the
/// AsterixDB-load baseline's internal format).
fn list_json_files(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let entries = std::fs::read_dir(dir)
        .map_err(|e| DataflowError::Source(format!("cannot read {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| DataflowError::Source(e.to_string()))?;
        let p = entry.path();
        if p.is_file()
            && p.extension()
                .map(|e| e == "json" || e == "adm")
                .unwrap_or(false)
        {
            files.push(p);
        }
    }
    files.sort();
    Ok(files)
}

/// Files of a directory with their byte sizes.
fn sized_files(dir: &Path) -> Result<Vec<(PathBuf, u64)>> {
    Ok(list_json_files(dir)?
        .into_iter()
        .map(|p| {
            let size = std::fs::metadata(&p).map(|m| m.len()).unwrap_or(0);
            (p, size)
        })
        .collect())
}

/// Parse one data file (text or binary) into an item.
fn parse_file(path: &Path, buf: &[u8]) -> Result<Item> {
    let binary = path.extension().map(|e| e == "adm").unwrap_or(false);
    let r = if binary {
        jdm::binary::ItemRef::new(buf).and_then(|r| r.to_item())
    } else {
        parse_item(buf)
    };
    r.map_err(|e| DataflowError::Source(format!("{}: {e}", path.display())))
}

/// The collection's `node<i>` sub-directories, in index order (empty when
/// the collection is a flat directory of files).
fn node_dirs(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for i in 0.. {
        let d = dir.join(format!("node{i}"));
        if d.is_dir() {
            out.push(d);
        } else {
            break;
        }
    }
    Ok(out)
}

/// The splits a given partition is responsible for.
///
/// Data-node directory `d` is owned by cluster node `d % cluster_nodes`
/// (exact locality when the dataset was generated for this cluster size;
/// balanced reassignment when node counts differ, as in the speed-up
/// experiments that run one dataset on growing clusters). Within a node,
/// the node's files are chopped and placed over its partitions by
/// [`assign_splits`]; a flat collection is placed over all partitions.
/// `splittable` says whether the consumer can scan a record range of a
/// file (true only for projections with a `()` step).
pub fn partition_splits(
    dir: &Path,
    ctx: &TaskContext,
    opts: &ScanOptions,
    splittable: bool,
) -> Result<Vec<ScanSplit>> {
    let ppn = ctx.partitions_per_node.max(1);
    let cluster_nodes = ctx.num_partitions.div_ceil(ppn);
    let dirs = node_dirs(dir)?;
    if dirs.is_empty() {
        // Flat collection: place over all partitions.
        let files = sized_files(dir)?;
        let mut assignment = assign_splits(&files, ctx.num_partitions.max(1), opts, splittable);
        return Ok(std::mem::take(&mut assignment[ctx.partition]));
    }
    let local = ctx.partition % ppn;
    let mut out = Vec::new();
    for (d, node_dir) in dirs.iter().enumerate() {
        if d % cluster_nodes.max(1) != ctx.node {
            continue;
        }
        let files = sized_files(node_dir)?;
        let mut assignment = assign_splits(&files, ppn, opts, splittable);
        out.append(&mut assignment[local]);
    }
    Ok(out)
}

/// Deterministic size-aware placement of a file set over `nparts`
/// partitions: chop large files into record-range splits, then greedy LPT
/// (largest split first, onto the least-loaded partition, ties broken by
/// path so every task computes the identical placement).
fn assign_splits(
    files: &[(PathBuf, u64)],
    nparts: usize,
    opts: &ScanOptions,
    splittable: bool,
) -> Vec<Vec<ScanSplit>> {
    let mut splits = Vec::with_capacity(files.len());
    for (path, size) in files {
        let adm = path.extension().map(|e| e == "adm").unwrap_or(false);
        let pieces = if splittable && !adm && opts.intra_file_splits && nparts > 1 {
            ((size / opts.min_split_bytes.max(1)) as usize).clamp(1, nparts)
        } else {
            1
        };
        for j in 0..pieces {
            splits.push(ScanSplit {
                path: path.clone(),
                bytes: (size / pieces as u64).max(1),
                split: j,
                of: pieces,
            });
        }
    }
    splits.sort_by(|a, b| {
        b.bytes
            .cmp(&a.bytes)
            .then_with(|| a.path.cmp(&b.path))
            .then(a.split.cmp(&b.split))
    });
    let mut out = vec![Vec::new(); nparts];
    let mut load = vec![0u64; nparts];
    for s in splits {
        let p = (0..nparts)
            .min_by_key(|&i| (load[i], i))
            .expect("nparts > 0");
        load[p] += s.bytes;
        out[p].push(s);
    }
    out
}

/// Every file of the collection, across all node directories.
pub fn all_files(dir: &Path, _nodes: usize) -> Result<Vec<PathBuf>> {
    let dirs = node_dirs(dir)?;
    if dirs.is_empty() {
        return list_json_files(dir);
    }
    let mut out = Vec::new();
    for d in dirs {
        out.extend(list_json_files(&d)?);
    }
    Ok(out)
}

// ------------------------------------------------------------ projected

/// Factory for the projecting partitioned DATASCAN.
pub struct ProjectedScanFactory {
    dir: PathBuf,
    project: ProjectionPath,
    options: ScanOptions,
    pool: Arc<ScanBufferPool>,
    /// Shared per-job cache: the n tasks scanning splits of one file read
    /// and index it exactly once.
    cache: Arc<FileIndexCache>,
}

impl ProjectedScanFactory {
    pub fn new(
        dir: PathBuf,
        project: ProjectionPath,
        options: ScanOptions,
        pool: Arc<ScanBufferPool>,
    ) -> Self {
        ProjectedScanFactory {
            dir,
            project,
            options,
            pool,
            cache: Arc::new(FileIndexCache::default()),
        }
    }
}

impl ScanSourceFactory for ProjectedScanFactory {
    fn create(&self, ctx: &TaskContext) -> Result<Box<dyn ScanSource>> {
        // Only a `()` step gives the file record granularity to split on.
        let splittable = self
            .project
            .steps()
            .iter()
            .any(|s| matches!(s, PathStep::AllMembers));
        Ok(Box::new(ProjectedScan {
            splits: partition_splits(&self.dir, ctx, &self.options, splittable)?,
            project: self.project.clone(),
            ctx: ctx.clone(),
            pool: self.pool.clone(),
            cache: self.cache.clone(),
            stage1: self.options.stage1,
        }))
    }
}

struct ProjectedScan {
    splits: Vec<ScanSplit>,
    project: ProjectionPath,
    ctx: TaskContext,
    pool: Arc<ScanBufferPool>,
    cache: Arc<FileIndexCache>,
    stage1: Stage1Mode,
}

impl ScanSource for ProjectedScan {
    fn run(&mut self, emit: &mut TupleEmitter<'_>) -> Result<()> {
        let mut item_bytes = Vec::new();
        for split in &self.splits {
            let started = Instant::now();
            let mut tuples = 0u64;
            let mut err = None;
            let src_err =
                |e: jdm::JdmError| DataflowError::Source(format!("{}: {e}", split.path.display()));
            // The emitting sink shared by all text paths below.
            let mut sink = |item: Item| {
                item_bytes.clear();
                write_item(&item, &mut item_bytes);
                match emit(&[&item_bytes]) {
                    Ok(()) => {
                        tuples += 1;
                        true
                    }
                    Err(e) => {
                        err = Some(e);
                        false
                    }
                }
            };

            let (records, bytes);
            // Index-build attribution for the split profile: bytes run
            // through the structural-index build by this task, and the
            // stage-1 kernel that produced the index it navigated.
            let mut index_bytes = 0u64;
            let mut index_elapsed = Duration::ZERO;
            let mut kernel = None;
            if split.path.extension().map(|e| e == "adm").unwrap_or(false) {
                // Binary files navigate zero-copy instead of re-parsing
                // (never split: `of` is always 1 for .adm).
                let mut buf = self.pool.take_buf();
                read_file_into(&split.path, &mut buf)?;
                self.ctx
                    .counters
                    .bytes_scanned
                    .fetch_add(buf.len() as u64, Ordering::Relaxed);
                let root = jdm::binary::ItemRef::new(&buf)
                    .map_err(|e| DataflowError::Source(format!("{}: {e}", split.path.display())))?;
                project_binary(root, self.project.steps(), emit, &mut tuples)?;
                records = tuples;
                bytes = buf.len() as u64;
                self.pool.put_buf(buf);
            } else if split.of == 1 {
                // Whole file: pooled read buffer + pooled index tape.
                let mut buf = self.pool.take_buf();
                read_file_into(&split.path, &mut buf)?;
                self.ctx
                    .counters
                    .bytes_scanned
                    .fetch_add(buf.len() as u64, Ordering::Relaxed);
                let index_started = Instant::now();
                let index =
                    StructuralIndex::build_reusing_with(&buf, self.pool.take_tape(), self.stage1)
                        .map_err(src_err)?;
                index_elapsed = index_started.elapsed();
                index_bytes = buf.len() as u64;
                kernel = Some(index.kernel().label());
                let table = RecordTable::build(&buf, &index, &self.project).map_err(src_err)?;
                records = match &table {
                    Some(t) => {
                        let n = t.len();
                        t.project_range(&buf, &index, &self.project, 0..n, &mut sink)
                            .map_err(src_err)?;
                        n as u64
                    }
                    None => {
                        project_indexed(&buf, &index, &self.project, &mut sink).map_err(src_err)?;
                        tuples
                    }
                };
                bytes = buf.len() as u64;
                self.pool.put_tape(index.into_tape());
                self.pool.put_buf(buf);
            } else {
                // One record range of a shared file: the cache reads and
                // indexes the file once for all of its splits on this node.
                let shared = self
                    .cache
                    .get(&split.path, &self.project, &self.ctx, self.stage1)?;
                kernel = Some(shared.index.kernel().label());
                // The single shared build is attributed to whichever split
                // records first, so it is counted exactly once.
                if !shared.index_reported.swap(true, Ordering::Relaxed) {
                    index_bytes = shared.bytes.len() as u64;
                    index_elapsed = shared.index_elapsed;
                }
                let n = shared.table.len();
                let lo = n * split.split / split.of;
                let hi = n * (split.split + 1) / split.of;
                shared
                    .table
                    .project_range(
                        &shared.bytes,
                        &shared.index,
                        &self.project,
                        lo..hi,
                        &mut sink,
                    )
                    .map_err(src_err)?;
                records = (hi - lo) as u64;
                bytes = if hi > lo {
                    (shared.table.records[hi - 1].end - shared.table.records[lo].start) as u64
                } else {
                    0
                };
            }
            if let Some(e) = err {
                return Err(e);
            }
            self.ctx.record_split(SplitProfile {
                stage: self.ctx.stage,
                partition: self.ctx.partition,
                file: split.path.display().to_string(),
                split: split.split,
                of: split.of,
                records,
                tuples,
                bytes,
                elapsed: started.elapsed(),
                index_bytes,
                index_elapsed,
                kernel,
            });
        }
        Ok(())
    }
}

/// One fully loaded and indexed file, shared by the tasks scanning its
/// splits. Its memory is tracked for the duration of the job.
struct LoadedFile {
    bytes: Vec<u8>,
    index: StructuralIndex,
    table: RecordTable,
    mem: Arc<MemTracker>,
    tracked: usize,
    /// Wall time of the one structural-index build.
    index_elapsed: Duration,
    /// Set by the first split to record this file's index build into its
    /// profile, so the shared build is never double-counted.
    index_reported: AtomicBool,
}

impl Drop for LoadedFile {
    fn drop(&mut self) {
        self.mem.free_cached(self.tracked);
    }
}

/// Per-factory (per-job, per-process) cache of loaded files. The map
/// lock is held only to find the slot; the load itself runs inside the
/// slot's `OnceLock`, so concurrent tasks of other files proceed and
/// tasks of the same file block exactly until the single load finishes.
#[derive(Default)]
struct FileIndexCache {
    #[allow(clippy::type_complexity)]
    map: Mutex<HashMap<PathBuf, Arc<OnceLock<std::result::Result<Arc<LoadedFile>, String>>>>>,
}

impl FileIndexCache {
    fn get(
        &self,
        path: &Path,
        project: &ProjectionPath,
        ctx: &TaskContext,
        stage1: Stage1Mode,
    ) -> Result<Arc<LoadedFile>> {
        // Recover a poisoned map rather than panicking: the map itself is
        // structurally sound under poisoning (a panicked task can at worst
        // leave an extra empty slot), and panicking here would cascade one
        // task's failure into every concurrent query sharing the cache.
        let slot = self
            .map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(path.to_path_buf())
            .or_default()
            .clone();
        let loaded = slot.get_or_init(|| {
            let load = || -> Result<Arc<LoadedFile>> {
                let mut bytes = Vec::new();
                read_file_into(path, &mut bytes)?;
                ctx.counters
                    .bytes_scanned
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                let src_err =
                    |e: jdm::JdmError| DataflowError::Source(format!("{}: {e}", path.display()));
                let index_started = Instant::now();
                let index = StructuralIndex::build_with(&bytes, stage1).map_err(src_err)?;
                let index_elapsed = index_started.elapsed();
                let table = RecordTable::build(&bytes, &index, project)
                    .map_err(src_err)?
                    .ok_or_else(|| {
                        DataflowError::Source(format!(
                            "{}: split scan over a path with no () step",
                            path.display()
                        ))
                    })?;
                let tracked = bytes.len()
                    + index.len() * std::mem::size_of::<jdm::index::TapeEntry>()
                    + table.records.len() * std::mem::size_of::<jdm::project::RecordSpan>();
                // Cache class: resident for the job, reported in the
                // peak, exempt from the spill budget (operators cannot
                // release it by spilling).
                ctx.mem.alloc_cached(tracked);
                Ok(Arc::new(LoadedFile {
                    bytes,
                    index,
                    table,
                    mem: ctx.mem.clone(),
                    tracked,
                    index_elapsed,
                    index_reported: AtomicBool::new(false),
                }))
            };
            load().map_err(|e| e.to_string())
        });
        loaded.clone().map_err(DataflowError::Source)
    }
}

/// Navigate a binary item along a projection path, emitting matches.
fn project_binary(
    item: jdm::binary::ItemRef<'_>,
    steps: &[jdm::PathStep],
    emit: &mut TupleEmitter<'_>,
    tuples: &mut u64,
) -> Result<()> {
    use jdm::PathStep;
    let Some((first, rest)) = steps.split_first() else {
        *tuples += 1;
        return emit(&[item.bytes()]);
    };
    match first {
        PathStep::Key(k) => match item.get_key(k) {
            Some(v) => project_binary(v, rest, emit, tuples),
            None => Ok(()),
        },
        PathStep::Index(i) => {
            if *i >= 1 {
                if let Some(v) = item.member((*i - 1) as usize) {
                    return project_binary(v, rest, emit, tuples);
                }
            }
            Ok(())
        }
        PathStep::AllMembers => {
            if item.tag() == jdm::binary::tag::ARRAY {
                for m in item.members() {
                    project_binary(m, rest, emit, tuples)?;
                }
            }
            Ok(())
        }
    }
}

// ------------------------------------------------------ whole collection

/// Factory for the naive whole-collection scan (single partition).
pub struct WholeCollectionScanFactory {
    pub dir: PathBuf,
    /// Node count, to resolve per-node sub-directories.
    pub nodes: usize,
}

impl ScanSourceFactory for WholeCollectionScanFactory {
    fn create(&self, ctx: &TaskContext) -> Result<Box<dyn ScanSource>> {
        Ok(Box::new(WholeCollectionScan {
            files: all_files(&self.dir, self.nodes)?,
            ctx: ctx.clone(),
        }))
    }
}

struct WholeCollectionScan {
    files: Vec<PathBuf>,
    ctx: TaskContext,
}

impl ScanSource for WholeCollectionScan {
    fn run(&mut self, emit: &mut TupleEmitter<'_>) -> Result<()> {
        let mut buf = Vec::new();
        let mut items = Vec::with_capacity(self.files.len());
        let mut tracked = 0usize;
        for file in &self.files {
            read_file_into(file, &mut buf)?;
            self.ctx
                .counters
                .bytes_scanned
                .fetch_add(buf.len() as u64, Ordering::Relaxed);
            let item = parse_file(file, &buf)?;
            let sz = item.heap_size();
            tracked += sz;
            self.ctx.mem.alloc(sz);
            items.push(item);
        }
        let seq = Item::Sequence(items);
        let bytes = to_bytes(&seq);
        // The serialized sequence is also materialized (it becomes one
        // giant tuple).
        self.ctx.mem.alloc(bytes.len());
        tracked += bytes.len();
        let r = emit(&[&bytes]);
        self.ctx.mem.free(tracked);
        r
    }
}

// -------------------------------------------------------------- json-doc

/// Factory for `json-doc("file")`: one document, one tuple.
pub struct JsonDocScanFactory {
    pub file: PathBuf,
}

impl ScanSourceFactory for JsonDocScanFactory {
    fn create(&self, ctx: &TaskContext) -> Result<Box<dyn ScanSource>> {
        Ok(Box::new(JsonDocScan {
            file: self.file.clone(),
            ctx: ctx.clone(),
        }))
    }
}

struct JsonDocScan {
    file: PathBuf,
    ctx: TaskContext,
}

impl ScanSource for JsonDocScan {
    fn run(&mut self, emit: &mut TupleEmitter<'_>) -> Result<()> {
        let mut buf = Vec::new();
        read_file_into(&self.file, &mut buf)?;
        self.ctx
            .counters
            .bytes_scanned
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        let item = parse_file(&self.file, &buf)?;
        let bytes = to_bytes(&item);
        emit(&[&bytes])
    }
}

/// A source that emits exactly one empty tuple (EMPTY-TUPLE-SOURCE for
/// constant queries).
pub struct EmptyTupleSourceFactory;

impl ScanSourceFactory for EmptyTupleSourceFactory {
    fn create(&self, _ctx: &TaskContext) -> Result<Box<dyn ScanSource>> {
        Ok(Box::new(EmptyTupleScan))
    }
}

struct EmptyTupleScan;

impl ScanSource for EmptyTupleScan {
    fn run(&mut self, emit: &mut TupleEmitter<'_>) -> Result<()> {
        emit(&[])
    }
}

fn read_file_into(path: &Path, buf: &mut Vec<u8>) -> Result<()> {
    use std::io::Read;
    buf.clear();
    let mut f = std::fs::File::open(path)
        .map_err(|e| DataflowError::Source(format!("cannot open {}: {e}", path.display())))?;
    f.read_to_end(buf)
        .map_err(|e| DataflowError::Source(format!("cannot read {}: {e}", path.display())))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::context::CoreGate;
    use dataflow::stats::{Counters, MemTracker};

    fn ctx(partition: usize, num_partitions: usize, ppn: usize) -> TaskContext {
        TaskContext {
            stage: 0,
            partition,
            num_partitions,
            node: partition / ppn.max(1),
            partitions_per_node: ppn,
            frame_size: 4096,
            mem: MemTracker::new(),
            counters: Counters::new(),
            gate: CoreGate::unlimited(),
            profiler: None,
            spill: dataflow::spill::SpillCtx::unlimited(),
            cancel: dataflow::CancelToken::new(),
        }
    }

    fn layout(nodes: usize, files_per_node: usize) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("vxq-scan-layout-{nodes}-{files_per_node}"));
        let _ = std::fs::remove_dir_all(&dir);
        for n in 0..nodes {
            let nd = dir.join(format!("node{n}"));
            std::fs::create_dir_all(&nd).unwrap();
            for f in 0..files_per_node {
                std::fs::write(nd.join(format!("part{f}.json")), b"{}").unwrap();
            }
        }
        dir
    }

    #[test]
    fn partitions_cover_all_files_exactly_once() {
        let dir = layout(3, 4);
        let opts = ScanOptions::default();
        for (nodes, ppn) in [(1usize, 1usize), (1, 4), (3, 2), (6, 1), (2, 3)] {
            let total = nodes * ppn;
            let mut seen = Vec::new();
            for p in 0..total {
                seen.extend(
                    partition_splits(&dir, &ctx(p, total, ppn), &opts, true)
                        .unwrap()
                        .into_iter()
                        .map(|s| s.path),
                );
            }
            seen.sort();
            let mut all = all_files(&dir, 3).unwrap();
            all.sort();
            assert_eq!(
                seen, all,
                "cluster {nodes}x{ppn} must cover every file once"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn split_ranges_cover_each_file_exactly_once() {
        // With a tiny split threshold every file chops into one split per
        // partition; the (path, split, of) triples across partitions must
        // tile each file exactly.
        let dir = layout(1, 3);
        let opts = ScanOptions {
            intra_file_splits: true,
            min_split_bytes: 1,
            ..ScanOptions::default()
        };
        let ppn = 4;
        let mut seen: Vec<(PathBuf, usize, usize)> = Vec::new();
        for p in 0..ppn {
            for s in partition_splits(&dir, &ctx(p, ppn, ppn), &opts, true).unwrap() {
                seen.push((s.path, s.split, s.of));
            }
        }
        seen.sort();
        let mut expected = Vec::new();
        for f in all_files(&dir, 1).unwrap() {
            // 2-byte files, threshold 1 byte: 2 pieces (clamped by size).
            for j in 0..2 {
                expected.push((f.clone(), j, 2));
            }
        }
        expected.sort();
        assert_eq!(seen, expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsplittable_paths_get_whole_files() {
        let dir = layout(1, 2);
        let opts = ScanOptions {
            intra_file_splits: true,
            min_split_bytes: 1,
            ..ScanOptions::default()
        };
        for p in 0..2 {
            for s in partition_splits(&dir, &ctx(p, 2, 2), &opts, false).unwrap() {
                assert_eq!(s.of, 1, "no () step means whole-file scans");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn matching_cluster_gets_node_locality() {
        let dir = layout(2, 2);
        let opts = ScanOptions::default();
        // 2 nodes x 1 partition: node 0 reads only node0's files.
        let files = partition_splits(&dir, &ctx(0, 2, 1), &opts, true).unwrap();
        assert!(files
            .iter()
            .all(|s| s.path.to_string_lossy().contains("node0")));
        let files1 = partition_splits(&dir, &ctx(1, 2, 1), &opts, true).unwrap();
        assert!(files1
            .iter()
            .all(|s| s.path.to_string_lossy().contains("node1")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flat_directory_is_shared_disjointly() {
        let dir = std::env::temp_dir().join("vxq-scan-flat");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for f in 0..5 {
            std::fs::write(dir.join(format!("f{f}.json")), b"{}").unwrap();
        }
        let opts = ScanOptions::default();
        let a = partition_splits(&dir, &ctx(0, 2, 2), &opts, true).unwrap();
        let b = partition_splits(&dir, &ctx(1, 2, 2), &opts, true).unwrap();
        assert_eq!(a.len() + b.len(), 5);
        assert!(a.iter().all(|s| !b.contains(s)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lpt_balances_a_ten_to_one_skewed_directory() {
        // One 10x file plus five 1x files: index round-robin over 2
        // partitions would put 10+1+1 = 12 units on one side and 3 on the
        // other. Size-aware splitting + LPT must balance within 20%.
        let dir = std::env::temp_dir().join("vxq-scan-skew");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a-big.json"), vec![b' '; 10 * 1024]).unwrap();
        for f in 0..5 {
            std::fs::write(dir.join(format!("b-small{f}.json")), vec![b' '; 1024]).unwrap();
        }
        let opts = ScanOptions {
            intra_file_splits: true,
            min_split_bytes: 1024,
            ..ScanOptions::default()
        };
        let loads: Vec<u64> = (0..2)
            .map(|p| {
                partition_splits(&dir, &ctx(p, 2, 2), &opts, true)
                    .unwrap()
                    .iter()
                    .map(|s| s.bytes)
                    .sum()
            })
            .collect();
        let (max, min) = (*loads.iter().max().unwrap(), *loads.iter().min().unwrap());
        assert!(min > 0, "both partitions must get work: {loads:?}");
        assert!(
            max as f64 <= min as f64 * 1.2,
            "10:1 skew must balance within 20%: {loads:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adm_files_never_split() {
        let dir = std::env::temp_dir().join("vxq-scan-adm-split");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let item = jdm::parse::parse_item(br#"{"root": [1, 2, 3, 4]}"#).unwrap();
        std::fs::write(dir.join("a.adm"), jdm::binary::to_bytes(&item)).unwrap();
        let opts = ScanOptions {
            intra_file_splits: true,
            min_split_bytes: 1,
            ..ScanOptions::default()
        };
        for p in 0..2 {
            for s in partition_splits(&dir, &ctx(p, 2, 2), &opts, true).unwrap() {
                assert_eq!(s.of, 1, "binary files have no text record ranges");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adm_files_are_listed_and_parsed() {
        let dir = std::env::temp_dir().join("vxq-scan-adm");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let item = jdm::parse::parse_item(br#"{"root": [1, 2]}"#).unwrap();
        std::fs::write(dir.join("a.adm"), jdm::binary::to_bytes(&item)).unwrap();
        std::fs::write(dir.join("b.json"), br#"{"root": [3]}"#).unwrap();
        std::fs::write(dir.join("ignored.txt"), b"junk").unwrap();
        let files = all_files(&dir, 1).unwrap();
        assert_eq!(files.len(), 2, "only .adm and .json count: {files:?}");
        for f in &files {
            let bytes = std::fs::read(f).unwrap();
            let parsed = parse_file(f, &bytes).unwrap();
            assert!(parsed.get_key("root").is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_strips_leading_slash() {
        let root = std::path::Path::new("/data");
        assert_eq!(resolve_collection(root, "/sensors"), root.join("sensors"));
        assert_eq!(resolve_collection(root, "books"), root.join("books"));
    }
}
