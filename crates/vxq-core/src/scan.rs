//! DATASCAN runtimes: how collection data reaches the dataflow.
//!
//! Three scan flavours, matching the plan shapes before/after the rules:
//!
//! * [`ProjectedScanFactory`] — the post-pipelining-rules DATASCAN: each
//!   partition reads its share of the files and **streams the projected
//!   items** straight out of the parser ([`jdm::project`]), one tuple per
//!   item. Partitioned-parallel, bounded memory.
//! * [`WholeCollectionScanFactory`] — the naive `ASSIGN collection(...)`:
//!   a *single* partition parses every file completely and emits **one
//!   tuple holding the sequence of all file items** (what the paper's
//!   Fig. 5 plan does before DATASCAN is introduced — and why those
//!   experiments only use small collections). The materialized sequence
//!   is reported to the memory tracker.
//! * [`JsonDocScanFactory`] — `json-doc("file")`: one document, one tuple.
//!
//! ## Collection layout
//!
//! A collection path (e.g. `/sensors`) resolves to
//! `<data_root>/sensors/`. If that directory contains `node0/`, `node1/`,
//! … sub-directories, node *n* owns `node{n}` and its partitions share
//! its files round-robin (the paper's "each node has a unique set of JSON
//! files stored under the same directory"). Otherwise files are assigned
//! round-robin across all partitions.

use dataflow::context::TaskContext;
use dataflow::ops::eval::{ScanSource, ScanSourceFactory, TupleEmitter};
use dataflow::{DataflowError, Result};
use jdm::binary::{to_bytes, write_item};
use jdm::parse::parse_item;
use jdm::project::project_stream;
use jdm::{Item, ProjectionPath};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;

/// Resolve a query collection path under the engine's data root.
pub fn resolve_collection(data_root: &Path, coll: &str) -> PathBuf {
    data_root.join(coll.trim_start_matches('/'))
}

/// Enumerate a directory's data files in name order. `.json` files hold
/// JSON text; `.adm` files hold a pre-converted binary item (the
/// AsterixDB-load baseline's internal format).
fn list_json_files(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let entries = std::fs::read_dir(dir)
        .map_err(|e| DataflowError::Source(format!("cannot read {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| DataflowError::Source(e.to_string()))?;
        let p = entry.path();
        if p.is_file()
            && p.extension()
                .map(|e| e == "json" || e == "adm")
                .unwrap_or(false)
        {
            files.push(p);
        }
    }
    files.sort();
    Ok(files)
}

/// Parse one data file (text or binary) into an item.
fn parse_file(path: &Path, buf: &[u8]) -> Result<Item> {
    let binary = path.extension().map(|e| e == "adm").unwrap_or(false);
    let r = if binary {
        jdm::binary::ItemRef::new(buf).and_then(|r| r.to_item())
    } else {
        parse_item(buf)
    };
    r.map_err(|e| DataflowError::Source(format!("{}: {e}", path.display())))
}

/// The collection's `node<i>` sub-directories, in index order (empty when
/// the collection is a flat directory of files).
fn node_dirs(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for i in 0.. {
        let d = dir.join(format!("node{i}"));
        if d.is_dir() {
            out.push(d);
        } else {
            break;
        }
    }
    Ok(out)
}

/// The files a given partition is responsible for.
///
/// Data-node directory `d` is owned by cluster node `d % cluster_nodes`
/// (exact locality when the dataset was generated for this cluster size;
/// balanced reassignment when node counts differ, as in the speed-up
/// experiments that run one dataset on growing clusters). Within a node,
/// files are split round-robin over its partitions.
pub fn partition_files(dir: &Path, ctx: &TaskContext) -> Result<Vec<PathBuf>> {
    let ppn = ctx.partitions_per_node.max(1);
    let cluster_nodes = ctx.num_partitions.div_ceil(ppn);
    let dirs = node_dirs(dir)?;
    if dirs.is_empty() {
        // Flat collection: round-robin across all partitions.
        let files = list_json_files(dir)?;
        return Ok(files
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % ctx.num_partitions.max(1) == ctx.partition)
            .map(|(_, f)| f)
            .collect());
    }
    let local = ctx.partition % ppn;
    let mut files = Vec::new();
    for (d, node_dir) in dirs.iter().enumerate() {
        if d % cluster_nodes.max(1) != ctx.node {
            continue;
        }
        let node_files = list_json_files(node_dir)?;
        files.extend(
            node_files
                .into_iter()
                .enumerate()
                .filter(|(i, _)| i % ppn == local)
                .map(|(_, f)| f),
        );
    }
    Ok(files)
}

/// Every file of the collection, across all node directories.
pub fn all_files(dir: &Path, _nodes: usize) -> Result<Vec<PathBuf>> {
    let dirs = node_dirs(dir)?;
    if dirs.is_empty() {
        return list_json_files(dir);
    }
    let mut out = Vec::new();
    for d in dirs {
        out.extend(list_json_files(&d)?);
    }
    Ok(out)
}

// ------------------------------------------------------------ projected

/// Factory for the projecting partitioned DATASCAN.
pub struct ProjectedScanFactory {
    pub dir: PathBuf,
    pub project: ProjectionPath,
}

impl ScanSourceFactory for ProjectedScanFactory {
    fn create(&self, ctx: &TaskContext) -> Result<Box<dyn ScanSource>> {
        Ok(Box::new(ProjectedScan {
            files: partition_files(&self.dir, ctx)?,
            project: self.project.clone(),
            ctx: ctx.clone(),
        }))
    }
}

struct ProjectedScan {
    files: Vec<PathBuf>,
    project: ProjectionPath,
    ctx: TaskContext,
}

impl ScanSource for ProjectedScan {
    fn run(&mut self, emit: &mut TupleEmitter<'_>) -> Result<()> {
        let mut buf = Vec::new();
        let mut item_bytes = Vec::new();
        for file in &self.files {
            read_file_into(file, &mut buf)?;
            self.ctx
                .counters
                .bytes_scanned
                .fetch_add(buf.len() as u64, Ordering::Relaxed);
            if file.extension().map(|e| e == "adm").unwrap_or(false) {
                // Binary files navigate zero-copy instead of re-parsing.
                let root = jdm::binary::ItemRef::new(&buf)
                    .map_err(|e| DataflowError::Source(format!("{}: {e}", file.display())))?;
                project_binary(root, self.project.steps(), emit)?;
                continue;
            }
            let mut err = None;
            project_stream(&buf, &self.project, |item| {
                item_bytes.clear();
                write_item(&item, &mut item_bytes);
                if let Err(e) = emit(&[&item_bytes]) {
                    err = Some(e);
                    return false;
                }
                true
            })
            .map_err(|e| DataflowError::Source(format!("{}: {e}", file.display())))?;
            if let Some(e) = err {
                return Err(e);
            }
        }
        Ok(())
    }
}

/// Navigate a binary item along a projection path, emitting matches.
fn project_binary(
    item: jdm::binary::ItemRef<'_>,
    steps: &[jdm::PathStep],
    emit: &mut TupleEmitter<'_>,
) -> Result<()> {
    use jdm::PathStep;
    let Some((first, rest)) = steps.split_first() else {
        return emit(&[item.bytes()]);
    };
    match first {
        PathStep::Key(k) => match item.get_key(k) {
            Some(v) => project_binary(v, rest, emit),
            None => Ok(()),
        },
        PathStep::Index(i) => {
            if *i >= 1 {
                if let Some(v) = item.member((*i - 1) as usize) {
                    return project_binary(v, rest, emit);
                }
            }
            Ok(())
        }
        PathStep::AllMembers => {
            if item.tag() == jdm::binary::tag::ARRAY {
                for m in item.members() {
                    project_binary(m, rest, emit)?;
                }
            }
            Ok(())
        }
    }
}

// ------------------------------------------------------ whole collection

/// Factory for the naive whole-collection scan (single partition).
pub struct WholeCollectionScanFactory {
    pub dir: PathBuf,
    /// Node count, to resolve per-node sub-directories.
    pub nodes: usize,
}

impl ScanSourceFactory for WholeCollectionScanFactory {
    fn create(&self, ctx: &TaskContext) -> Result<Box<dyn ScanSource>> {
        Ok(Box::new(WholeCollectionScan {
            files: all_files(&self.dir, self.nodes)?,
            ctx: ctx.clone(),
        }))
    }
}

struct WholeCollectionScan {
    files: Vec<PathBuf>,
    ctx: TaskContext,
}

impl ScanSource for WholeCollectionScan {
    fn run(&mut self, emit: &mut TupleEmitter<'_>) -> Result<()> {
        let mut buf = Vec::new();
        let mut items = Vec::with_capacity(self.files.len());
        let mut tracked = 0usize;
        for file in &self.files {
            read_file_into(file, &mut buf)?;
            self.ctx
                .counters
                .bytes_scanned
                .fetch_add(buf.len() as u64, Ordering::Relaxed);
            let item = parse_file(file, &buf)?;
            let sz = item.heap_size();
            tracked += sz;
            self.ctx.mem.alloc(sz);
            items.push(item);
        }
        let seq = Item::Sequence(items);
        let bytes = to_bytes(&seq);
        // The serialized sequence is also materialized (it becomes one
        // giant tuple).
        self.ctx.mem.alloc(bytes.len());
        tracked += bytes.len();
        let r = emit(&[&bytes]);
        self.ctx.mem.free(tracked);
        r
    }
}

// -------------------------------------------------------------- json-doc

/// Factory for `json-doc("file")`: one document, one tuple.
pub struct JsonDocScanFactory {
    pub file: PathBuf,
}

impl ScanSourceFactory for JsonDocScanFactory {
    fn create(&self, ctx: &TaskContext) -> Result<Box<dyn ScanSource>> {
        Ok(Box::new(JsonDocScan {
            file: self.file.clone(),
            ctx: ctx.clone(),
        }))
    }
}

struct JsonDocScan {
    file: PathBuf,
    ctx: TaskContext,
}

impl ScanSource for JsonDocScan {
    fn run(&mut self, emit: &mut TupleEmitter<'_>) -> Result<()> {
        let mut buf = Vec::new();
        read_file_into(&self.file, &mut buf)?;
        self.ctx
            .counters
            .bytes_scanned
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        let item = parse_file(&self.file, &buf)?;
        let bytes = to_bytes(&item);
        emit(&[&bytes])
    }
}

/// A source that emits exactly one empty tuple (EMPTY-TUPLE-SOURCE for
/// constant queries).
pub struct EmptyTupleSourceFactory;

impl ScanSourceFactory for EmptyTupleSourceFactory {
    fn create(&self, _ctx: &TaskContext) -> Result<Box<dyn ScanSource>> {
        Ok(Box::new(EmptyTupleScan))
    }
}

struct EmptyTupleScan;

impl ScanSource for EmptyTupleScan {
    fn run(&mut self, emit: &mut TupleEmitter<'_>) -> Result<()> {
        emit(&[])
    }
}

fn read_file_into(path: &Path, buf: &mut Vec<u8>) -> Result<()> {
    use std::io::Read;
    buf.clear();
    let mut f = std::fs::File::open(path)
        .map_err(|e| DataflowError::Source(format!("cannot open {}: {e}", path.display())))?;
    f.read_to_end(buf)
        .map_err(|e| DataflowError::Source(format!("cannot read {}: {e}", path.display())))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::context::CoreGate;
    use dataflow::stats::{Counters, MemTracker};

    fn ctx(partition: usize, num_partitions: usize, ppn: usize) -> TaskContext {
        TaskContext {
            stage: 0,
            partition,
            num_partitions,
            node: partition / ppn.max(1),
            partitions_per_node: ppn,
            frame_size: 4096,
            mem: MemTracker::new(),
            counters: Counters::new(),
            gate: CoreGate::unlimited(),
            profiler: None,
        }
    }

    fn layout(nodes: usize, files_per_node: usize) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("vxq-scan-layout-{nodes}-{files_per_node}"));
        let _ = std::fs::remove_dir_all(&dir);
        for n in 0..nodes {
            let nd = dir.join(format!("node{n}"));
            std::fs::create_dir_all(&nd).unwrap();
            for f in 0..files_per_node {
                std::fs::write(nd.join(format!("part{f}.json")), b"{}").unwrap();
            }
        }
        dir
    }

    #[test]
    fn partitions_cover_all_files_exactly_once() {
        let dir = layout(3, 4);
        for (nodes, ppn) in [(1usize, 1usize), (1, 4), (3, 2), (6, 1), (2, 3)] {
            let total = nodes * ppn;
            let mut seen = Vec::new();
            for p in 0..total {
                seen.extend(partition_files(&dir, &ctx(p, total, ppn)).unwrap());
            }
            seen.sort();
            let mut all = all_files(&dir, 3).unwrap();
            all.sort();
            assert_eq!(
                seen, all,
                "cluster {nodes}x{ppn} must cover every file once"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn matching_cluster_gets_node_locality() {
        let dir = layout(2, 2);
        // 2 nodes x 1 partition: node 0 reads only node0's files.
        let files = partition_files(&dir, &ctx(0, 2, 1)).unwrap();
        assert!(files.iter().all(|f| f.to_string_lossy().contains("node0")));
        let files1 = partition_files(&dir, &ctx(1, 2, 1)).unwrap();
        assert!(files1.iter().all(|f| f.to_string_lossy().contains("node1")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flat_directory_round_robins() {
        let dir = std::env::temp_dir().join("vxq-scan-flat");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for f in 0..5 {
            std::fs::write(dir.join(format!("f{f}.json")), b"{}").unwrap();
        }
        let a = partition_files(&dir, &ctx(0, 2, 2)).unwrap();
        let b = partition_files(&dir, &ctx(1, 2, 2)).unwrap();
        assert_eq!(a.len() + b.len(), 5);
        assert!(a.iter().all(|f| !b.contains(f)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adm_files_are_listed_and_parsed() {
        let dir = std::env::temp_dir().join("vxq-scan-adm");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let item = jdm::parse::parse_item(br#"{"root": [1, 2]}"#).unwrap();
        std::fs::write(dir.join("a.adm"), jdm::binary::to_bytes(&item)).unwrap();
        std::fs::write(dir.join("b.json"), br#"{"root": [3]}"#).unwrap();
        std::fs::write(dir.join("ignored.txt"), b"junk").unwrap();
        let files = all_files(&dir, 1).unwrap();
        assert_eq!(files.len(), 2, "only .adm and .json count: {files:?}");
        for f in &files {
            let bytes = std::fs::read(f).unwrap();
            let parsed = parse_file(f, &bytes).unwrap();
            assert!(parsed.get_key("root").is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_strips_leading_slash() {
        let root = std::path::Path::new("/data");
        assert_eq!(resolve_collection(root, "/sensors"), root.join("sensors"));
        assert_eq!(resolve_collection(root, "books"), root.join("books"));
    }
}
