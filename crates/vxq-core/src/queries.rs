//! The paper's evaluation queries (§5.2, Listings 7–11) and the bookstore
//! running examples (§4, Listings 2–5), verbatim modulo whitespace.
//!
//! The sensor queries assume the GHCN-style collection layout produced by
//! the `datagen` crate under the collection name `/sensors`.

/// Q0 — selection (Listing 7): all December-25 readings from 2003 on.
pub const Q0: &str = r#"
for $r in collection("/sensors")("root")()("results")()
let $datetime := dateTime(data($r("date")))
where year-from-dateTime($datetime) ge 2003
  and month-from-dateTime($datetime) eq 12
  and day-from-dateTime($datetime) eq 25
return $r
"#;

/// Q0b — selection over a narrower path (Listing 8): the input path is
/// extended by `("date")`, so only date strings flow through the plan.
pub const Q0B: &str = r#"
for $r in collection("/sensors")("root")()("results")()("date")
let $datetime := dateTime(data($r))
where year-from-dateTime($datetime) ge 2003
  and month-from-dateTime($datetime) eq 12
  and day-from-dateTime($datetime) eq 25
return $r
"#;

/// Q1 — group-by aggregation (Listing 9): stations reporting TMIN per date.
pub const Q1: &str = r#"
for $r in collection("/sensors")("root")()("results")()
where $r("dataType") eq "TMIN"
group by $date := $r("date")
return count($r("station"))
"#;

/// Q1b — Q1 "already written in an optimized way" (Listing 10).
pub const Q1B: &str = r#"
for $r in collection("/sensors")("root")()("results")()
where $r("dataType") eq "TMIN"
group by $date := $r("date")
return count(for $i in $r return $i("station"))
"#;

/// Q2 — self-join + aggregation (Listing 11): average daily temperature
/// difference per station.
pub const Q2: &str = r#"
avg(
  for $r_min in collection("/sensors")("root")()("results")()
  for $r_max in collection("/sensors")("root")()("results")()
  where $r_min("station") eq $r_max("station")
    and $r_min("date") eq $r_max("date")
    and $r_min("dataType") eq "TMIN"
    and $r_max("dataType") eq "TMAX"
  return $r_max("value") - $r_min("value")
) div 10
"#;

/// All five sensor queries with their paper names.
pub const SENSOR_QUERIES: [(&str, &str); 5] = [
    ("Q0", Q0),
    ("Q0b", Q0B),
    ("Q1", Q1),
    ("Q1b", Q1B),
    ("Q2", Q2),
];

/// Listing 2: all books from a single bookstore document.
pub const BOOKSTORE_DOC: &str = r#"json-doc("books.json")("bookstore")("book")()"#;

/// Listing 3: all books from a bookstore collection.
pub const BOOKSTORE_COLLECTION: &str = r#"collection("/books")("bookstore")("book")()"#;

/// Listing 4: books per author.
pub const BOOKSTORE_COUNT: &str = r#"
for $x in collection("/books")("bookstore")("book")()
group by $author := $x("author")
return count($x("title"))
"#;

/// Listing 5: books per author, second form.
pub const BOOKSTORE_COUNT2: &str = r#"
for $x in collection("/books")("bookstore")("book")()
group by $author := $x("author")
return count(for $j in $x return $j("title"))
"#;
