//! Engine-level errors.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Anything that can go wrong between query text and result rows.
#[derive(Debug)]
pub enum EngineError {
    /// Lexing / parsing / translation.
    Parse(jsoniq::ParseError),
    /// Physical compilation (unsupported plan shapes, missing keys).
    Compile(String),
    /// Runtime execution.
    Execute(dataflow::DataflowError),
    /// Data access outside the runtime (setup, paths).
    Io(std::io::Error),
    /// The query service refused admission: the wait queue is full.
    Overloaded {
        /// Queries waiting when this one was refused.
        queued: usize,
        /// The service's configured queue limit.
        queue_limit: usize,
    },
    /// The query was cancelled by its client before completing.
    Cancelled,
    /// The query's deadline passed before its result was delivered.
    DeadlineExceeded,
    /// The query service is shutting down and no longer accepts work.
    ServiceClosed,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Compile(m) => write!(f, "compile error: {m}"),
            EngineError::Execute(e) => write!(f, "execution error: {e}"),
            EngineError::Io(e) => write!(f, "I/O error: {e}"),
            EngineError::Overloaded {
                queued,
                queue_limit,
            } => write!(
                f,
                "service overloaded: {queued} queries queued (limit {queue_limit})"
            ),
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            EngineError::ServiceClosed => write!(f, "query service is shut down"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<jsoniq::ParseError> for EngineError {
    fn from(e: jsoniq::ParseError) -> Self {
        EngineError::Parse(e)
    }
}
impl From<dataflow::DataflowError> for EngineError {
    fn from(e: dataflow::DataflowError) -> Self {
        EngineError::Execute(e)
    }
}
impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}
