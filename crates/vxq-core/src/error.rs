//! Engine-level errors.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Anything that can go wrong between query text and result rows.
#[derive(Debug)]
pub enum EngineError {
    /// Lexing / parsing / translation.
    Parse(jsoniq::ParseError),
    /// Physical compilation (unsupported plan shapes, missing keys).
    Compile(String),
    /// Runtime execution.
    Execute(dataflow::DataflowError),
    /// Data access outside the runtime (setup, paths).
    Io(std::io::Error),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Compile(m) => write!(f, "compile error: {m}"),
            EngineError::Execute(e) => write!(f, "execution error: {e}"),
            EngineError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<jsoniq::ParseError> for EngineError {
    fn from(e: jsoniq::ParseError) -> Self {
        EngineError::Parse(e)
    }
}
impl From<dataflow::DataflowError> for EngineError {
    fn from(e: dataflow::DataflowError) -> Self {
        EngineError::Execute(e)
    }
}
impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}
