//! Reusable scan buffers.
//!
//! Every DATASCAN task used to allocate a fresh read buffer per run and a
//! fresh structural-index tape per file. The engine now owns one
//! [`ScanBufferPool`] shared by every scan task of every query it runs:
//! buffers and tapes are checked out for the duration of one file and
//! returned with their capacity intact, so steady-state scanning does not
//! allocate at all (the pool warms up to the largest file seen).
//!
//! The pool is deliberately dumb — two mutexed free lists with a bounded
//! entry count. The free lists stay structurally sound if a holder of the
//! lock panics, so poisoned locks are recovered rather than propagating
//! one task's panic into every concurrent scan sharing the pool. Scan tasks hold a buffer across an entire file read +
//! parse, so the lock is touched twice per file, not per operation.

use jdm::index::TapeEntry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum free-list entries kept per kind; beyond this, returned buffers
/// are dropped (bounds pool memory to the cluster's partition count in
/// practice).
const MAX_POOLED: usize = 32;

/// Shared pool of file-read buffers and structural-index tapes.
#[derive(Debug, Default)]
pub struct ScanBufferPool {
    bufs: Mutex<Vec<Vec<u8>>>,
    tapes: Mutex<Vec<Vec<TapeEntry>>>,
    reuses: AtomicU64,
}

impl ScanBufferPool {
    pub fn new() -> Self {
        ScanBufferPool::default()
    }

    /// Check out a (cleared) read buffer.
    pub fn take_buf(&self) -> Vec<u8> {
        match self.bufs.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            Some(b) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => Vec::new(),
        }
    }

    /// Return a read buffer to the pool.
    pub fn put_buf(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut bufs = self.bufs.lock().unwrap_or_else(|e| e.into_inner());
        if bufs.len() < MAX_POOLED && buf.capacity() > 0 {
            bufs.push(buf);
        }
    }

    /// Check out a (cleared) index tape.
    pub fn take_tape(&self) -> Vec<TapeEntry> {
        match self.tapes.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            Some(t) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                t
            }
            None => Vec::new(),
        }
    }

    /// Return an index tape to the pool.
    pub fn put_tape(&self, mut tape: Vec<TapeEntry>) {
        tape.clear();
        let mut tapes = self.tapes.lock().unwrap_or_else(|e| e.into_inner());
        if tapes.len() < MAX_POOLED && tape.capacity() > 0 {
            tapes.push(tape);
        }
    }

    /// How many checkouts were served from the free lists (observability
    /// and tests).
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_round_trip_with_capacity() {
        let pool = ScanBufferPool::new();
        let mut b = pool.take_buf();
        assert_eq!(pool.reuses(), 0);
        b.extend_from_slice(&[0u8; 4096]);
        let cap = b.capacity();
        pool.put_buf(b);
        let b2 = pool.take_buf();
        assert_eq!(pool.reuses(), 1);
        assert!(b2.is_empty());
        assert_eq!(b2.capacity(), cap, "capacity survives pooling");
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let pool = ScanBufferPool::new();
        pool.put_buf(Vec::new());
        let _ = pool.take_buf();
        assert_eq!(pool.reuses(), 0);
    }

    #[test]
    fn tapes_round_trip() {
        let pool = ScanBufferPool::new();
        let idx = jdm::index::StructuralIndex::build(b"[1, 2, 3]").unwrap();
        pool.put_tape(idx.into_tape());
        let t = pool.take_tape();
        assert!(t.is_empty());
        assert!(t.capacity() >= 5);
        assert_eq!(pool.reuses(), 1);
    }
}
