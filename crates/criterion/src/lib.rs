//! Vendored, dependency-free subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the surface the workspace's benches use — `Criterion`,
//! `benchmark_group` with `sample_size` / `warm_up_time` /
//! `measurement_time` / `throughput` / `bench_function` / `finish`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!`
//! macros — backed by a simple wall-clock harness that warms up, takes
//! `sample_size` samples, and prints mean/min/max per benchmark (plus
//! throughput when configured).

use std::time::{Duration, Instant};

pub mod measurement {
    /// Marker trait; only wall-time measurement exists here.
    pub trait Measurement {}

    pub struct WallTime;
    impl Measurement for WallTime {}
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into();
        let mut g = self.benchmark_group(name.clone());
        g.bench_function(name, f);
        g.finish();
        self
    }
}

pub struct BenchmarkGroup<'a, M: measurement::Measurement> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<(&'a (), M)>,
}

impl<M: measurement::Measurement> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();

        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut b);
        }

        // Sampling: spread the measurement budget over sample_size samples.
        let mut samples = Vec::with_capacity(self.sample_size);
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            b.iters = 0;
            let start = Instant::now();
            while start.elapsed() < budget_per_sample || b.iters == 0 {
                f(&mut b);
            }
            if b.iters > 0 {
                samples.push(b.elapsed / b.iters as u32);
            }
        }
        samples.sort();
        let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        let (min, max) = (
            samples.first().copied().unwrap_or_default(),
            samples.last().copied().unwrap_or_default(),
        );
        let mut line = format!(
            "{}/{}: mean {:?} (min {:?}, max {:?}, {} samples)",
            self.name,
            id,
            mean,
            min,
            max,
            samples.len()
        );
        if let Some(t) = self.throughput {
            let per_sec = |units: u64| {
                if mean.is_zero() {
                    0.0
                } else {
                    units as f64 / mean.as_secs_f64()
                }
            };
            match t {
                Throughput::Bytes(n) => {
                    line.push_str(&format!(" — {:.1} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
                }
                Throughput::Elements(n) => {
                    line.push_str(&format!(" — {:.0} elem/s", per_sec(n)));
                }
            }
        }
        println!("{line}");
        self
    }

    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; accumulates timed iterations.
#[derive(Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        std::hint::black_box(out);
    }
}

/// Prevent the optimizer from eliding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(6));
        let mut calls = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        g.finish();
        assert!(calls > 0, "benchmark body must have run");
    }
}
