//! The logical operator tree.
//!
//! Operators mirror the paper's §3.2 inventory. Plans are built by the
//! JSONiq translator in their *naive* form (the shapes of Figs. 3, 5 and
//! 9, complete with `promote`/`data`/`treat` scaffolding) and then
//! transformed by [`crate::rules`].

use crate::expr::{AggFunc, LogicalExpr};
use jdm::ProjectionPath;
use std::fmt;

/// A logical variable. Variables are assigned once by the operator that
/// introduces them (ASSIGN/UNNEST/DATASCAN/AGGREGATE/GROUP-BY keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

/// Monotonic variable id generator used by the translator and the rules.
#[derive(Debug, Default, Clone)]
pub struct VarGen {
    next: u32,
}

impl VarGen {
    pub fn new() -> Self {
        VarGen::default()
    }

    /// Start above any id already present in a plan.
    pub fn above(plan: &LogicalOp) -> Self {
        let mut max = 0;
        plan.visit(&mut |op| {
            for v in op.produced_vars() {
                max = max.max(v.0 + 1);
            }
        });
        VarGen { next: max }
    }

    pub fn fresh(&mut self) -> VarId {
        let v = VarId(self.next);
        self.next += 1;
        v
    }
}

/// Where a DATASCAN reads from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DataSource {
    /// Collection directory (one sub-directory of files per node) or a
    /// single file for `json-doc`.
    pub path: String,
    /// True for partitioned collections, false for single documents.
    pub partitioned: bool,
}

/// A logical operator. Single-input operators own their input; the tree's
/// leaves are EMPTY-TUPLE-SOURCE (or NESTED-TUPLE-SOURCE inside nested
/// plans).
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalOp {
    /// Produces one empty tuple (paper §3.2).
    EmptyTupleSource,
    /// Leaf of a nested plan (GROUP-BY inner focus / SUBPLAN): receives
    /// the tuples of the group / the bound sequence.
    NestedTupleSource,
    /// Scan a data source, extending the input tuple with one field per
    /// item produced. `project` is the pushed-down path — the paper's
    /// "second argument" of DATASCAN (§4.2). Empty path = whole files.
    DataScan {
        source: DataSource,
        project: ProjectionPath,
        var: VarId,
        input: Box<LogicalOp>,
    },
    /// Evaluate a scalar expression, bind the result to `var`.
    Assign {
        var: VarId,
        expr: LogicalExpr,
        input: Box<LogicalOp>,
    },
    /// Keep tuples where `cond` is true.
    Select {
        cond: LogicalExpr,
        input: Box<LogicalOp>,
    },
    /// One output tuple per item of the unnesting expression.
    Unnest {
        var: VarId,
        expr: LogicalExpr,
        input: Box<LogicalOp>,
    },
    /// Fold the whole input stream into one tuple (`var := func(arg)`).
    Aggregate {
        var: VarId,
        func: AggFunc,
        arg: LogicalExpr,
        input: Box<LogicalOp>,
    },
    /// Run `nested` (rooted at NESTED-TUPLE-SOURCE) for each input tuple;
    /// the nested plan's aggregate variable extends the tuple.
    Subplan {
        nested: Box<LogicalOp>,
        input: Box<LogicalOp>,
    },
    /// Group by `keys`; for each group run the nested plan (an AGGREGATE
    /// over NESTED-TUPLE-SOURCE).
    GroupBy {
        keys: Vec<(VarId, LogicalExpr)>,
        nested: Box<LogicalOp>,
        input: Box<LogicalOp>,
    },
    /// Materializing order-by; keys are `(expression, ascending)` pairs.
    OrderBy {
        keys: Vec<(LogicalExpr, bool)>,
        input: Box<LogicalOp>,
    },
    /// Inner equi-join; `cond` is a conjunction, at least one conjunct an
    /// equality between expressions over the two sides.
    Join {
        cond: LogicalExpr,
        left: Box<LogicalOp>,
        right: Box<LogicalOp>,
    },
    /// Produce the query result (paper: the final distribution step).
    Distribute {
        exprs: Vec<LogicalExpr>,
        input: Box<LogicalOp>,
    },
}

impl LogicalOp {
    /// Variables this operator itself introduces.
    pub fn produced_vars(&self) -> Vec<VarId> {
        match self {
            LogicalOp::DataScan { var, .. }
            | LogicalOp::Assign { var, .. }
            | LogicalOp::Unnest { var, .. }
            | LogicalOp::Aggregate { var, .. } => vec![*var],
            LogicalOp::GroupBy { keys, nested, .. } => {
                let mut vs: Vec<VarId> = keys.iter().map(|(v, _)| *v).collect();
                nested.visit(&mut |op| vs.extend(op.produced_vars()));
                vs
            }
            LogicalOp::Subplan { nested, .. } => {
                let mut vs = Vec::new();
                nested.visit(&mut |op| vs.extend(op.produced_vars()));
                vs
            }
            _ => vec![],
        }
    }

    /// Immutable children (inputs + nested plans).
    pub fn children(&self) -> Vec<&LogicalOp> {
        match self {
            LogicalOp::EmptyTupleSource | LogicalOp::NestedTupleSource => vec![],
            LogicalOp::DataScan { input, .. }
            | LogicalOp::Assign { input, .. }
            | LogicalOp::Select { input, .. }
            | LogicalOp::Unnest { input, .. }
            | LogicalOp::Aggregate { input, .. }
            | LogicalOp::OrderBy { input, .. }
            | LogicalOp::Distribute { input, .. } => vec![input],
            LogicalOp::Subplan { nested, input } => vec![nested, input],
            LogicalOp::GroupBy { nested, input, .. } => vec![nested, input],
            LogicalOp::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Mutable children.
    pub fn children_mut(&mut self) -> Vec<&mut LogicalOp> {
        match self {
            LogicalOp::EmptyTupleSource | LogicalOp::NestedTupleSource => vec![],
            LogicalOp::DataScan { input, .. }
            | LogicalOp::Assign { input, .. }
            | LogicalOp::Select { input, .. }
            | LogicalOp::Unnest { input, .. }
            | LogicalOp::Aggregate { input, .. }
            | LogicalOp::OrderBy { input, .. }
            | LogicalOp::Distribute { input, .. } => vec![input],
            LogicalOp::Subplan { nested, input } => vec![nested, input],
            LogicalOp::GroupBy { nested, input, .. } => vec![nested, input],
            LogicalOp::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Expressions evaluated by this operator (excluding children).
    pub fn exprs(&self) -> Vec<&LogicalExpr> {
        match self {
            LogicalOp::Assign { expr, .. } | LogicalOp::Unnest { expr, .. } => vec![expr],
            LogicalOp::Select { cond, .. } | LogicalOp::Join { cond, .. } => vec![cond],
            LogicalOp::Aggregate { arg, .. } => vec![arg],
            LogicalOp::GroupBy { keys, .. } => keys.iter().map(|(_, e)| e).collect(),
            LogicalOp::OrderBy { keys, .. } => keys.iter().map(|(e, _)| e).collect(),
            LogicalOp::Distribute { exprs, .. } => exprs.iter().collect(),
            _ => vec![],
        }
    }

    /// Mutable expressions.
    pub fn exprs_mut(&mut self) -> Vec<&mut LogicalExpr> {
        match self {
            LogicalOp::Assign { expr, .. } | LogicalOp::Unnest { expr, .. } => vec![expr],
            LogicalOp::Select { cond, .. } | LogicalOp::Join { cond, .. } => vec![cond],
            LogicalOp::Aggregate { arg, .. } => vec![arg],
            LogicalOp::GroupBy { keys, .. } => keys.iter_mut().map(|(_, e)| e).collect(),
            LogicalOp::OrderBy { keys, .. } => keys.iter_mut().map(|(e, _)| e).collect(),
            LogicalOp::Distribute { exprs, .. } => exprs.iter_mut().collect(),
            _ => vec![],
        }
    }

    /// Pre-order visit of the whole tree (including nested plans).
    pub fn visit(&self, f: &mut impl FnMut(&LogicalOp)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// Pre-order mutable visit.
    pub fn visit_mut(&mut self, f: &mut impl FnMut(&mut LogicalOp)) {
        f(self);
        for c in self.children_mut() {
            c.visit_mut(f);
        }
    }

    /// Count references to each variable across all expressions in the
    /// tree (used by rules to prove a variable dead before merging).
    pub fn var_use_count(&self, v: VarId) -> usize {
        let mut n = 0;
        self.visit(&mut |op| {
            for e in op.exprs() {
                let mut vars = Vec::new();
                e.collect_vars(&mut vars);
                n += vars.iter().filter(|x| **x == v).count();
            }
        });
        n
    }

    /// Substitute variable `from` with `to` in every expression.
    pub fn substitute_var(&mut self, from: VarId, to: VarId) {
        self.visit_mut(&mut |op| {
            for e in op.exprs_mut() {
                e.substitute_var(from, to);
            }
        });
    }

    /// Operator name for EXPLAIN output.
    pub fn name(&self) -> &'static str {
        match self {
            LogicalOp::EmptyTupleSource => "empty-tuple-source",
            LogicalOp::NestedTupleSource => "nested-tuple-source",
            LogicalOp::DataScan { .. } => "data-scan",
            LogicalOp::Assign { .. } => "assign",
            LogicalOp::Select { .. } => "select",
            LogicalOp::Unnest { .. } => "unnest",
            LogicalOp::Aggregate { .. } => "aggregate",
            LogicalOp::Subplan { .. } => "subplan",
            LogicalOp::GroupBy { .. } => "group-by",
            LogicalOp::OrderBy { .. } => "order-by",
            LogicalOp::Join { .. } => "join",
            LogicalOp::Distribute { .. } => "distribute",
        }
    }
}

/// A complete logical plan (root is normally DISTRIBUTE).
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalPlan {
    pub root: LogicalOp,
}

impl LogicalPlan {
    pub fn new(root: LogicalOp) -> Self {
        LogicalPlan { root }
    }

    /// Stable, indented textual form used by tests to compare plan shapes
    /// against the paper's figures.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        explain_op(&self.root, 0, &mut out);
        out
    }

    /// The sequence of operator names from root to leaf along the primary
    /// input chain (a compact shape fingerprint for tests).
    pub fn shape(&self) -> Vec<&'static str> {
        let mut names = Vec::new();
        let mut op = &self.root;
        loop {
            names.push(op.name());
            match op.children().last() {
                Some(c) => op = c,
                None => return names,
            }
        }
    }
}

fn explain_op(op: &LogicalOp, indent: usize, out: &mut String) {
    use std::fmt::Write;
    for _ in 0..indent {
        out.push_str("  ");
    }
    match op {
        LogicalOp::EmptyTupleSource => out.push_str("empty-tuple-source\n"),
        LogicalOp::NestedTupleSource => out.push_str("nested-tuple-source\n"),
        LogicalOp::DataScan {
            source,
            project,
            var,
            ..
        } => {
            let _ = writeln!(
                out,
                "data-scan {var} <- collection(\"{}\") project {}",
                source.path, project
            );
        }
        LogicalOp::Assign { var, expr, .. } => {
            let _ = writeln!(out, "assign {var} := {expr}");
        }
        LogicalOp::Select { cond, .. } => {
            let _ = writeln!(out, "select {cond}");
        }
        LogicalOp::Unnest { var, expr, .. } => {
            let _ = writeln!(out, "unnest {var} := {expr}");
        }
        LogicalOp::Aggregate { var, func, arg, .. } => {
            let _ = writeln!(out, "aggregate {var} := {}({arg})", func.name());
        }
        LogicalOp::Subplan { .. } => out.push_str("subplan {\n"),
        LogicalOp::GroupBy { keys, .. } => {
            let keys_s: Vec<String> = keys.iter().map(|(v, e)| format!("{v} := {e}")).collect();
            let _ = writeln!(out, "group-by [{}] {{", keys_s.join(", "));
        }
        LogicalOp::OrderBy { keys, .. } => {
            let keys_s: Vec<String> = keys
                .iter()
                .map(|(e, asc)| format!("{e} {}", if *asc { "ascending" } else { "descending" }))
                .collect();
            let _ = writeln!(out, "order-by [{}]", keys_s.join(", "));
        }
        LogicalOp::Join { cond, .. } => {
            let _ = writeln!(out, "join {cond}");
        }
        LogicalOp::Distribute { exprs, .. } => {
            let exprs_s: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
            let _ = writeln!(out, "distribute [{}]", exprs_s.join(", "));
        }
    }
    match op {
        LogicalOp::Subplan { nested, input } | LogicalOp::GroupBy { nested, input, .. } => {
            explain_op(nested, indent + 1, out);
            for _ in 0..indent {
                out.push_str("  ");
            }
            out.push_str("}\n");
            explain_op(input, indent + 1, out);
        }
        LogicalOp::Join { left, right, .. } => {
            explain_op(left, indent + 1, out);
            explain_op(right, indent + 1, out);
        }
        _ => {
            for c in op.children() {
                explain_op(c, indent + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Function;
    use jdm::Item;

    fn sample_plan() -> LogicalPlan {
        // The Fig. 3 bookstore plan (naive).
        let v0 = VarId(0);
        let v1 = VarId(1);
        let v2 = VarId(2);
        let ets = LogicalOp::EmptyTupleSource;
        let a0 = LogicalOp::Assign {
            var: v0,
            expr: LogicalExpr::value_key(
                LogicalExpr::value_key(
                    LogicalExpr::Call(
                        Function::JsonDoc,
                        vec![LogicalExpr::Call(
                            Function::Promote,
                            vec![LogicalExpr::Call(
                                Function::Data,
                                vec![LogicalExpr::Const(Item::str("books.json"))],
                            )],
                        )],
                    ),
                    "bookstore",
                ),
                "book",
            ),
            input: Box::new(ets),
        };
        let a1 = LogicalOp::Assign {
            var: v1,
            expr: LogicalExpr::Call(Function::KeysOrMembers, vec![LogicalExpr::Var(v0)]),
            input: Box::new(a0),
        };
        let u = LogicalOp::Unnest {
            var: v2,
            expr: LogicalExpr::Call(Function::Iterate, vec![LogicalExpr::Var(v1)]),
            input: Box::new(a1),
        };
        LogicalPlan::new(LogicalOp::Distribute {
            exprs: vec![LogicalExpr::Var(v2)],
            input: Box::new(u),
        })
    }

    #[test]
    fn shape_matches_fig3() {
        assert_eq!(
            sample_plan().shape(),
            vec![
                "distribute",
                "unnest",
                "assign",
                "assign",
                "empty-tuple-source"
            ]
        );
    }

    #[test]
    fn explain_is_stable() {
        let text = sample_plan().explain();
        assert!(text.starts_with("distribute [$2]\n"));
        assert!(text.contains("unnest $2 := iterate($1)"));
        assert!(text.contains("keys-or-members($0)"));
        assert!(text.contains("empty-tuple-source"));
    }

    #[test]
    fn var_use_count_counts_expressions_only() {
        let plan = sample_plan();
        assert_eq!(plan.root.var_use_count(VarId(0)), 1);
        assert_eq!(plan.root.var_use_count(VarId(1)), 1);
        assert_eq!(plan.root.var_use_count(VarId(2)), 1); // in distribute
        assert_eq!(plan.root.var_use_count(VarId(9)), 0);
    }

    #[test]
    fn substitution_rewrites_everywhere() {
        let mut plan = sample_plan();
        plan.root.substitute_var(VarId(2), VarId(7));
        assert_eq!(plan.root.var_use_count(VarId(2)), 0);
        assert!(plan.explain().contains("distribute [$7]"));
    }

    #[test]
    fn vargen_above_skips_existing_ids() {
        let plan = sample_plan();
        let mut gen = VarGen::above(&plan.root);
        assert_eq!(gen.fresh(), VarId(3));
    }
}
