//! Always-on base rules — stand-ins for Algebricks' built-in rule set.

use super::{take_op, transform_bottom_up, var_use_counts, Rule};
use crate::expr::LogicalExpr;
use crate::plan::{LogicalOp, LogicalPlan, VarId};
use std::collections::HashSet;

/// Remove an ASSIGN whose variable is never referenced. All our scalar
/// functions are pure, so this is always sound.
pub struct RemoveDeadAssign;

impl Rule for RemoveDeadAssign {
    fn name(&self) -> &'static str {
        "remove-dead-assign"
    }

    fn apply(&self, plan: &mut LogicalPlan) -> bool {
        let counts = var_use_counts(&plan.root);
        transform_bottom_up(&mut plan.root, &mut |op| {
            if let LogicalOp::Assign { var, input, .. } = op {
                if counts.get(var).copied().unwrap_or(0) == 0 {
                    let inner = take_op(input);
                    *op = inner;
                    return true;
                }
            }
            false
        })
    }
}

/// Split a SELECT sitting on a JOIN: conjuncts that reference only one
/// side become SELECTs below the join; conjuncts spanning both sides move
/// into the join condition. The translator emits `JOIN true + SELECT all`
/// for multi-`for` FLWORs; this rule produces the executable equi-join.
pub struct PushSelectIntoJoin;

impl PushSelectIntoJoin {
    fn vars_produced(op: &LogicalOp) -> HashSet<VarId> {
        let mut out = HashSet::new();
        op.visit(&mut |o| out.extend(o.produced_vars()));
        out
    }
}

impl Rule for PushSelectIntoJoin {
    fn name(&self) -> &'static str {
        "push-select-into-join"
    }

    fn apply(&self, plan: &mut LogicalPlan) -> bool {
        transform_bottom_up(&mut plan.root, &mut |op| {
            let LogicalOp::Select { cond, input } = op else {
                return false;
            };
            let LogicalOp::Join { .. } = input.as_ref() else {
                return false;
            };

            let conjuncts: Vec<LogicalExpr> = cond.conjuncts().into_iter().cloned().collect();
            if conjuncts.is_empty() {
                return false;
            }
            let LogicalOp::Join {
                cond: jcond,
                left,
                right,
            } = input.as_mut()
            else {
                unreachable!("checked above")
            };
            let lvars = Self::vars_produced(left);
            let rvars = Self::vars_produced(right);

            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut to_join = Vec::new();
            for c in conjuncts {
                let mut vars = Vec::new();
                c.collect_vars(&mut vars);
                let uses_l = vars.iter().any(|v| lvars.contains(v));
                let uses_r = vars.iter().any(|v| rvars.contains(v));
                match (uses_l, uses_r) {
                    (true, false) => to_left.push(c),
                    (false, true) => to_right.push(c),
                    _ => to_join.push(c),
                }
            }
            if to_left.is_empty() && to_right.is_empty() {
                return false; // nothing to push; avoid infinite loop
            }
            if !to_left.is_empty() {
                let inner = take_op(left);
                **left = LogicalOp::Select {
                    cond: LogicalExpr::conjoin(to_left),
                    input: Box::new(inner),
                };
            }
            if !to_right.is_empty() {
                let inner = take_op(right);
                **right = LogicalOp::Select {
                    cond: LogicalExpr::conjoin(to_right),
                    input: Box::new(inner),
                };
            }
            // Merge cross conjuncts into the join condition, dropping the
            // translator's `true` placeholder.
            let mut jparts: Vec<LogicalExpr> = jcond
                .conjuncts()
                .into_iter()
                .filter(|c| !matches!(c, LogicalExpr::Const(jdm::Item::Boolean(true))))
                .cloned()
                .collect();
            jparts.extend(to_join);
            *jcond = LogicalExpr::conjoin(jparts);

            // The SELECT itself is now fully absorbed.
            let joined = take_op(input);
            *op = joined;
            true
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Function;
    use jdm::Item;

    fn assign(var: u32, expr: LogicalExpr, input: LogicalOp) -> LogicalOp {
        LogicalOp::Assign {
            var: VarId(var),
            expr,
            input: Box::new(input),
        }
    }

    #[test]
    fn dead_assign_is_removed() {
        let plan_ops = assign(
            0,
            LogicalExpr::Const(Item::int(1)),
            LogicalOp::EmptyTupleSource,
        );
        let mut plan = LogicalPlan::new(LogicalOp::Distribute {
            exprs: vec![LogicalExpr::Const(Item::int(9))],
            input: Box::new(assign(1, LogicalExpr::Const(Item::int(2)), plan_ops)),
        });
        assert!(RemoveDeadAssign.apply(&mut plan));
        assert_eq!(plan.shape(), vec!["distribute", "empty-tuple-source"]);
        assert!(!RemoveDeadAssign.apply(&mut plan));
    }

    #[test]
    fn live_assign_is_kept() {
        let mut plan = LogicalPlan::new(LogicalOp::Distribute {
            exprs: vec![LogicalExpr::Var(VarId(0))],
            input: Box::new(assign(
                0,
                LogicalExpr::Const(Item::int(1)),
                LogicalOp::EmptyTupleSource,
            )),
        });
        assert!(!RemoveDeadAssign.apply(&mut plan));
    }

    #[test]
    fn select_over_join_splits_conjuncts() {
        // left produces $0, right produces $1.
        let left = assign(
            0,
            LogicalExpr::Const(Item::int(1)),
            LogicalOp::EmptyTupleSource,
        );
        let right = assign(
            1,
            LogicalExpr::Const(Item::int(2)),
            LogicalOp::EmptyTupleSource,
        );
        let join = LogicalOp::Join {
            cond: LogicalExpr::Const(Item::Boolean(true)),
            left: Box::new(left),
            right: Box::new(right),
        };
        let cond = LogicalExpr::Call(
            Function::And,
            vec![
                LogicalExpr::Call(
                    Function::Eq,
                    vec![LogicalExpr::Var(VarId(0)), LogicalExpr::Var(VarId(1))],
                ),
                LogicalExpr::Call(
                    Function::Eq,
                    vec![
                        LogicalExpr::Var(VarId(0)),
                        LogicalExpr::Const(Item::str("TMIN")),
                    ],
                ),
                LogicalExpr::Call(
                    Function::Eq,
                    vec![
                        LogicalExpr::Var(VarId(1)),
                        LogicalExpr::Const(Item::str("TMAX")),
                    ],
                ),
            ],
        );
        let mut plan = LogicalPlan::new(LogicalOp::Distribute {
            exprs: vec![LogicalExpr::Var(VarId(0))],
            input: Box::new(LogicalOp::Select {
                cond,
                input: Box::new(join),
            }),
        });
        assert!(PushSelectIntoJoin.apply(&mut plan));
        let text = plan.explain();
        // SELECT gone from above the join; join keeps the cross conjunct.
        assert!(text.contains("join eq($0, $1)"), "{text}");
        // One select pushed to each side.
        assert_eq!(text.matches("select ").count(), 2, "{text}");
        assert!(!PushSelectIntoJoin.apply(&mut plan));
    }
}
